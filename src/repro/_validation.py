"""Internal helpers for validating user-facing parameters.

These helpers raise :class:`repro.exceptions.ConfigurationError` with messages that
name the offending parameter, so that configuration mistakes surface at object
construction time rather than deep inside a solver.
"""

from __future__ import annotations

from typing import Optional

from .exceptions import ConfigurationError


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive_int(value: int, name: str, maximum: Optional[int] = None) -> int:
    """Validate that ``value`` is a positive integer (optionally bounded above)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value!r}")
    if maximum is not None and value > maximum:
        raise ConfigurationError(f"{name} must be <= {maximum}, got {value!r}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_float(value: float, name: str) -> float:
    """Validate that ``value`` is a strictly positive finite float."""
    value = float(value)
    if not value > 0.0 or value != value or value == float("inf"):
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_fraction_open(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ConfigurationError(f"{name} must be in the open interval (0, 1), got {value!r}")
    return value
