"""Plain-text and CSV reporting of analysis and sweep results.

The benchmark harness and the CLI use these helpers to render the paper's
figures as ASCII plots (one chart per gamma, one marker per series) and to dump
machine-readable CSV files next to the benchmark output.

:class:`ProgressReporter` is the one progress channel of the execution plane
(:mod:`repro.core.execution`): the engine, the distributed coordinator and the
remote worker all report through it instead of each wrapping its own
``if progress is not None`` closure, and the CLI builds it once with consistent
``--quiet`` semantics (progress always goes to stderr, never stdout).
"""

from __future__ import annotations

import csv
import math
import sys
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .results import SweepResult


def _print_stderr(message: str) -> None:
    """Default sink of :meth:`ProgressReporter.stderr`: one line to stderr."""
    print(message, file=sys.stderr)


class ProgressReporter:
    """Uniform per-event progress channel of every sweep execution backend.

    Wraps an optional ``Callable[[str], None]`` callback so reporting sites
    can simply call the reporter (``reporter("gamma=... p=...")``) without the
    ``if progress is not None`` guard that used to be copy-pasted into the
    engine, the distributed coordinator and the remote worker.  A reporter
    whose callback is ``None`` is *disabled* and swallows every message --
    exactly what ``--quiet`` means.

    Progress is diagnostics, not output: :meth:`stderr` always prints to
    ``sys.stderr``, keeping stdout reserved for results (plots, tables, final
    summaries) on every CLI subcommand.
    """

    __slots__ = ("_callback",)

    def __init__(self, callback: Optional[Callable[[str], None]] = None) -> None:
        """Wrap ``callback`` (``None`` = disabled: every message is dropped)."""
        self._callback = callback

    @classmethod
    def wrap(cls, progress: Optional[Callable[[str], None]]) -> "ProgressReporter":
        """Adapt a legacy ``progress`` callback (idempotent for reporters)."""
        if isinstance(progress, ProgressReporter):
            return progress
        return cls(progress)

    @classmethod
    def stderr(cls, *, quiet: bool = False) -> "ProgressReporter":
        """CLI reporter: one line per event on stderr, or silent with ``quiet``."""
        return cls(None if quiet else _print_stderr)

    @property
    def enabled(self) -> bool:
        """Whether messages reach a callback (``False`` under ``--quiet``)."""
        return self._callback is not None

    def __call__(self, message: str) -> None:
        """Report one progress line (no-op when disabled)."""
        if self._callback is not None:
            self._callback(message)


def round_significant(value: float, digits: int = 4) -> float:
    """Round ``value`` to ``digits`` significant digits (0.0 stays 0.0)."""
    if value == 0.0 or not math.isfinite(value):
        return value
    return round(value, digits - 1 - int(math.floor(math.log10(abs(value)))))


def write_csv(
    rows: Iterable[Mapping[str, object]],
    path: str | Path,
    *,
    columns: Optional[Sequence[str]] = None,
    time_significant_digits: Optional[int] = 4,
) -> Path:
    """Write dictionaries as CSV with a stable column order.

    Args:
        rows: The rows to write.
        path: Output path (parent directories are created).
        columns: Explicit column order.  When omitted the columns are the union
            of the row keys in insertion order -- deterministic for rows
            produced in canonical order, but callers whose row sets vary by
            configuration (benchmark writers in particular) should pass the
            full column list explicitly so re-runs never reorder the file.
            Keys outside ``columns`` are dropped; missing keys become empty
            cells.
        time_significant_digits: Wall-clock columns (any column whose name
            contains ``"seconds"``) are rounded to this many significant
            digits, keeping the noisy sub-precision tail of timings out of the
            file so re-runs do not churn every row.  ``None`` disables the
            rounding.

    Returns:
        The path written to.
    """
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    # Explicit encoding: the default follows the host locale, so a C-locale
    # (ASCII) machine would write a different -- or crash on a non-ASCII
    # series/error cell -- CSV than a UTF-8 one.
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), restval="", extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            out = dict(row)
            if time_significant_digits is not None:
                for key, value in out.items():
                    if "seconds" in key and isinstance(value, float):
                        out[key] = round_significant(value, time_significant_digits)
            writer.writerow(out)
    return path


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.4f}",
) -> str:
    """Render dictionaries as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return "" if value is None else str(value)

    rendered = [[fmt(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max((len(cells[index]) for cells in rendered), default=0))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(cells[index].ljust(widths[index]) for index in range(len(columns)))
        for cells in rendered
    ]
    return "\n".join([header, separator, *body])


def ascii_plot(
    sweep: SweepResult,
    gamma: float,
    *,
    width: int = 60,
    height: int = 18,
) -> str:
    """Render one Figure 2 panel (fixed gamma) as an ASCII scatter plot.

    Each series gets a distinct marker; the x-axis is the adversarial resource
    ``p`` and the y-axis the expected relative revenue.
    """
    markers = "ox+*#@%&"
    series_names = sweep.series_names()
    points_by_series: Dict[str, List] = {
        name: sweep.series(name, gamma=gamma) for name in series_names
    }
    all_points = [point for points in points_by_series.values() for point in points]
    if not all_points:
        return f"(no data for gamma={gamma})"
    x_values = [point.p for point in all_points]
    y_values = [point.errev for point in all_points]
    x_min, x_max = min(x_values), max(x_values)
    y_min, y_max = 0.0, max(max(y_values), 1e-9)
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        if x_max == x_min:
            column = 0
        else:
            column = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
        return height - 1 - row, column

    legend_lines = []
    for index, name in enumerate(series_names):
        marker = markers[index % len(markers)]
        legend_lines.append(f"  {marker} {name}")
        for point in points_by_series[name]:
            row, column = to_cell(point.p, point.errev)
            grid[row][column] = marker

    lines = [f"ERRev vs p   (gamma = {gamma})", f"y: 0 .. {y_max:.3f}   x: {x_min} .. {x_max}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.extend(legend_lines)
    return "\n".join(lines)
