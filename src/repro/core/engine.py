"""Parallel, cache-aware execution engine for parameter sweeps.

The engine decomposes a Figure 2 style grid into independent units of work and
fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* Baseline series (honest mining, single tree) are closed forms and are
  evaluated inline in the parent process.
* Every attack configuration contributes one task per ``(gamma, p)`` point --
  or, when warm starts or certified bounds are chained across adjacent ``p``
  points (``warm_start_across_points`` / ``reuse_p_axis_bounds``), one task per
  ``(gamma, attack)`` series so that the chain stays within a single worker
  (series-ordered scheduling).

``reuse_p_axis_bounds`` exploits the monotonicity of ERRev* in ``p``: the
previous point's certified ``beta_low`` is a valid initial lower bound for the
next (larger) ``p``, so each binary search starts from an already-narrowed
interval instead of ``[0, 1]``.  The reuse is sound -- ``beta_low <= ERRev*(p)
<= ERRev*(p')`` for ``p <= p'`` -- and is applied only when the series' p values
are non-decreasing.

Determinism and failure isolation are the two design invariants:

* ``workers=1`` runs every task in-process in submission order; ``workers>1``
  runs exactly the same per-task code in subprocesses, so the computed values
  are bit-for-bit identical across worker counts and only the wall-clock
  changes.  Results are re-assembled in the canonical ``gamma -> p -> series``
  order regardless of completion order.  (Relative to the pre-engine serial
  sweep, the default structure-cache path may differ in the last float ulp
  because probabilities are refilled vectorised; ``use_structure_cache=False``
  reproduces the legacy construction exactly.  The ``"portfolio"`` solver is
  the one exception: which backend wins a race is timing-dependent, so its
  ``solver_iterations`` / ``solver_backend`` metadata -- though not the
  certified bounds, which stay within ``epsilon`` -- can vary between runs.)
* A point whose model construction or analysis raises is recorded as a
  :class:`~repro.core.results.SweepFailure` instead of aborting the grid; the
  remaining points are unaffected.  The same holds for the closed-form
  baseline series evaluated in the parent.

Model-structure caching (:mod:`repro.attacks.structure`) is enabled by default
and, with ``workers > 1``, is distributed through the zero-copy shared-memory
model plane (:mod:`repro.core.shared_structures`): the parent builds every
``(attack, support)`` skeleton exactly once, publishes the flat buffers in one
``multiprocessing.shared_memory`` segment, and every worker -- fork- and
spawn-started alike -- *attaches* in its pool initializer instead of exploring.
The numeric transition arrays of all workers are views of the same physical
pages; no worker ever rebuilds a skeleton (``structure_cache_stats()["builds"]
== 0`` inside workers).  The segment is reference-counted and unlinked in a
``finally`` once the pool exits, even when a worker crashed mid-sweep.  If
shared memory is unavailable on a platform, the engine falls back to the
legacy per-worker prewarm.

The pool start method follows the platform default (fork on Linux, spawn
elsewhere) and can be forced with the ``REPRO_TEST_START_METHOD`` environment
variable (used by CI to exercise the spawn path on Linux runners).

With ``SweepConfig.coordinator`` set the engine delegates to the distributed
multi-host fabric (:mod:`repro.core.distributed`): the same tasks stream over
TCP to remote ``repro worker`` processes and the same flat buffers replace the
local shared-memory segment.  Every execution backend upholds the same two
invariants:

* **Zero worker explorations** -- pool and remote workers alike receive every
  skeleton pre-built (``structure_cache_stats()["builds"] == 0`` in workers).
* **Certified-bound reproducibility** -- the certified ``beta_low``/``beta_up``
  of every point are bit-for-bit identical across worker counts, hosts and
  scheduling order; only wall-clock metadata may differ.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis import formal_analysis
from ..attacks import (
    SupportSignature,
    get_model_structure,
    honest_errev,
    single_tree_errev,
)
from ..attacks.registry import ScenarioStructure, get_attack
from ..attacks.structure import clear_structure_cache
from ..config import AnalysisConfig, AttackParams, ProtocolParams
from ..exceptions import ModelError
from .faults import InjectedFault, is_transient_error, maybe_fail, point_retry_limit
from .results import SweepFailure, SweepPoint, SweepResult
from .shared_structures import (
    attach_and_install,
    forget_inherited_planes,
)

# Deliberate module attribute, not an unused import: the pool backend
# (core/execution.py) publishes the model plane via
# ``engine.publish_structures`` so tests can monkeypatch the engine module, as
# they always have.
from .shared_structures import publish_structures  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..mdp.portfolio import PortfolioHistory
    from .sweep import SweepConfig


def attack_series_name(attack: AttackParams) -> str:
    """Series label of an attack configuration (matches the paper's legend).

    Delegates to the registered scenario, so every attack family labels its own
    series (``ours(d=..,f=..)`` for ``selfish-forks``, ``sm-actions(l=..)`` for
    ``sm-actions``, ...).
    """
    return get_attack(attack.scenario).series_name(attack)


def describe_outcome(outcome: "PointOutcome") -> str:
    """One-line progress description of a computed (or failed) attack point."""
    if outcome.error is not None:
        return (
            f"gamma={outcome.gamma} p={outcome.p} {outcome.series}: FAILED ({outcome.error})"
        )
    return (
        f"gamma={outcome.gamma} p={outcome.p} {outcome.series}: "
        f"ERRev={outcome.errev:.4f} ({outcome.num_states} states)"
    )


@dataclass(frozen=True)
class AttackTask:
    """One unit of work: one ``(gamma, attack)`` pair over a block of p values.

    When neither warm starts nor certified bounds are chained the block holds a
    single p value, giving the finest-grained fan-out; with chaining it holds
    the whole p grid of the series so the chain never crosses a process
    boundary.
    """

    gamma: float
    gamma_index: int
    attack: AttackParams
    attack_index: int
    p_values: Tuple[float, ...]
    p_indices: Tuple[int, ...]
    series: str
    analysis: AnalysisConfig
    use_structure_cache: bool
    warm_start_across_points: bool
    reuse_p_axis_bounds: bool = False


@dataclass(frozen=True)
class PointOutcome:
    """Result of one attack grid point, as returned from a worker process.

    ``portfolio_races`` / ``portfolio_launches_avoided`` are the point's slice
    of the worker's :class:`~repro.mdp.portfolio.PortfolioHistory` activity
    (``None`` outside portfolio runs); :func:`assemble_sweep_result` sums them
    into ``SweepResult.metadata["portfolio"]``.  ``scenario`` is the versioned
    ``name@version`` id of the attack scenario that computed the point (see
    :mod:`repro.attacks.registry`).  ``recovery_retries`` counts the transient
    failures this point survived through the bounded per-point retry loop
    (``None`` when it succeeded first try); :func:`assemble_sweep_result` sums
    them into ``SweepResult.metadata["recovery"]``.
    """

    gamma_index: int
    p_index: int
    attack_index: int
    p: float
    gamma: float
    series: str
    errev: Optional[float]
    seconds: float
    solver_iterations: int
    num_states: int
    error: Optional[str] = None
    beta_low: Optional[float] = None
    beta_up: Optional[float] = None
    solver_backend: Optional[str] = None
    cancelled_iterations: Optional[int] = None
    portfolio_races: Optional[int] = None
    portfolio_launches_avoided: Optional[int] = None
    scenario: Optional[str] = None
    recovery_retries: Optional[int] = None


#: Fallback race history of a *pool worker* process, shared by every task it
#: computes (lazily created; dies with the worker at pool shutdown).  Serial
#: sweeps and distributed workers pass an explicitly owned history instead.
_WORKER_PORTFOLIO_HISTORY: Optional["PortfolioHistory"] = None
_WORKER_PORTFOLIO_HISTORY_LOCK = threading.Lock()


def _portfolio_history_for(analysis: AnalysisConfig) -> Optional["PortfolioHistory"]:
    """This process's shared :class:`PortfolioHistory` (portfolio solver only)."""
    global _WORKER_PORTFOLIO_HISTORY
    if analysis.solver != "portfolio":
        return None
    # Pool workers are single-threaded today, but the history is also reachable
    # from in-process threaded callers (e.g. the distributed worker's executor),
    # so the lazy init is guarded.
    with _WORKER_PORTFOLIO_HISTORY_LOCK:
        if _WORKER_PORTFOLIO_HISTORY is None:
            from ..mdp.portfolio import PortfolioHistory

            _WORKER_PORTFOLIO_HISTORY = PortfolioHistory()
        return _WORKER_PORTFOLIO_HISTORY


def _run_attack_task(
    task: AttackTask,
    portfolio_history: Optional["PortfolioHistory"] = None,
) -> List[PointOutcome]:
    """Worker entry point; must stay importable at module top level (pickling).

    When the pool initializer installed a results plane in this process, every
    computed outcome is published into its grid slot instead of being returned:
    the returned list then holds only the outcomes the plane refused (oversized
    error strings), which fall back to the pickled future path.

    Args:
        task: The unit of work.
        portfolio_history: Optional externally owned race history (the
            distributed fabric passes its per-connection one); defaults to this
            process's shared history for the ``"portfolio"`` solver.
    """
    from .results_plane import installed_results_plane

    if task.analysis.solver != "portfolio":
        portfolio_history = None
    elif portfolio_history is None:
        portfolio_history = _portfolio_history_for(task.analysis)
    plane = installed_results_plane()
    outcomes: List[PointOutcome] = []
    warm_rows: Optional[np.ndarray] = None
    warm_bias: Optional[np.ndarray] = None
    prev_beta_low: Optional[float] = None
    prev_p: Optional[float] = None
    for p, p_index in zip(task.p_values, task.p_indices):
        start = time.perf_counter()
        retries = 0
        while True:
            # Per-point deltas come from the *calling thread's* counters: the
            # history may be shared with concurrently racing threads
            # (distributed capacity > 1), whose races must not leak into this
            # point's stats.  Recaptured per attempt so an abandoned attempt's
            # races don't count against the one that succeeds.
            history_before = (
                portfolio_history.thread_stats() if portfolio_history is not None else {}
            )
            try:
                if maybe_fail("engine.point_transient"):
                    raise InjectedFault("engine.point_transient")
                entry = get_attack(task.attack.scenario)
                protocol = ProtocolParams(p=p, gamma=task.gamma)
                model = entry.build_model(
                    protocol, task.attack, use_structure_cache=task.use_structure_cache
                )
                initial_beta_low = 0.0
                if (
                    task.reuse_p_axis_bounds
                    and prev_beta_low is not None
                    and prev_p is not None
                    and p >= prev_p
                ):
                    # ERRev* is monotone in p, so the previous point's certified
                    # lower bound is a valid initial lower bound here.
                    initial_beta_low = min(max(prev_beta_low, 0.0), 1.0)
                result = formal_analysis(
                    model.mdp,
                    task.analysis,
                    beta_low=initial_beta_low,
                    initial_strategy_rows=warm_rows,
                    initial_bias=warm_bias,
                    portfolio_history=portfolio_history,
                )
                if task.warm_start_across_points:
                    warm_rows = result.strategy.rows
                    warm_bias = result.final_bias
                if task.reuse_p_axis_bounds:
                    prev_beta_low = result.beta_low
                    prev_p = p
                errev = (
                    result.strategy_errev
                    if result.strategy_errev is not None
                    else result.errev_lower_bound
                )
                outcome = PointOutcome(
                    gamma_index=task.gamma_index,
                    p_index=p_index,
                    attack_index=task.attack_index,
                    p=p,
                    gamma=task.gamma,
                    series=task.series,
                    errev=errev,
                    seconds=time.perf_counter() - start,
                    solver_iterations=result.total_solver_iterations,
                    num_states=model.mdp.num_states,
                    beta_low=result.beta_low,
                    beta_up=result.beta_up,
                    solver_backend=result.winning_solver,
                    cancelled_iterations=(
                        result.cancelled_solver_iterations if result.backend_wins else None
                    ),
                    portfolio_races=(
                        portfolio_history.thread_stats()["races"] - history_before["races"]
                        if portfolio_history is not None
                        else None
                    ),
                    portfolio_launches_avoided=(
                        portfolio_history.thread_stats()["launches_avoided"]
                        - history_before["launches_avoided"]
                        if portfolio_history is not None
                        else None
                    ),
                    scenario=entry.scenario_id,
                    recovery_retries=retries or None,
                )
            except Exception as exc:  # noqa: BLE001 - failure isolation is the point
                if is_transient_error(exc) and retries < point_retry_limit():
                    # Bounded retry: the warm-chain state is untouched, so the
                    # retried attempt runs from exactly the state the failed
                    # one saw and the computed values stay deterministic.
                    retries += 1
                    continue
                outcome = PointOutcome(
                    gamma_index=task.gamma_index,
                    p_index=p_index,
                    attack_index=task.attack_index,
                    p=p,
                    gamma=task.gamma,
                    series=task.series,
                    errev=None,
                    seconds=time.perf_counter() - start,
                    solver_iterations=0,
                    num_states=0,
                    error=f"{type(exc).__name__}: {exc}",
                    recovery_retries=retries or None,
                )
                # A failed point cannot seed the next one.
                warm_rows = None
                warm_bias = None
                prev_beta_low = None
                prev_p = None
            break
        if maybe_fail("engine.worker_crash_pre_result"):
            # Simulated hard death before the outcome is recorded anywhere:
            # resume/requeue must recompute this point.
            os._exit(17)
        if plane is None or not plane.write(outcome):
            outcomes.append(outcome)
        if maybe_fail("engine.worker_crash_post_result"):
            # Simulated hard death after the plane write: the parent's
            # post-join drain must still surface the published record.
            os._exit(23)
    return outcomes


def _build_tasks(config: "SweepConfig") -> List[AttackTask]:
    """Decompose the sweep grid into worker tasks in deterministic order."""
    tasks: List[AttackTask] = []
    p_indices = tuple(range(len(config.p_values)))
    p_values = tuple(config.p_values)
    reuse_bounds = config.reuse_p_axis_bounds
    for gamma_index, gamma in enumerate(config.gammas):
        for attack_index, attack in enumerate(config.attack_configs):
            common = dict(
                gamma=gamma,
                gamma_index=gamma_index,
                attack=attack,
                attack_index=attack_index,
                series=attack_series_name(attack),
                analysis=config.analysis,
                use_structure_cache=config.use_structure_cache,
                warm_start_across_points=config.warm_start_across_points,
                reuse_p_axis_bounds=reuse_bounds,
            )
            if config.warm_start_across_points or reuse_bounds:
                # Series-ordered scheduling: the whole p block runs in one
                # worker so chained warm starts / certified bounds never cross
                # a process boundary.
                tasks.append(AttackTask(p_values=p_values, p_indices=p_indices, **common))
            else:
                for p_index, p in zip(p_indices, p_values):
                    tasks.append(AttackTask(p_values=(p,), p_indices=(p_index,), **common))
    return tasks


def _prewarm_structure_cache(config: "SweepConfig") -> List[ScenarioStructure]:
    """Build every ``(attack, support)`` skeleton the grid needs, once, in-parent.

    Parameter points that are invalid (and will be reported as failures by
    their worker) are skipped.

    Returns:
        The distinct structures of the grid, ready to be published on the
        shared-memory model plane.
    """
    structures: List[ScenarioStructure] = []
    seen = set()
    for gamma in config.gammas:
        for p in config.p_values:
            try:
                protocol = ProtocolParams(p=p, gamma=gamma)
            except Exception:
                continue
            for attack in config.attack_configs:
                key = (attack, SupportSignature.of(protocol))
                if key in seen:
                    continue
                seen.add(key)
                try:
                    structures.append(get_model_structure(attack, protocol))
                except Exception:
                    # Leave the failure to surface per point inside the worker,
                    # where it is isolated as a SweepFailure.
                    continue
    return structures


def _initialize_worker(
    plane_name: Optional[str],
    config: "SweepConfig",
    results_plane_name: Optional[str] = None,
) -> None:
    """Pool initializer: attach the shared model plane (or prewarm as fallback).

    With a published plane the worker's structure cache and inherited plane
    handles are cleared (fork-started workers inherit the parent's private
    copies and its creator-flagged plane handle, neither of which may be used)
    and the cache is refilled with zero-copy attachments, so the worker
    performs zero explorations (``structure_cache_stats()["builds"] == 0``)
    and its numeric arrays are views of the shared segment on fork and spawn
    alike.  Without a plane -- shared memory unavailable, or disabled via
    ``SweepConfig.use_shared_structures`` -- the worker falls back to building
    every skeleton of the grid once, up front.

    With ``results_plane_name`` set the worker additionally attaches the
    results plane (:mod:`repro.core.results_plane`) and installs it as this
    process's outcome sink, so computed :class:`PointOutcome`\\ s are published
    as packed shared-memory records instead of pickled future results; a
    vanished segment degrades to the pickled path.  Must stay importable at
    module top level (pickling).

    Both planes live on the shared substrate (:mod:`repro.core.shm`), so the
    per-plane forgets below delegate to one registry: fork-started workers
    drop every inherited creator-flagged handle before attaching their own
    untracked mappings, and attach failures surface as clean
    :class:`~repro.exceptions.ModelError`\\ s (magic/version validated).
    """
    from .results_plane import forget_inherited_results_planes, install_results_plane

    forget_inherited_planes()
    forget_inherited_results_planes()
    if results_plane_name is not None:
        try:
            install_results_plane(results_plane_name)
        except ModelError:
            # Segment vanished: fall back to returning outcomes by pickling.
            pass
    if plane_name is not None:
        try:
            clear_structure_cache()
            attach_and_install(plane_name)
            return
        except ModelError:
            # Segment vanished (or the platform rejected the mapping): rebuild
            # locally rather than failing every task of this worker.
            pass
    if config.use_structure_cache:
        _prewarm_structure_cache(config)


def _pool_start_method() -> str:
    """Select the multiprocessing start method of the sweep pool.

    ``REPRO_TEST_START_METHOD`` (``fork`` / ``spawn`` / ``forkserver``) forces a
    method -- CI uses this to exercise the spawn path on Linux runners.  An
    unknown or platform-unavailable value raises instead of being silently
    ignored, so a typo in a CI job cannot turn its dedicated-start-method run
    into a green no-op.  Otherwise fork is pinned on Linux only: macOS lists
    "fork" as available but fork-after-threads is unsafe there (that is why
    its default moved to spawn).
    """
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get("REPRO_TEST_START_METHOD", "").strip().lower()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_TEST_START_METHOD={override!r} is not a start method "
                f"available on this platform (choose from {available})"
            )
        return override
    if sys.platform == "linux" and "fork" in available:
        return "fork"
    return "spawn"


def _baseline_points(
    config: "SweepConfig",
    p: float,
    gamma: float,
    failures: List[SweepFailure],
    report: Callable[[str], None],
) -> List[SweepPoint]:
    """Closed-form baseline points of one grid point, with failures isolated.

    An invalid parameter point (or a raising baseline formula) must not abort
    the sweep any more than a failing attack point does.
    """
    points: List[SweepPoint] = []
    series_fns = []
    if config.include_honest:
        series_fns.append(("honest", lambda protocol: honest_errev(protocol)))
    if config.include_single_tree:
        series_fns.append(
            (
                f"single-tree(f={config.single_tree.max_width})",
                lambda protocol: single_tree_errev(protocol, config.single_tree),
            )
        )
    for series, fn in series_fns:
        try:
            errev = fn(ProtocolParams(p=p, gamma=gamma))
        except Exception as exc:
            failures.append(
                SweepFailure(p=p, gamma=gamma, series=series, message=f"{type(exc).__name__}: {exc}")
            )
            report(f"gamma={gamma} p={p} {series}: FAILED ({type(exc).__name__}: {exc})")
            continue
        points.append(SweepPoint(p=p, gamma=gamma, series=series, errev=errev))
    return points


def execute_sweep(
    config: "SweepConfig",
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a Figure 2 style sweep, serially or over a process pool.

    Args:
        config: The sweep configuration; ``config.workers`` selects the degree
            of parallelism (1 = in-process serial execution).
        progress: Optional callback invoked with a short message per attack
            point (and per failure) as results become available -- in task
            order when serial, in completion order when parallel.

    Returns:
        A :class:`SweepResult` whose points are ordered ``gamma -> p ->
        (honest, single-tree, attacks...)`` independent of worker scheduling,
        with per-point timings attached and failures isolated.
    """
    if getattr(config, "connect", None):
        raise ValueError(
            "SweepConfig.connect designates this process as a remote worker; "
            "run `repro worker --connect HOST:PORT` (repro.core.distributed."
            "run_worker) instead of run_sweep"
        )
    if getattr(config, "coordinator", None):
        # Distributed execution: fan the same tasks out to remote workers over
        # TCP instead of a local process pool.  Imported lazily to break the
        # engine <-> distributed import cycle.
        from .distributed import run_distributed_sweep

        return run_distributed_sweep(config, progress=progress)

    workers = int(config.workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {config.workers}")

    # Thin orchestration over the execution plane (imported lazily to break
    # the engine <-> execution import cycle): the plan/backend/sink layers in
    # core/execution.py own scheduling, journaling, merge and assembly.
    from .execution import PoolBackend, SerialBackend, execute_plan

    backend = SerialBackend() if workers == 1 else PoolBackend()
    return execute_plan(config, backend, progress=progress)


def assemble_sweep_result(
    config: "SweepConfig",
    outcomes: Dict[Tuple[int, int, int], PointOutcome],
    report: Callable[[str], None],
    *,
    description: str,
) -> SweepResult:
    """Assemble collected attack outcomes and inline baselines into a sweep result.

    The closed-form baseline series are evaluated here, in the calling process,
    and ``outcomes`` -- keyed by ``(gamma_index, p_index, attack_index)`` grid
    coordinates, however they were computed (local pool or distributed fabric)
    -- are re-ordered into the canonical ``gamma -> p -> series`` order with
    failures isolated, so every execution backend produces an identically
    shaped :class:`SweepResult`.  A grid key with no collected outcome at all
    -- a distributed shutdown that lost a unit, a results-plane slot torn by a
    crashed writer -- becomes a :class:`SweepFailure` instead of a crash that
    would discard every point that *was* collected.  Portfolio race statistics
    carried by the outcomes are summed into ``metadata["portfolio"]``.
    """
    points: List[SweepPoint] = []
    failures: List[SweepFailure] = []
    portfolio = {"races": 0, "launches_avoided": 0, "backend_wins": {}}
    portfolio_seen = False
    for gamma_index, gamma in enumerate(config.gammas):
        for p_index, p in enumerate(config.p_values):
            points.extend(_baseline_points(config, p, gamma, failures, report))
            for attack_index, attack in enumerate(config.attack_configs):
                outcome = outcomes.get((gamma_index, p_index, attack_index))
                if outcome is None:
                    failures.append(
                        SweepFailure(
                            p=p,
                            gamma=gamma,
                            series=attack_series_name(attack),
                            message="outcome never reported (worker lost or result torn)",
                        )
                    )
                    continue
                if outcome.portfolio_races is not None:
                    portfolio_seen = True
                    portfolio["races"] += outcome.portfolio_races
                    portfolio["launches_avoided"] += outcome.portfolio_launches_avoided or 0
                    if outcome.solver_backend is not None:
                        wins = portfolio["backend_wins"]
                        wins[outcome.solver_backend] = wins.get(outcome.solver_backend, 0) + 1
                if outcome.error is not None:
                    failures.append(
                        SweepFailure(
                            p=outcome.p,
                            gamma=outcome.gamma,
                            series=outcome.series,
                            message=outcome.error,
                        )
                    )
                    continue
                points.append(
                    SweepPoint(
                        p=outcome.p,
                        gamma=outcome.gamma,
                        series=outcome.series,
                        errev=outcome.errev,
                        seconds=outcome.seconds,
                        solver_iterations=outcome.solver_iterations,
                        beta_low=outcome.beta_low,
                        beta_up=outcome.beta_up,
                        solver_backend=outcome.solver_backend,
                        cancelled_iterations=outcome.cancelled_iterations,
                        scenario=outcome.scenario,
                    )
                )
    result = SweepResult(points=points, description=description, failures=failures)
    if portfolio_seen:
        result.metadata["portfolio"] = portfolio
    point_retries = sum(o.recovery_retries or 0 for o in outcomes.values())
    if point_retries:
        # Degradation counter: the sweep completed, but only because the
        # bounded per-point retry loop absorbed this many transient failures.
        result.metadata["recovery"] = {"point_retries": point_retries}
    return result
