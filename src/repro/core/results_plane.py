"""Shared-memory results plane: pickle-free return path for sweep outcomes.

The model plane (:mod:`repro.core.shared_structures`) made the *inputs* of a
pooled sweep zero-copy, but every :class:`~repro.core.engine.PointOutcome`
still returned to the parent by pickling through the pool's result queue.  The
results plane closes that gap: a fixed-record shared-memory ring with one slot
per attack grid point, where workers *write* their outcomes as packed numpy
records and the parent *drains* them by reading shared pages -- no pickle, no
queue copy, no per-outcome allocation on the hot path.

Layout and protocol
-------------------
The segment is a substrate segment (:mod:`repro.core.shm`: 64-byte magic +
layout-version header, validated on every attach) whose payload is two named
typed regions: a ``geometry`` region (slot count, grid dimensions) and a
``records`` region of ``num_slots`` fixed-size :data:`OUTCOME_DTYPE` records.
Slot ``i`` is the flattened grid coordinate ``(gamma_index * n_p + p_index) *
n_attacks + attack_index``, so writers need no allocator and results are
idempotent by grid key -- exactly the keying the sweep's merge path already
uses.

Each slot is protected by a per-slot **seqlock** (its ``seq`` field):

* a writer sets ``seq`` to an odd value, fills the payload fields, then sets
  ``seq`` to the even value ``2`` (publish);
* a reader treats ``seq == 0`` (never written) and odd ``seq`` (write in
  progress -- e.g. the writer died mid-record) as *not ready*, and re-reads
  ``seq`` after decoding to discard torn reads.

Every grid point is computed by exactly one pool task, so each slot has a
single writer and the seqlock only has to protect the parent's concurrent
drain from observing a half-written record.  A slot whose writer crashed
mid-write simply stays unpublished; the sweep's assembly step records the
missing grid key as a :class:`~repro.core.results.SweepFailure` instead of
crashing.

Plain numpy stores provide no cross-process release/acquire ordering, so the
seqlock is a *tear detector*, not a memory barrier: on a weakly ordered CPU a
concurrently racing reader could in principle observe ``seq == 2`` before the
payload stores land.  The parent therefore consumes a slot only after a true
synchronization point with its writer -- the task's future result arriving
(queue IPC), the pool having joined, or the writer process having died --
each of which guarantees the published payload is visible.

Strings (series name, error message, backend name) live in fixed-size fields
-- :data:`ERROR_BYTES` etc.  An outcome whose strings do not fit is *not*
truncated: :meth:`ResultsPlane.write` refuses it and the worker falls back to
returning that one outcome through the pickled future path (counted by the
engine's plane stats), so drained outcomes are always byte-exact.

Lifecycle (refcounted release with creator-unlink, ``atexit`` backstop,
fork-inheritance forget, untracked worker attaches) is the substrate's,
implemented once in :mod:`repro.core.shm` and proven by the conformance
suite (``tests/core/shm_conformance.py``) this plane passes alongside the
model plane.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelError
from .faults import InjectedFault, maybe_fail
from .shm import (
    HEADER_BYTES,
    ManagedSegment,
    SegmentLayout,
    SegmentSpec,
    attach_segment,
    create_segment,
    forget_inherited_segments,
)
from .shm import (
    active_segment_names as _active_segment_names,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .engine import PointOutcome

#: Plane magic stamped into the substrate header (b"REPRORES" as an integer).
PLANE_MAGIC = 0x5245_5052_4F52_4553

#: Layout generation of the record payload, validated on attach by the
#: substrate header so a stale worker from a previous layout fails loudly
#: instead of decoding shifted fields.  Bumped to 4 for the substrate port
#: (geometry moved into a named payload region behind the substrate header);
#: 3 added the per-record ``recovery_retries`` counter, 2 the ``scenario`` id.
RESULTS_PLANE_VERSION = 4

#: Substrate identity of results-plane segments.
_SPEC = SegmentSpec(kind="results-plane", magic=PLANE_MAGIC, version=RESULTS_PLANE_VERSION)

#: Capacity of the fixed-size string fields of one record.
SERIES_BYTES = 96
ERROR_BYTES = 512
BACKEND_BYTES = 48
SCENARIO_BYTES = 64

#: Bit flags marking which optional fields of a record are present.
_HAS_ERREV = 1 << 0
_HAS_ERROR = 1 << 1
_HAS_BETA_LOW = 1 << 2
_HAS_BETA_UP = 1 << 3
_HAS_BACKEND = 1 << 4
_HAS_CANCELLED = 1 << 5
_HAS_PORTFOLIO = 1 << 6
_HAS_SCENARIO = 1 << 7
_HAS_RECOVERY = 1 << 8

#: Packed per-slot record: seqlock word, grid key, payload, flagged optionals.
OUTCOME_DTYPE = np.dtype(
    [
        ("seq", np.uint32),
        ("flags", np.uint32),
        ("gamma_index", np.int32),
        ("p_index", np.int32),
        ("attack_index", np.int32),
        ("solver_iterations", np.int64),
        ("num_states", np.int64),
        ("cancelled_iterations", np.int64),
        ("portfolio_races", np.int64),
        ("portfolio_launches_avoided", np.int64),
        ("recovery_retries", np.int64),
        ("p", np.float64),
        ("gamma", np.float64),
        ("errev", np.float64),
        ("seconds", np.float64),
        ("beta_low", np.float64),
        ("beta_up", np.float64),
        ("series", f"S{SERIES_BYTES}"),
        ("error", f"S{ERROR_BYTES}"),
        ("solver_backend", f"S{BACKEND_BYTES}"),
        ("scenario", f"S{SCENARIO_BYTES}"),
    ]
)


def _plane_layout(num_slots: int) -> SegmentLayout:
    """The payload layout of a plane with ``num_slots`` record slots."""
    return SegmentLayout(
        [
            # [num_slots, n_p, n_attacks, reserved]
            ("geometry", np.uint64, (4,)),
            ("records", OUTCOME_DTYPE, (num_slots,)),
        ]
    )


#: Guards the worker-installed sink below (RL002: rebinding under a lock).
_REGISTRY_LOCK = threading.Lock()

#: The plane the sweep pool initializer installed in *this worker process*.
_INSTALLED_PLANE: Optional["ResultsPlane"] = None


class ResultsPlane:
    """One shared-memory outcome ring, created by the parent or attached by a worker.

    Use :func:`create_results_plane` / :func:`attach_results_plane` instead of
    constructing directly.
    """

    def __init__(
        self,
        handle: ManagedSegment,
        *,
        num_slots: int,
        n_p: int,
        n_attacks: int,
        writeable: bool,
    ) -> None:
        """Wrap a substrate handle; use the module factories, not this."""
        self._handle = handle
        self.num_slots = num_slots
        self.n_p = n_p
        self.n_attacks = n_attacks
        regions = _plane_layout(num_slots).map(handle, writeable=writeable)
        self._records: Optional[np.ndarray] = regions["records"]
        #: Parent-side drain cursor: the ``seq`` value last observed per slot.
        self._seen = np.zeros(num_slots, dtype=np.uint32)
        handle.owner = self
        handle.drop_views = self._drop_views

    def _drop_views(self) -> None:
        """Drop the record view before the mapping closes (BufferError hygiene)."""
        self._records = None

    @property
    def name(self) -> str:
        """System-wide name of the shared-memory segment."""
        return self._handle.name

    @property
    def closed(self) -> bool:
        """Whether this process has dropped its mapping of the segment."""
        return self._handle.closed

    # ----------------------------------------------------------------- writing

    def slot_of(self, gamma_index: int, p_index: int, attack_index: int) -> int:
        """Flattened slot index of one grid coordinate."""
        return (gamma_index * self.n_p + p_index) * self.n_attacks + attack_index

    def write(self, outcome: "PointOutcome") -> bool:
        """Publish one outcome into its grid slot; ``False`` if it does not fit.

        An outcome whose series/error/backend strings exceed the fixed field
        sizes (or whose grid coordinates fall outside the plane's grid) is
        refused rather than truncated -- the caller must return it through the
        ordinary pickled path so the drained result stays byte-exact.
        """
        slot = self.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        if not 0 <= slot < self.num_slots:
            return False
        series = outcome.series.encode("utf-8")
        error = (outcome.error or "").encode("utf-8")
        backend = (outcome.solver_backend or "").encode("utf-8")
        scenario = (outcome.scenario or "").encode("utf-8")
        if (
            len(series) > SERIES_BYTES
            or len(error) > ERROR_BYTES
            or len(backend) > BACKEND_BYTES
            or len(scenario) > SCENARIO_BYTES
        ):
            return False
        # Fixed-size numpy bytes fields strip trailing NULs on read, so a
        # string that *ends* in one cannot round-trip byte-exactly -- refuse
        # it (pathological, but correctness beats coverage here).
        if any(text.endswith(b"\x00") for text in (series, error, backend, scenario)):
            return False
        records = self._records
        assert records is not None  # a closed plane is never handed to writers
        flags = 0
        # Seqlock write protocol: odd while the payload is in flux, even once
        # published.  The single writer of this slot is us; the odd value only
        # protects a concurrently draining parent from a torn read.
        records["seq"][slot] = 1
        records["gamma_index"][slot] = outcome.gamma_index
        records["p_index"][slot] = outcome.p_index
        records["attack_index"][slot] = outcome.attack_index
        records["p"][slot] = outcome.p
        records["gamma"][slot] = outcome.gamma
        records["seconds"][slot] = outcome.seconds
        records["solver_iterations"][slot] = outcome.solver_iterations
        records["num_states"][slot] = outcome.num_states
        records["series"][slot] = series
        if outcome.errev is not None:
            flags |= _HAS_ERREV
            records["errev"][slot] = outcome.errev
        if outcome.error is not None:
            flags |= _HAS_ERROR
        records["error"][slot] = error
        if outcome.beta_low is not None:
            flags |= _HAS_BETA_LOW
            records["beta_low"][slot] = outcome.beta_low
        if outcome.beta_up is not None:
            flags |= _HAS_BETA_UP
            records["beta_up"][slot] = outcome.beta_up
        if outcome.solver_backend is not None:
            flags |= _HAS_BACKEND
        records["solver_backend"][slot] = backend
        if outcome.cancelled_iterations is not None:
            flags |= _HAS_CANCELLED
            records["cancelled_iterations"][slot] = outcome.cancelled_iterations
        if outcome.portfolio_races is not None:
            flags |= _HAS_PORTFOLIO
            records["portfolio_races"][slot] = outcome.portfolio_races
            records["portfolio_launches_avoided"][slot] = (
                outcome.portfolio_launches_avoided or 0
            )
        if outcome.scenario is not None:
            flags |= _HAS_SCENARIO
        records["scenario"][slot] = scenario
        if outcome.recovery_retries is not None:
            flags |= _HAS_RECOVERY
            records["recovery_retries"][slot] = outcome.recovery_retries
        records["flags"][slot] = flags
        records["seq"][slot] = 2
        return True

    # ----------------------------------------------------------------- reading

    def _decode(self, slot: int) -> "PointOutcome":
        from .engine import PointOutcome  # deferred: engine imports this module

        assert self._records is not None
        record = self._records[slot]
        flags = int(record["flags"])
        return PointOutcome(
            gamma_index=int(record["gamma_index"]),
            p_index=int(record["p_index"]),
            attack_index=int(record["attack_index"]),
            p=float(record["p"]),
            gamma=float(record["gamma"]),
            series=bytes(record["series"]).decode("utf-8"),
            errev=float(record["errev"]) if flags & _HAS_ERREV else None,
            seconds=float(record["seconds"]),
            solver_iterations=int(record["solver_iterations"]),
            num_states=int(record["num_states"]),
            error=bytes(record["error"]).decode("utf-8") if flags & _HAS_ERROR else None,
            beta_low=float(record["beta_low"]) if flags & _HAS_BETA_LOW else None,
            beta_up=float(record["beta_up"]) if flags & _HAS_BETA_UP else None,
            solver_backend=(
                bytes(record["solver_backend"]).decode("utf-8")
                if flags & _HAS_BACKEND
                else None
            ),
            cancelled_iterations=(
                int(record["cancelled_iterations"]) if flags & _HAS_CANCELLED else None
            ),
            portfolio_races=(
                int(record["portfolio_races"]) if flags & _HAS_PORTFOLIO else None
            ),
            portfolio_launches_avoided=(
                int(record["portfolio_launches_avoided"]) if flags & _HAS_PORTFOLIO else None
            ),
            scenario=(
                bytes(record["scenario"]).decode("utf-8") if flags & _HAS_SCENARIO else None
            ),
            recovery_retries=(
                int(record["recovery_retries"]) if flags & _HAS_RECOVERY else None
            ),
        )

    def read(self, slot: int) -> Optional["PointOutcome"]:
        """Read one slot, or ``None`` if it is unwritten or mid-write.

        The seqlock is re-checked after decoding, so a record the writer was
        still filling (or re-publishing) is discarded instead of returned torn.
        The seqlock alone is *not* an inter-process memory barrier (plain
        numpy stores carry no release/acquire ordering), so callers must only
        trust a slot after a real synchronization point with its writer -- the
        writer's future result arriving, the pool joining, or the writer
        process having exited; the engine's drains observe that rule.
        """
        if not 0 <= slot < self.num_slots:
            raise ModelError(f"slot {slot} outside results plane of {self.num_slots} slots")
        assert self._records is not None
        seq_before = int(self._records["seq"][slot])
        if seq_before == 0 or seq_before % 2 == 1:
            return None
        outcome = self._decode(slot)
        if int(self._records["seq"][slot]) != seq_before:
            return None
        return outcome

    def take_new(self, slot: int) -> Optional["PointOutcome"]:
        """Read one slot and mark it consumed; ``None`` if unready or already taken.

        Only the creating (parent) process should consume slots: the cursor of
        "what was already seen" is process-local state.
        """
        outcome = self.read(slot)
        assert self._records is not None
        if outcome is None or self._seen[slot] == self._records["seq"][slot]:
            return None
        self._seen[slot] = self._records["seq"][slot]
        return outcome

    def drain_new(self) -> List["PointOutcome"]:
        """Consume every slot published since the previous drain, in slot order.

        Safe only once all writers have synchronized with this process (pool
        joined / workers exited) -- see :meth:`read`.
        """
        assert self._records is not None
        published = self._records["seq"]
        candidates = np.flatnonzero((published != self._seen) & (published % 2 == 0))
        fresh = (self.take_new(int(slot)) for slot in candidates)
        return [outcome for outcome in fresh if outcome is not None]

    # --------------------------------------------------------------- lifecycle

    def release(self) -> None:
        """Drop one reference; close (creator: unlink) on the last one.

        Idempotent -- the engine's ``finally`` and the substrate's ``atexit``
        backstop may both call it.
        """
        self._handle.release()


def create_results_plane(n_gammas: int, n_p: int, n_attacks: int) -> ResultsPlane:
    """Allocate a results plane covering one sweep grid (creator side).

    Raises:
        ModelError: If the grid is empty or shared memory cannot be allocated.
    """
    num_slots = n_gammas * n_p * n_attacks
    if num_slots < 1:
        raise ModelError("cannot create a results plane for an empty grid")
    layout = _plane_layout(num_slots)
    # seq == 0 must read as "never written", so the payload is zero-filled.
    handle = create_segment(_SPEC, layout.payload_size, zero_payload=True)
    try:
        geometry = layout.map(handle)["geometry"]
        geometry[0] = num_slots
        geometry[1] = n_p
        geometry[2] = n_attacks
    except Exception:
        handle.release()
        raise
    return ResultsPlane(handle, num_slots=num_slots, n_p=n_p, n_attacks=n_attacks, writeable=True)


def attach_results_plane(name: str) -> ResultsPlane:
    """Attach an existing results plane by segment name (worker side).

    Raises:
        ModelError: If no segment with ``name`` exists, it is not a results
            plane (wrong magic), it uses another layout generation, or its
            geometry is impossible.
    """
    if maybe_fail("results_plane.attach_fail"):
        # Chaos site: a vanished/unmappable segment.  InjectedFault is a
        # ModelError, so the pool initializer's existing fallback (pickled
        # return path) absorbs it.
        raise InjectedFault("results_plane.attach_fail")
    handle = attach_segment(_SPEC, name)
    owner = handle.owner
    if isinstance(owner, ResultsPlane):
        # In-process dedup: attach_segment returned the open handle (refcount
        # bumped); hand back the plane already wrapping it.
        return owner
    try:
        if len(handle.buf) < HEADER_BYTES + _plane_layout(0).payload_size:
            raise ModelError(f"results plane {name!r} has an impossible geometry")
        geometry = _plane_layout(0).map(handle, writeable=False)["geometry"]
        num_slots, n_p, n_attacks = int(geometry[0]), int(geometry[1]), int(geometry[2])
        del geometry  # drop the view before any failure path closes the mapping
        layout = _plane_layout(max(num_slots, 0))
        if num_slots < 1 or n_p < 1 or n_attacks < 1 or (
            len(handle.buf) < HEADER_BYTES + layout.payload_size
        ):
            raise ModelError(f"results plane {name!r} has an impossible geometry")
    except ModelError:
        handle.release()
        raise
    return ResultsPlane(
        handle, num_slots=num_slots, n_p=n_p, n_attacks=n_attacks, writeable=True
    )


def install_results_plane(name: str) -> ResultsPlane:
    """Attach a plane and make it this worker process's outcome sink.

    Called by the sweep pool initializer; :func:`installed_results_plane` then
    routes every computed outcome of this process into the plane.
    """
    global _INSTALLED_PLANE
    plane = attach_results_plane(name)
    with _REGISTRY_LOCK:
        _INSTALLED_PLANE = plane
    return plane


def installed_results_plane() -> Optional[ResultsPlane]:
    """The plane installed in this process by the pool initializer, if any."""
    if _INSTALLED_PLANE is not None and _INSTALLED_PLANE.closed:
        return None
    return _INSTALLED_PLANE


def forget_installed_sink() -> None:
    """Drop the worker-installed outcome sink without closing its mapping."""
    global _INSTALLED_PLANE
    with _REGISTRY_LOCK:
        _INSTALLED_PLANE = None


def forget_inherited_results_planes() -> None:
    """Drop results-plane handles inherited through ``fork`` without closing.

    The same hazard as every plane's fork inheritance (see
    :func:`repro.core.shm.forget_inherited_segments`), plus the
    worker-installed sink from a previous life: workers must start from a
    clean registry and attach their own untracked mapping.
    """
    forget_installed_sink()
    forget_inherited_segments(kind=_SPEC.kind)


def active_results_plane_names() -> List[str]:
    """Names of the results planes this process holds open (for tests)."""
    return _active_segment_names(kind=_SPEC.kind)


__all__: Tuple[str, ...] = (
    "BACKEND_BYTES",
    "ERROR_BYTES",
    "OUTCOME_DTYPE",
    "PLANE_MAGIC",
    "RESULTS_PLANE_VERSION",
    "SCENARIO_BYTES",
    "SERIES_BYTES",
    "ResultsPlane",
    "active_results_plane_names",
    "attach_results_plane",
    "create_results_plane",
    "forget_inherited_results_planes",
    "forget_installed_sink",
    "install_results_plane",
    "installed_results_plane",
)
