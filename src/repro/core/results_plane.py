"""Shared-memory results plane: pickle-free return path for sweep outcomes.

The model plane (:mod:`repro.core.shared_structures`) made the *inputs* of a
pooled sweep zero-copy, but every :class:`~repro.core.engine.PointOutcome`
still returned to the parent by pickling through the pool's result queue.  The
results plane closes that gap: a fixed-record shared-memory ring with one slot
per attack grid point, where workers *write* their outcomes as packed numpy
records and the parent *drains* them by reading shared pages -- no pickle, no
queue copy, no per-outcome allocation on the hot path.

Layout and protocol
-------------------
The segment is a 64-byte header (magic, slot count, grid dimensions) followed
by ``num_slots`` fixed-size records of :data:`OUTCOME_DTYPE`.  Slot ``i`` is
the flattened grid coordinate ``(gamma_index * n_p + p_index) * n_attacks +
attack_index``, so writers need no allocator and results are idempotent by
grid key -- exactly the keying the sweep's merge path already uses.

Each slot is protected by a per-slot **seqlock** (its ``seq`` field):

* a writer sets ``seq`` to an odd value, fills the payload fields, then sets
  ``seq`` to the even value ``2`` (publish);
* a reader treats ``seq == 0`` (never written) and odd ``seq`` (write in
  progress -- e.g. the writer died mid-record) as *not ready*, and re-reads
  ``seq`` after decoding to discard torn reads.

Every grid point is computed by exactly one pool task, so each slot has a
single writer and the seqlock only has to protect the parent's concurrent
drain from observing a half-written record.  A slot whose writer crashed
mid-write simply stays unpublished; the sweep's assembly step records the
missing grid key as a :class:`~repro.core.results.SweepFailure` instead of
crashing.

Plain numpy stores provide no cross-process release/acquire ordering, so the
seqlock is a *tear detector*, not a memory barrier: on a weakly ordered CPU a
concurrently racing reader could in principle observe ``seq == 2`` before the
payload stores land.  The parent therefore consumes a slot only after a true
synchronization point with its writer -- the task's future result arriving
(queue IPC), the pool having joined, or the writer process having died --
each of which guarantees the published payload is visible.

Strings (series name, error message, backend name) live in fixed-size fields
-- :data:`ERROR_BYTES` etc.  An outcome whose strings do not fit is *not*
truncated: :meth:`ResultsPlane.write` refuses it and the worker falls back to
returning that one outcome through the pickled future path (counted by the
engine's plane stats), so drained outcomes are always byte-exact.

Lifecycle mirrors the model plane: the parent creates (and finally unlinks)
the segment; workers attach untracked
(:func:`~repro.core.shared_structures.attach_segment_untracked`), never
unlink, and fork-started workers first forget any creator handle inherited
from the parent (:func:`forget_inherited_results_planes`).  An ``atexit``
backstop closes planes still open at interpreter shutdown.
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelError
from .faults import InjectedFault, maybe_fail
from .shared_structures import attach_segment_untracked

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .engine import PointOutcome

#: Magic value identifying a results-plane segment (helps reject foreign
#: segments).  The trailing digit is the layout generation: bumped to 3 when
#: the per-record ``recovery_retries`` counter was added (2 added the
#: ``scenario`` id), so a stale worker from a previous layout fails to attach
#: loudly instead of decoding shifted fields.
PLANE_MAGIC = 0x5245_5355_4C54_5333  # b"RESULTS3"

#: Fixed header: ``[magic][num_slots][n_p][n_attacks]`` as uint64, padded to 64.
_HEADER_DTYPE = np.dtype(np.uint64)
_HEADER_BYTES = 64

#: Capacity of the fixed-size string fields of one record.
SERIES_BYTES = 96
ERROR_BYTES = 512
BACKEND_BYTES = 48
SCENARIO_BYTES = 64

#: Bit flags marking which optional fields of a record are present.
_HAS_ERREV = 1 << 0
_HAS_ERROR = 1 << 1
_HAS_BETA_LOW = 1 << 2
_HAS_BETA_UP = 1 << 3
_HAS_BACKEND = 1 << 4
_HAS_CANCELLED = 1 << 5
_HAS_PORTFOLIO = 1 << 6
_HAS_SCENARIO = 1 << 7
_HAS_RECOVERY = 1 << 8

#: Packed per-slot record: seqlock word, grid key, payload, flagged optionals.
OUTCOME_DTYPE = np.dtype(
    [
        ("seq", np.uint32),
        ("flags", np.uint32),
        ("gamma_index", np.int32),
        ("p_index", np.int32),
        ("attack_index", np.int32),
        ("solver_iterations", np.int64),
        ("num_states", np.int64),
        ("cancelled_iterations", np.int64),
        ("portfolio_races", np.int64),
        ("portfolio_launches_avoided", np.int64),
        ("recovery_retries", np.int64),
        ("p", np.float64),
        ("gamma", np.float64),
        ("errev", np.float64),
        ("seconds", np.float64),
        ("beta_low", np.float64),
        ("beta_up", np.float64),
        ("series", f"S{SERIES_BYTES}"),
        ("error", f"S{ERROR_BYTES}"),
        ("solver_backend", f"S{BACKEND_BYTES}"),
        ("scenario", f"S{SCENARIO_BYTES}"),
    ]
)

#: Results planes currently open in this process (for the atexit backstop).
_ACTIVE_RESULTS_PLANES: Dict[str, "ResultsPlane"] = {}
_REGISTRY_LOCK = threading.Lock()

#: The plane the sweep pool initializer installed in *this worker process*.
_INSTALLED_PLANE: Optional["ResultsPlane"] = None


class ResultsPlane:
    """One shared-memory outcome ring, created by the parent or attached by a worker.

    Use :func:`create_results_plane` / :func:`attach_results_plane` instead of
    constructing directly.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        *,
        creator: bool,
        num_slots: int,
        n_p: int,
        n_attacks: int,
    ) -> None:
        self._segment = segment
        self._creator = creator
        self._closed = False
        self._lock = threading.Lock()
        self.num_slots = num_slots
        self.n_p = n_p
        self.n_attacks = n_attacks
        self._records = np.ndarray(
            (num_slots,), dtype=OUTCOME_DTYPE, buffer=segment.buf, offset=_HEADER_BYTES
        )
        #: Parent-side drain cursor: the ``seq`` value last observed per slot.
        self._seen = np.zeros(num_slots, dtype=np.uint32)

    @property
    def name(self) -> str:
        """System-wide name of the shared-memory segment."""
        return self._segment.name

    @property
    def closed(self) -> bool:
        """Whether this process has dropped its mapping of the segment."""
        return self._closed

    # ----------------------------------------------------------------- writing

    def slot_of(self, gamma_index: int, p_index: int, attack_index: int) -> int:
        """Flattened slot index of one grid coordinate."""
        return (gamma_index * self.n_p + p_index) * self.n_attacks + attack_index

    def write(self, outcome: "PointOutcome") -> bool:
        """Publish one outcome into its grid slot; ``False`` if it does not fit.

        An outcome whose series/error/backend strings exceed the fixed field
        sizes (or whose grid coordinates fall outside the plane's grid) is
        refused rather than truncated -- the caller must return it through the
        ordinary pickled path so the drained result stays byte-exact.
        """
        slot = self.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        if not 0 <= slot < self.num_slots:
            return False
        series = outcome.series.encode("utf-8")
        error = (outcome.error or "").encode("utf-8")
        backend = (outcome.solver_backend or "").encode("utf-8")
        scenario = (outcome.scenario or "").encode("utf-8")
        if (
            len(series) > SERIES_BYTES
            or len(error) > ERROR_BYTES
            or len(backend) > BACKEND_BYTES
            or len(scenario) > SCENARIO_BYTES
        ):
            return False
        # Fixed-size numpy bytes fields strip trailing NULs on read, so a
        # string that *ends* in one cannot round-trip byte-exactly -- refuse
        # it (pathological, but correctness beats coverage here).
        if any(text.endswith(b"\x00") for text in (series, error, backend, scenario)):
            return False
        records = self._records
        flags = 0
        # Seqlock write protocol: odd while the payload is in flux, even once
        # published.  The single writer of this slot is us; the odd value only
        # protects a concurrently draining parent from a torn read.
        records["seq"][slot] = 1
        records["gamma_index"][slot] = outcome.gamma_index
        records["p_index"][slot] = outcome.p_index
        records["attack_index"][slot] = outcome.attack_index
        records["p"][slot] = outcome.p
        records["gamma"][slot] = outcome.gamma
        records["seconds"][slot] = outcome.seconds
        records["solver_iterations"][slot] = outcome.solver_iterations
        records["num_states"][slot] = outcome.num_states
        records["series"][slot] = series
        if outcome.errev is not None:
            flags |= _HAS_ERREV
            records["errev"][slot] = outcome.errev
        if outcome.error is not None:
            flags |= _HAS_ERROR
        records["error"][slot] = error
        if outcome.beta_low is not None:
            flags |= _HAS_BETA_LOW
            records["beta_low"][slot] = outcome.beta_low
        if outcome.beta_up is not None:
            flags |= _HAS_BETA_UP
            records["beta_up"][slot] = outcome.beta_up
        if outcome.solver_backend is not None:
            flags |= _HAS_BACKEND
        records["solver_backend"][slot] = backend
        if outcome.cancelled_iterations is not None:
            flags |= _HAS_CANCELLED
            records["cancelled_iterations"][slot] = outcome.cancelled_iterations
        if outcome.portfolio_races is not None:
            flags |= _HAS_PORTFOLIO
            records["portfolio_races"][slot] = outcome.portfolio_races
            records["portfolio_launches_avoided"][slot] = (
                outcome.portfolio_launches_avoided or 0
            )
        if outcome.scenario is not None:
            flags |= _HAS_SCENARIO
        records["scenario"][slot] = scenario
        if outcome.recovery_retries is not None:
            flags |= _HAS_RECOVERY
            records["recovery_retries"][slot] = outcome.recovery_retries
        records["flags"][slot] = flags
        records["seq"][slot] = 2
        return True

    # ----------------------------------------------------------------- reading

    def _decode(self, slot: int) -> "PointOutcome":
        from .engine import PointOutcome  # deferred: engine imports this module

        record = self._records[slot]
        flags = int(record["flags"])
        return PointOutcome(
            gamma_index=int(record["gamma_index"]),
            p_index=int(record["p_index"]),
            attack_index=int(record["attack_index"]),
            p=float(record["p"]),
            gamma=float(record["gamma"]),
            series=bytes(record["series"]).decode("utf-8"),
            errev=float(record["errev"]) if flags & _HAS_ERREV else None,
            seconds=float(record["seconds"]),
            solver_iterations=int(record["solver_iterations"]),
            num_states=int(record["num_states"]),
            error=bytes(record["error"]).decode("utf-8") if flags & _HAS_ERROR else None,
            beta_low=float(record["beta_low"]) if flags & _HAS_BETA_LOW else None,
            beta_up=float(record["beta_up"]) if flags & _HAS_BETA_UP else None,
            solver_backend=(
                bytes(record["solver_backend"]).decode("utf-8")
                if flags & _HAS_BACKEND
                else None
            ),
            cancelled_iterations=(
                int(record["cancelled_iterations"]) if flags & _HAS_CANCELLED else None
            ),
            portfolio_races=(
                int(record["portfolio_races"]) if flags & _HAS_PORTFOLIO else None
            ),
            portfolio_launches_avoided=(
                int(record["portfolio_launches_avoided"]) if flags & _HAS_PORTFOLIO else None
            ),
            scenario=(
                bytes(record["scenario"]).decode("utf-8") if flags & _HAS_SCENARIO else None
            ),
            recovery_retries=(
                int(record["recovery_retries"]) if flags & _HAS_RECOVERY else None
            ),
        )

    def read(self, slot: int) -> Optional["PointOutcome"]:
        """Read one slot, or ``None`` if it is unwritten or mid-write.

        The seqlock is re-checked after decoding, so a record the writer was
        still filling (or re-publishing) is discarded instead of returned torn.
        The seqlock alone is *not* an inter-process memory barrier (plain
        numpy stores carry no release/acquire ordering), so callers must only
        trust a slot after a real synchronization point with its writer -- the
        writer's future result arriving, the pool joining, or the writer
        process having exited; the engine's drains observe that rule.
        """
        if not 0 <= slot < self.num_slots:
            raise ModelError(f"slot {slot} outside results plane of {self.num_slots} slots")
        seq_before = int(self._records["seq"][slot])
        if seq_before == 0 or seq_before % 2 == 1:
            return None
        outcome = self._decode(slot)
        if int(self._records["seq"][slot]) != seq_before:
            return None
        return outcome

    def take_new(self, slot: int) -> Optional["PointOutcome"]:
        """Read one slot and mark it consumed; ``None`` if unready or already taken.

        Only the creating (parent) process should consume slots: the cursor of
        "what was already seen" is process-local state.
        """
        outcome = self.read(slot)
        if outcome is None or self._seen[slot] == self._records["seq"][slot]:
            return None
        self._seen[slot] = self._records["seq"][slot]
        return outcome

    def drain_new(self) -> List["PointOutcome"]:
        """Consume every slot published since the previous drain, in slot order.

        Safe only once all writers have synchronized with this process (pool
        joined / workers exited) -- see :meth:`read`.
        """
        published = self._records["seq"]
        candidates = np.flatnonzero((published != self._seen) & (published % 2 == 0))
        fresh = (self.take_new(int(slot)) for slot in candidates)
        return [outcome for outcome in fresh if outcome is not None]

    # --------------------------------------------------------------- lifecycle

    def release(self) -> None:
        """Close this process's mapping; the creator additionally unlinks.

        Idempotent -- the engine's ``finally`` and the ``atexit`` backstop may
        both call it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with _REGISTRY_LOCK:
            _ACTIVE_RESULTS_PLANES.pop(self.name, None)
        # The record view holds an exported pointer into the segment buffer;
        # drop it before close() so mmap teardown cannot raise BufferError.
        self._records = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            return
        if self._creator:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


def _register(plane: ResultsPlane) -> ResultsPlane:
    with _REGISTRY_LOCK:
        _ACTIVE_RESULTS_PLANES[plane.name] = plane
    return plane


@atexit.register
def _release_active_results_planes() -> None:  # pragma: no cover - shutdown path
    """Backstop: close every results plane still open at interpreter exit."""
    with _REGISTRY_LOCK:
        planes = list(_ACTIVE_RESULTS_PLANES.values())
    for plane in planes:
        plane.release()


def create_results_plane(n_gammas: int, n_p: int, n_attacks: int) -> ResultsPlane:
    """Allocate a results plane covering one sweep grid (creator side).

    Raises:
        ModelError: If the grid is empty or shared memory cannot be allocated.
    """
    num_slots = n_gammas * n_p * n_attacks
    if num_slots < 1:
        raise ModelError("cannot create a results plane for an empty grid")
    size = _HEADER_BYTES + num_slots * OUTCOME_DTYPE.itemsize
    try:
        segment = shared_memory.SharedMemory(create=True, size=size)
    except OSError as exc:
        raise ModelError(f"cannot allocate shared memory for the results plane: {exc}") from exc
    segment.buf[:size] = b"\x00" * size  # some platforms hand out dirty pages
    header = np.ndarray((4,), dtype=_HEADER_DTYPE, buffer=segment.buf)
    header[0] = PLANE_MAGIC
    header[1] = num_slots
    header[2] = n_p
    header[3] = n_attacks
    return _register(
        ResultsPlane(segment, creator=True, num_slots=num_slots, n_p=n_p, n_attacks=n_attacks)
    )


def attach_results_plane(name: str) -> ResultsPlane:
    """Attach an existing results plane by segment name (worker side).

    Raises:
        ModelError: If no segment with ``name`` exists or it is not a results
            plane (wrong magic, impossible geometry).
    """
    if maybe_fail("results_plane.attach_fail"):
        # Chaos site: a vanished/unmappable segment.  InjectedFault is a
        # ModelError, so the pool initializer's existing fallback (pickled
        # return path) absorbs it.
        raise InjectedFault("results_plane.attach_fail")
    try:
        segment = attach_segment_untracked(name)
    except (FileNotFoundError, OSError) as exc:
        raise ModelError(f"results plane {name!r} is not available: {exc}") from exc
    try:
        header = np.ndarray((4,), dtype=_HEADER_DTYPE, buffer=segment.buf)
        magic, num_slots, n_p, n_attacks = (int(value) for value in header)
        if magic != PLANE_MAGIC:
            raise ModelError(f"segment {name!r} is not a results plane")
        expected = _HEADER_BYTES + num_slots * OUTCOME_DTYPE.itemsize
        if num_slots < 1 or n_p < 1 or n_attacks < 1 or segment.size < expected:
            raise ModelError(f"results plane {name!r} has an impossible geometry")
        return _register(
            ResultsPlane(
                segment, creator=False, num_slots=num_slots, n_p=n_p, n_attacks=n_attacks
            )
        )
    except ModelError:
        segment.close()
        raise


def install_results_plane(name: str) -> ResultsPlane:
    """Attach a plane and make it this worker process's outcome sink.

    Called by the sweep pool initializer; :func:`installed_results_plane` then
    routes every computed outcome of this process into the plane.
    """
    global _INSTALLED_PLANE
    plane = attach_results_plane(name)
    with _REGISTRY_LOCK:
        _INSTALLED_PLANE = plane
    return plane


def installed_results_plane() -> Optional[ResultsPlane]:
    """The plane installed in this process by the pool initializer, if any."""
    if _INSTALLED_PLANE is not None and _INSTALLED_PLANE.closed:
        return None
    return _INSTALLED_PLANE


def forget_inherited_results_planes() -> None:
    """Drop results-plane handles inherited through ``fork`` without closing.

    The same hazard as the model plane's
    :func:`~repro.core.shared_structures.forget_inherited_planes`: a
    fork-started worker inherits the parent's creator-flagged handle (whose
    release would unlink the segment under the parent) and any installed sink
    from a previous life.  Workers must start from a clean registry and attach
    their own untracked mapping.
    """
    global _INSTALLED_PLANE
    with _REGISTRY_LOCK:
        _INSTALLED_PLANE = None
        _ACTIVE_RESULTS_PLANES.clear()


def active_results_plane_names() -> List[str]:
    """Names of the results planes this process holds open (for tests)."""
    with _REGISTRY_LOCK:
        return [name for name, plane in _ACTIVE_RESULTS_PLANES.items() if not plane.closed]


__all__: Tuple[str, ...] = (
    "BACKEND_BYTES",
    "ERROR_BYTES",
    "OUTCOME_DTYPE",
    "PLANE_MAGIC",
    "SCENARIO_BYTES",
    "SERIES_BYTES",
    "ResultsPlane",
    "active_results_plane_names",
    "attach_results_plane",
    "create_results_plane",
    "forget_inherited_results_planes",
    "install_results_plane",
    "installed_results_plane",
)
