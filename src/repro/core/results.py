"""Result containers of the high-level API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.algorithm1 import FormalAnalysisResult
from ..config import AttackParams, ProtocolParams


@dataclass
class AnalysisResult:
    """Complete result of analysing one parameter point.

    Attributes:
        protocol: Protocol parameters the analysis was run for.
        attack: Attack parameters the analysis was run for.
        errev_lower_bound: Epsilon-tight lower bound on the optimal ERRev
            (Algorithm 1's ``beta_low``).
        strategy_errev: Exact ERRev of the extracted strategy (stationary
            evaluation), ``None`` if evaluation was disabled.
        honest_errev: ERRev of honest mining (= ``p``), for comparison.
        num_states: Number of states of the constructed MDP.
        num_transitions: Number of transitions of the constructed MDP.
        build_seconds: Wall-clock time spent building the MDP.
        analysis_seconds: Wall-clock time spent in Algorithm 1.
        formal: The raw :class:`FormalAnalysisResult` (iteration log, strategy).
        simulated_errev: Optional Monte-Carlo estimate of the strategy's ERRev.
    """

    protocol: ProtocolParams
    attack: AttackParams
    errev_lower_bound: float
    strategy_errev: Optional[float]
    honest_errev: float
    num_states: int
    num_transitions: int
    build_seconds: float
    analysis_seconds: float
    formal: FormalAnalysisResult
    simulated_errev: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time (model construction plus analysis)."""
        return self.build_seconds + self.analysis_seconds

    @property
    def advantage_over_honest(self) -> float:
        """How much the attack improves on honest mining (in ERRev)."""
        value = self.strategy_errev if self.strategy_errev is not None else self.errev_lower_bound
        return value - self.honest_errev

    @property
    def chain_quality(self) -> float:
        """Chain quality implied by the attack (1 - ERRev)."""
        value = self.strategy_errev if self.strategy_errev is not None else self.errev_lower_bound
        return 1.0 - value

    def to_row(self) -> Dict[str, object]:
        """Flatten into a dictionary suitable for CSV reporting."""
        return {
            "p": self.protocol.p,
            "gamma": self.protocol.gamma,
            "d": self.attack.depth,
            "f": self.attack.forks,
            "l": self.attack.max_fork_length,
            "errev_lower_bound": self.errev_lower_bound,
            "strategy_errev": self.strategy_errev,
            "honest_errev": self.honest_errev,
            "num_states": self.num_states,
            "num_transitions": self.num_transitions,
            "build_seconds": self.build_seconds,
            "analysis_seconds": self.analysis_seconds,
        }


@dataclass
class SweepPoint:
    """One point of a parameter sweep (one curve sample of Figure 2).

    Attributes:
        p: Adversarial resource fraction.
        gamma: Switching probability.
        series: Name of the curve the point belongs to (e.g. ``"d=2,f=2"``).
        errev: Expected relative revenue at the point.
        seconds: Wall-clock time spent computing the point (``None`` for
            closed-form baseline points, which are effectively free).
        solver_iterations: Total mean-payoff solver iterations Algorithm 1
            spent on the point (``None`` for baseline points).
        beta_low: Certified lower end of the point's final beta interval
            (``None`` for baseline points); satisfies ``beta_low <= ERRev*``.
        beta_up: Certified upper end of the final beta interval (``None`` for
            baseline points); satisfies ``ERRev* <= beta_up`` within the MDP's
            strategy class.
        solver_backend: For portfolio-solved points, the backend that won the
            majority of the point's races (``None`` otherwise).
        cancelled_iterations: For portfolio-solved points, the iterations the
            losing backends were cooperatively cancelled out of across the
            point's races -- solver work the PR 2 portfolio would have burned
            to completion (``None`` outside portfolio runs).
        scenario: Versioned ``name@version`` id of the attack scenario that
            computed the point (see :mod:`repro.attacks.registry`); ``None``
            for closed-form baseline points.
    """

    p: float
    gamma: float
    series: str
    errev: float
    seconds: Optional[float] = None
    solver_iterations: Optional[int] = None
    beta_low: Optional[float] = None
    beta_up: Optional[float] = None
    solver_backend: Optional[str] = None
    cancelled_iterations: Optional[int] = None
    scenario: Optional[str] = None

    def to_row(self) -> Dict[str, object]:
        """Flatten into a dictionary suitable for CSV reporting."""
        row: Dict[str, object] = {
            "p": self.p,
            "gamma": self.gamma,
            "series": self.series,
            "errev": self.errev,
        }
        if self.seconds is not None:
            row["seconds"] = self.seconds
        if self.solver_iterations is not None:
            row["solver_iterations"] = self.solver_iterations
        if self.beta_low is not None:
            row["beta_low"] = self.beta_low
        if self.beta_up is not None:
            row["beta_up"] = self.beta_up
        if self.solver_backend is not None:
            row["solver_backend"] = self.solver_backend
        if self.cancelled_iterations is not None:
            row["cancelled_iterations"] = self.cancelled_iterations
        if self.scenario is not None:
            row["scenario"] = self.scenario
        return row


@dataclass(frozen=True)
class SweepFailure:
    """A parameter point whose analysis raised, isolated from the rest of the sweep.

    Attributes:
        p: Adversarial resource fraction of the failed point.
        gamma: Switching probability of the failed point.
        series: Series the point belonged to.
        message: ``"ExceptionType: message"`` captured in the worker.
    """

    p: float
    gamma: float
    series: str
    message: str


@dataclass
class SweepResult:
    """A collection of sweep points grouped into named series.

    Attributes:
        points: All computed sweep points.
        description: Human-readable description of the sweep.
        failures: Points whose analysis raised; the sweep engine isolates
            per-point failures instead of aborting the whole grid.
        metadata: Execution metadata attached by the engine -- a distributed
            sweep records its fabric statistics under ``metadata["distributed"]``
            (per-worker ``builds``/``attaches``/``units`` counters, reassigned
            and speculatively duplicated unit counts); a pooled sweep records
            how each outcome returned to the parent under
            ``metadata["results_plane"]`` (``via_plane`` counts shared-memory
            records, ``via_pickle`` pickled future payloads, ``synthesized``
            crash placeholders); portfolio-solved sweeps record their race
            history under ``metadata["portfolio"]`` (``races``,
            ``launches_avoided`` by history seeding, per-backend point wins).
    """

    points: List[SweepPoint] = field(default_factory=list)
    description: str = ""
    failures: List[SweepFailure] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_compute_seconds(self) -> float:
        """Sum of per-point compute times (0.0 when no point carries timing)."""
        return sum(point.seconds or 0.0 for point in self.points)

    @property
    def total_solver_iterations(self) -> int:
        """Sum of per-point solver iterations across the sweep."""
        return sum(point.solver_iterations or 0 for point in self.points)

    def series_names(self) -> List[str]:
        """Names of all series, in first-appearance order."""
        names: List[str] = []
        for point in self.points:
            if point.series not in names:
                names.append(point.series)
        return names

    def series(self, name: str, gamma: Optional[float] = None) -> List[SweepPoint]:
        """Return the points of one series (optionally for a single gamma)."""
        return [
            point
            for point in self.points
            if point.series == name and (gamma is None or point.gamma == gamma)
        ]

    def gammas(self) -> List[float]:
        """Distinct gamma values present in the sweep."""
        values: List[float] = []
        for point in self.points:
            if point.gamma not in values:
                values.append(point.gamma)
        return values

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Return a new sweep containing the points of both sweeps.

        Points and failures concatenate; ``metadata`` merges *shallowly* with
        ``other`` winning on key collisions -- merging two distributed sweeps
        keeps only the second fabric's ``metadata["distributed"]`` stats.
        """
        return SweepResult(
            points=self.points + other.points,
            description=self.description,
            failures=self.failures + other.failures,
            metadata={**self.metadata, **other.metadata},
        )
