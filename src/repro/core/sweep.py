"""Parameter sweeps reproducing the paper's Figure 2.

Figure 2 plots the expected relative revenue as a function of the adversary's
resource fraction ``p`` for several switching probabilities ``gamma``, comparing
the paper's attack (for several ``(d, f)`` configurations) against honest mining
and the single-tree baseline.  :func:`sweep_figure2` regenerates those series;
the grid density and configuration list are configurable so the default harness
stays within a laptop-scale time budget (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..analysis import formal_analysis
from ..attacks import build_selfish_forks_mdp, honest_errev, single_tree_errev
from ..attacks.single_tree import SingleTreeParams
from ..config import AnalysisConfig, AttackParams, ProtocolParams
from .results import SweepPoint, SweepResult

#: Default (d, f) configurations of the paper that are tractable by default.
DEFAULT_ATTACK_CONFIGS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

#: Single-tree baseline parameters used in the paper (l = 4, f = 5).
DEFAULT_SINGLE_TREE = SingleTreeParams(max_depth=4, max_width=5)


@dataclass
class SweepConfig:
    """Configuration of a Figure 2 style sweep.

    Attributes:
        p_values: Grid of adversarial resource fractions.
        gammas: Switching probabilities (one plot per gamma in the paper).
        attack_configs: ``(d, f, l)`` configurations of the paper's attack.
        include_honest: Whether to include the honest baseline series.
        include_single_tree: Whether to include the single-tree baseline series.
        single_tree: Parameters of the single-tree baseline.
        analysis: Formal-analysis configuration used for every attack point.
    """

    p_values: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(0, 7))
    gammas: Sequence[float] = (0.0, 0.5, 1.0)
    attack_configs: Sequence[AttackParams] = DEFAULT_ATTACK_CONFIGS
    include_honest: bool = True
    include_single_tree: bool = True
    single_tree: SingleTreeParams = DEFAULT_SINGLE_TREE
    analysis: AnalysisConfig = field(default_factory=lambda: AnalysisConfig(epsilon=1e-3))


def attack_series_name(attack: AttackParams) -> str:
    """Series label of an attack configuration (matches the paper's legend)."""
    return f"ours(d={attack.depth},f={attack.forks})"


def run_sweep(
    config: SweepConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a Figure 2 style sweep and return all computed points.

    Args:
        config: The sweep configuration.
        progress: Optional callback invoked with a short message per computed point.
    """
    points: List[SweepPoint] = []

    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    for gamma in config.gammas:
        for p in config.p_values:
            protocol = ProtocolParams(p=p, gamma=gamma)
            if config.include_honest:
                points.append(
                    SweepPoint(p=p, gamma=gamma, series="honest", errev=honest_errev(protocol))
                )
            if config.include_single_tree:
                points.append(
                    SweepPoint(
                        p=p,
                        gamma=gamma,
                        series=f"single-tree(f={config.single_tree.max_width})",
                        errev=single_tree_errev(protocol, config.single_tree),
                    )
                )
            for attack in config.attack_configs:
                model = build_selfish_forks_mdp(protocol, attack)
                result = formal_analysis(model.mdp, config.analysis)
                errev = (
                    result.strategy_errev
                    if result.strategy_errev is not None
                    else result.errev_lower_bound
                )
                points.append(
                    SweepPoint(p=p, gamma=gamma, series=attack_series_name(attack), errev=errev)
                )
                report(
                    f"gamma={gamma} p={p} {attack_series_name(attack)}: "
                    f"ERRev={errev:.4f} ({model.mdp.num_states} states)"
                )
    return SweepResult(
        points=points,
        description=(
            f"figure-2 sweep over p={list(config.p_values)} and gamma={list(config.gammas)}"
        ),
    )


def sweep_figure2(
    *,
    fine_grid: bool = False,
    gammas: Optional[Sequence[float]] = None,
    attack_configs: Optional[Sequence[AttackParams]] = None,
    epsilon: float = 1e-3,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Convenience wrapper reproducing Figure 2 with sensible defaults.

    Args:
        fine_grid: Use the paper's p-step of 0.01 instead of the default 0.05.
        gammas: Switching probabilities; defaults to the paper's five values when
            ``fine_grid`` is set, otherwise to {0, 0.5, 1}.
        attack_configs: Attack configurations; defaults to the tractable subset.
        epsilon: Binary-search precision of the formal analysis.
        progress: Optional progress callback.
    """
    if fine_grid:
        p_values = tuple(round(0.01 * i, 2) for i in range(0, 31))
        default_gammas = (0.0, 0.25, 0.5, 0.75, 1.0)
    else:
        p_values = tuple(round(0.05 * i, 2) for i in range(0, 7))
        default_gammas = (0.0, 0.5, 1.0)
    config = SweepConfig(
        p_values=p_values,
        gammas=tuple(gammas) if gammas is not None else default_gammas,
        attack_configs=tuple(attack_configs) if attack_configs is not None else DEFAULT_ATTACK_CONFIGS,
        analysis=AnalysisConfig(epsilon=epsilon),
    )
    return run_sweep(config, progress=progress)
