"""Parameter sweeps reproducing the paper's Figure 2.

Figure 2 plots the expected relative revenue as a function of the adversary's
resource fraction ``p`` for several switching probabilities ``gamma``, comparing
the paper's attack (for several ``(d, f)`` configurations) against honest mining
and the single-tree baseline.  :func:`sweep_figure2` regenerates those series;
the grid density and configuration list are configurable so the default harness
stays within a laptop-scale time budget (see DESIGN.md).

Execution is delegated to the sweep engine (:mod:`repro.core.engine`), which
fans the attack grid out over a process pool (``workers``), reuses cached model
structures across grid points and can chain solver warm starts along the ``p``
axis (``warm_start_across_points``).  ``workers=1`` with chaining disabled is
the legacy serial behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .._validation import check_positive_int
from ..attacks.single_tree import SingleTreeParams
from ..config import AnalysisConfig, AttackParams
from ..exceptions import ConfigurationError
from .engine import attack_series_name, execute_sweep
from .results import SweepResult

__all__ = [
    "DEFAULT_ATTACK_CONFIGS",
    "DEFAULT_SINGLE_TREE",
    "SweepConfig",
    "attack_series_name",
    "run_sweep",
    "sweep_figure2",
]

#: Default (d, f) configurations of the paper that are tractable by default.
DEFAULT_ATTACK_CONFIGS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

#: Single-tree baseline parameters used in the paper (l = 4, f = 5).
DEFAULT_SINGLE_TREE = SingleTreeParams(max_depth=4, max_width=5)


@dataclass
class SweepConfig:
    """Configuration of a Figure 2 style sweep.

    Attributes:
        p_values: Grid of adversarial resource fractions.
        gammas: Switching probabilities (one plot per gamma in the paper).
        attack_configs: Attack configurations swept (interpreted by the
            scenario each :class:`AttackParams` names; all configurations of a
            sweep must belong to the same scenario).
        attack: Name of the registered attack scenario to sweep (see
            :mod:`repro.attacks.registry`).  ``None`` (default) derives the
            scenario from ``attack_configs``.  When set while
            ``attack_configs`` still holds the selfish-forks default grid, the
            grid is replaced by the named scenario's default grid
            (``entry.grid_configs("default")``); an explicitly supplied grid of
            a different scenario is a configuration error.
        include_honest: Whether to include the honest baseline series.
        include_single_tree: Whether to include the single-tree baseline series.
        single_tree: Parameters of the single-tree baseline.
        analysis: Formal-analysis configuration used for every attack point.
        workers: Worker processes the engine fans attack points out over;
            1 (default) executes in-process.  Results are bit-for-bit
            identical across worker counts; relative to the pre-engine serial
            sweep the default cached build may differ in the last float ulp
            (use ``use_structure_cache=False`` for the legacy construction).
        use_structure_cache: Reuse the cached ``(d, f, l)`` model skeleton
            across grid points and only refill probabilities per point.
        use_shared_structures: With ``workers > 1``, publish the parent-built
            skeletons on the zero-copy shared-memory model plane
            (:mod:`repro.core.shared_structures`) so workers attach instead of
            re-exploring (the default).  Setting this to false restores the
            PR 2 behaviour -- forked workers inherit private copies, spawned
            workers rebuild every skeleton once per worker -- which the
            shared-structure ablation benchmark uses as its baseline.
        use_results_plane: With ``workers > 1``, return every computed
            :class:`~repro.core.engine.PointOutcome` through the fixed-record
            shared-memory results plane (:mod:`repro.core.results_plane`)
            instead of pickling it through the pool's result queue (the
            default).  Setting this to false restores the pickled future path
            -- the results-plane ablation benchmark uses it as its baseline.
            Either way the computed values are identical; only the return
            transport changes (``SweepResult.metadata["results_plane"]``
            records which path each outcome took).
        warm_start_across_points: Chain each attack series along the ``p``
            axis, seeding every Algorithm 1 run with the optimal strategy and
            bias of the previous grid point.  Changes results only within
            solver tolerance; disabled by default so every point is computed
            independently.
        reuse_p_axis_bounds: Exploit the monotonicity of ERRev* in ``p``: each
            point's binary search starts from the previous (smaller-p) point's
            certified ``beta_low`` instead of 0.  Sound by Theorem 3.1 and
            applied only for non-decreasing p within a series; the series is
            scheduled as one ordered block per worker so the bounds never cross
            a process boundary.  Certified intervals still have width below
            ``epsilon``; the computed values can differ from cold-interval
            results by at most ``epsilon``.
        coordinator: ``HOST:PORT`` to listen on as the coordinator of a
            distributed multi-host sweep (:mod:`repro.core.distributed`): grid
            units are streamed to remote ``repro worker`` processes over TCP
            instead of a local pool, with the model skeletons shipped as the
            same flat buffers the shared-memory plane uses.  ``None`` (default)
            keeps execution local.  CLI: ``repro sweep --distributed --listen``.
        connect: ``HOST:PORT`` of a remote coordinator this config's process
            should serve as a *worker* (consumed by ``repro worker --connect`` /
            :func:`repro.core.distributed.run_worker`, so one config object can
            describe a whole fabric).  A config with ``connect`` set cannot be
            passed to :func:`run_sweep` -- workers compute other sweeps' units,
            they do not own a grid.  Mutually exclusive with ``coordinator``.
        distributed_workers: Number of remote workers the coordinator waits
            for before streaming work (0 = start with the first worker to
            connect; late joiners are always welcome either way).  Only
            meaningful together with ``coordinator``.
        journal_path: Path of the durable sweep journal
            (:mod:`repro.core.journal`).  When set, every computed
            :class:`~repro.core.engine.PointOutcome` is appended to this
            crash-safe JSONL file as it lands.  ``None`` (default) disables
            journaling.  CLI: ``repro sweep --journal PATH``.
        journal_resume: Resume from an existing journal at ``journal_path``:
            intact journaled points are replayed through the normal result
            assembly and only the missing delta is recomputed, bit-for-bit
            identical to an uninterrupted run.  Requires ``journal_path``.
            CLI: ``--resume``.
        journal_fsync: Journal durability policy -- ``"never"``, ``"close"``
            (default; one fsync when the journal closes) or ``"always"``
            (fsync per record).  CLI: ``--journal-fsync``.
    """

    p_values: Sequence[float] = tuple(round(0.05 * i, 2) for i in range(0, 7))
    gammas: Sequence[float] = (0.0, 0.5, 1.0)
    attack_configs: Sequence[AttackParams] = DEFAULT_ATTACK_CONFIGS
    attack: Optional[str] = None
    include_honest: bool = True
    include_single_tree: bool = True
    single_tree: SingleTreeParams = DEFAULT_SINGLE_TREE
    analysis: AnalysisConfig = field(default_factory=lambda: AnalysisConfig(epsilon=1e-3))
    workers: int = 1
    use_structure_cache: bool = True
    use_shared_structures: bool = True
    use_results_plane: bool = True
    warm_start_across_points: bool = False
    reuse_p_axis_bounds: bool = False
    coordinator: Optional[str] = None
    connect: Optional[str] = None
    distributed_workers: int = 0
    journal_path: Optional[str] = None
    journal_resume: bool = False
    journal_fsync: str = "close"

    def __post_init__(self) -> None:
        check_positive_int(self.workers, "workers")
        if not self.p_values:
            raise ConfigurationError("p_values must contain at least one value")
        if not self.gammas:
            raise ConfigurationError("gammas must contain at least one value")
        if not isinstance(self.analysis, AnalysisConfig):
            raise ConfigurationError(
                f"analysis must be an AnalysisConfig, got {type(self.analysis).__name__}"
            )
        if self.attack is not None:
            from ..attacks.registry import get_attack  # deferred: import cycle

            entry = get_attack(self.attack)  # unknown names raise here
            if (
                tuple(self.attack_configs) == DEFAULT_ATTACK_CONFIGS
                and self.attack != "selfish-forks"
            ):
                self.attack_configs = entry.grid_configs("default")
        scenarios = {attack.scenario for attack in self.attack_configs}
        if len(scenarios) > 1:
            raise ConfigurationError(
                f"mixed-scenario sweep: attack_configs span scenarios "
                f"{sorted(scenarios)}; run one sweep per scenario"
            )
        if self.attack is not None and scenarios and scenarios != {self.attack}:
            raise ConfigurationError(
                f"attack={self.attack!r} conflicts with attack_configs of scenario "
                f"{next(iter(scenarios))!r}"
            )
        if self.coordinator is not None and self.connect is not None:
            raise ConfigurationError(
                "coordinator and connect are mutually exclusive: a process either "
                "listens for workers or serves a remote coordinator"
            )
        if self.distributed_workers < 0:
            raise ConfigurationError(
                f"distributed_workers must be >= 0, got {self.distributed_workers}"
            )
        if self.distributed_workers > 0 and self.coordinator is None:
            raise ConfigurationError(
                "distributed_workers requires coordinator (the listen address)"
            )
        if self.journal_resume and self.journal_path is None:
            raise ConfigurationError(
                "journal_resume requires journal_path (the journal to resume from)"
            )
        from .journal import FSYNC_POLICIES  # deferred: import cycle

        if self.journal_fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"journal_fsync must be one of {FSYNC_POLICIES}, "
                f"got {self.journal_fsync!r}"
            )
        from .distributed import parse_address  # deferred: import cycle

        for address in (self.coordinator, self.connect):
            if address is not None:
                try:
                    parse_address(str(address))
                except ValueError as exc:
                    raise ConfigurationError(str(exc)) from exc


def run_sweep(
    config: SweepConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a Figure 2 style sweep and return all computed points.

    Args:
        config: The sweep configuration (including engine settings such as
            ``workers``).
        progress: Optional callback invoked with a short message per computed
            attack point.
    """
    return execute_sweep(config, progress=progress)


def sweep_figure2(
    *,
    fine_grid: bool = False,
    gammas: Optional[Sequence[float]] = None,
    attack_configs: Optional[Sequence[AttackParams]] = None,
    epsilon: float = 1e-3,
    solver: str = "policy_iteration",
    batch_probes: int = 1,
    workers: int = 1,
    use_structure_cache: bool = True,
    warm_start_across_points: bool = False,
    reuse_p_axis_bounds: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Convenience wrapper reproducing Figure 2 with sensible defaults.

    Args:
        fine_grid: Use the paper's p-step of 0.01 instead of the default 0.05.
        gammas: Switching probabilities; defaults to the paper's five values when
            ``fine_grid`` is set, otherwise to {0, 0.5, 1}.
        attack_configs: Attack configurations; defaults to the tractable subset.
        epsilon: Binary-search precision of the formal analysis.
        solver: Mean-payoff solver backend (including ``"portfolio"``).
        batch_probes: Beta probes per binary-search round (1 = classic bisection).
        workers: Worker processes for the sweep engine (1 = serial).
        use_structure_cache: Reuse cached model skeletons across grid points.
        warm_start_across_points: Chain solver warm starts along the p axis.
        reuse_p_axis_bounds: Start each binary search from the previous p
            point's certified lower bound (monotonicity of ERRev* in p).
        progress: Optional progress callback.
    """
    if fine_grid:
        p_values = tuple(round(0.01 * i, 2) for i in range(0, 31))
        default_gammas = (0.0, 0.25, 0.5, 0.75, 1.0)
    else:
        p_values = tuple(round(0.05 * i, 2) for i in range(0, 7))
        default_gammas = (0.0, 0.5, 1.0)
    config = SweepConfig(
        p_values=p_values,
        gammas=tuple(gammas) if gammas is not None else default_gammas,
        attack_configs=tuple(attack_configs) if attack_configs is not None else DEFAULT_ATTACK_CONFIGS,
        analysis=AnalysisConfig(epsilon=epsilon, solver=solver, batch_probes=batch_probes),
        workers=workers,
        use_structure_cache=use_structure_cache,
        warm_start_across_points=warm_start_across_points,
        reuse_p_axis_bounds=reuse_p_axis_bounds,
    )
    return run_sweep(config, progress=progress)
