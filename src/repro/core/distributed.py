"""Distributed multi-host sweep fabric over the flat-buffer model plane.

The local sweep engine (:mod:`repro.core.engine`) fans the ``(p, gamma,
attack)`` grid over a process pool and distributes model structures through a
zero-copy shared-memory segment.  This module ships the *same* work units and
the *same* flat buffers over plain TCP instead, so a sweep can span several
hosts:

* A **coordinator** (``repro sweep --distributed --listen HOST:PORT``) listens
  on a socket, decomposes the grid into the engine's :class:`~repro.core.
  engine.AttackTask` units and streams them to connected workers.  Series-
  ordered scheduling is preserved: when ``reuse_p_axis_bounds`` or
  ``warm_start_across_points`` is enabled a whole p series travels as one unit,
  so chained certified bounds and warm starts never cross a host boundary and
  the monotone bound reuse stays sound across the wire.
* **Workers** (``repro worker --connect HOST:PORT``) connect, advertise the
  versioned attack scenarios they implement, receive every parent-built
  :class:`~repro.attacks.registry.ScenarioStructure` as one
  flat-buffer payload (:func:`~repro.core.shared_structures.pack_structures`,
  the exact byte layout of the shared-memory segment -- substrate header
  included, so magic and layout version are validated on the wire exactly as
  on attach; see :mod:`repro.core.shm`), install the
  reconstructed skeletons into their structure cache and therefore perform
  **zero explorations** -- ``structure_cache_stats()["builds"] == 0`` on a
  remote worker, the same invariant the local shared-memory plane guarantees.
* Results stream back as :class:`~repro.core.engine.PointOutcome` rows and are
  merged into the same :class:`~repro.core.results.SweepResult` / CSV pipeline
  the local engine feeds; the single-process and process-pool paths are
  untouched.

Fault tolerance
---------------
Workers heartbeat the coordinator; a worker whose connection drops (killed
process) or whose heartbeats stop (hung host) has its in-flight units returned
to the queue and reassigned.  Once the queue is empty the coordinator may
additionally *duplicate* units that have been outstanding longer than
``straggler_seconds`` onto idle workers (speculative execution).  Both are safe
because results are **idempotent by grid key**: every outcome carries its
``(gamma_index, p_index, attack_index)`` coordinates and the first result per
unit wins, so a unit computed twice merges to the same value.

Determinism
-----------
A distributed sweep reproduces the serial sweep bit-for-bit (portfolio solver
timing metadata aside): workers run the exact per-task code of the local
engine against skeletons reconstructed bit-for-bit from the coordinator's flat
buffers, and outcomes are re-assembled in canonical grid order regardless of
which host computed them.

Wire protocol
-------------
Frames are length-prefixed binary::

    [uint32 body_len][uint32 header_len][header JSON][binary payload]

with a JSON header carrying the message (``hello`` / ``welcome`` / ``work`` /
``result`` / ``heartbeat`` / ``shutdown``) and the binary payload carrying the
packed structure buffers of the ``welcome`` message.  All integers are
big-endian; frames above :data:`MAX_FRAME_BYTES` are rejected.  The fabric
authenticates nothing and pickles the (integer/string) buffer directory --
bind the coordinator to a trusted network only, exactly like any in-cluster
scheduler.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..attacks.registry import list_attacks, resolve_scenario, scenario_id_for
from ..attacks.structure import install_structure, structure_cache_stats
from ..config import AnalysisConfig, AttackParams
from ..exceptions import ModelError
from .engine import (
    AttackTask,
    PointOutcome,
    _run_attack_task,
)
from .faults import backoff_delays, maybe_fail
from .reporting import ProgressReporter
from .results import SweepResult
from .shared_structures import unpack_structures

# Re-exported as a module attribute: the execution plane's DistributedBackend
# packs the welcome-frame structures via ``fabric.pack_structures`` so tests
# can monkeypatch the wire encoding on this module.
from .shared_structures import pack_structures  # noqa: F401  isort: skip

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..mdp.portfolio import PortfolioHistory
    from .execution import MergeSink
    from .sweep import SweepConfig

#: Protocol version spoken by this module; a mismatch refuses the worker.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame; anything larger is a protocol violation.
MAX_FRAME_BYTES = 1 << 30

#: Default seconds between worker heartbeats; a worker is presumed dead after
#: ``3 *`` this without any frame.
DEFAULT_HEARTBEAT_SECONDS = 5.0

#: Default seconds a unit may stay outstanding (with an empty queue and idle
#: capacity available) before the coordinator duplicates it onto another worker.
DEFAULT_STRAGGLER_SECONDS = 30.0

_FRAME_PREFIX = struct.Struct(">I")


def resolve_heartbeat_seconds(value: Optional[float]) -> float:
    """``value``, or ``REPRO_HEARTBEAT_SECONDS``, or the built-in default."""
    if value is not None:
        return float(value)
    return float(os.environ.get("REPRO_HEARTBEAT_SECONDS", DEFAULT_HEARTBEAT_SECONDS))


def resolve_straggler_seconds(value: Optional[float]) -> float:
    """``value``, or ``REPRO_STRAGGLER_SECONDS``, or the built-in default."""
    if value is not None:
        return float(value)
    return float(os.environ.get("REPRO_STRAGGLER_SECONDS", DEFAULT_STRAGGLER_SECONDS))


class ProtocolError(ModelError):
    """A malformed or oversized frame was received on the sweep fabric."""


# --------------------------------------------------------------------- framing


def encode_frame(header: Dict[str, object], payload: bytes = b"") -> bytes:
    """Encode one wire frame: length prefix, JSON header, binary payload."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body_len = 4 + len(header_bytes) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    return b"".join(
        (_FRAME_PREFIX.pack(body_len), _FRAME_PREFIX.pack(len(header_bytes)), header_bytes, payload)
    )


def decode_frame(body: bytes) -> Tuple[Dict[str, object], bytes]:
    """Decode a frame body (everything after the length prefix)."""
    if len(body) < 4:
        raise ProtocolError("truncated frame body")
    (header_len,) = _FRAME_PREFIX.unpack_from(body)
    if 4 + header_len > len(body):
        raise ProtocolError("frame header overruns body")
    try:
        header = json.loads(body[4 : 4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("frame header must be a JSON object with a 'type'")
    return header, body[4 + header_len :]


async def read_frame(reader: asyncio.StreamReader) -> Tuple[Dict[str, object], bytes]:
    """Read one length-prefixed frame from an asyncio stream.

    Raises:
        asyncio.IncompleteReadError: On EOF (connection closed).
        ProtocolError: On an oversized or malformed frame.
    """
    prefix = await reader.readexactly(_FRAME_PREFIX.size)
    (body_len,) = _FRAME_PREFIX.unpack(prefix)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced a {body_len}-byte frame; refusing")
    return decode_frame(await reader.readexactly(body_len))


def parse_address(value: str, *, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` (or ``:PORT``) address string.

    Raises:
        ValueError: If ``value`` is not of the form ``[HOST]:PORT`` with an
            integer port in ``[0, 65535]`` (0 means "pick an ephemeral port").
    """
    host, separator, port_text = value.rpartition(":")
    if not separator:
        raise ValueError(f"address must be HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address must end in an integer port, got {value!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port must be in [0, 65535], got {port}")
    return host or default_host, port


# -------------------------------------------------------- task / outcome wire


def task_to_wire(task: AttackTask) -> Dict[str, object]:
    """Serialise an :class:`AttackTask` into a JSON-safe dictionary.

    The frame carries the versioned ``scenario_id`` of the task's attack
    scenario alongside the parameters, so a receiver that implements a
    different version of the scenario refuses the unit instead of silently
    computing it against different semantics.
    """
    wire = asdict(task)
    wire["attack"] = task.attack.to_dict()
    wire["analysis"] = task.analysis.to_dict()
    wire["scenario_id"] = scenario_id_for(task.attack.scenario)
    return wire


def task_from_wire(wire: Dict[str, object]) -> AttackTask:
    """Reconstruct an :class:`AttackTask` from :func:`task_to_wire` output.

    Raises:
        ModelError: If the frame's ``scenario_id`` names a scenario this
            process does not implement (or implements at another version).
    """
    data = dict(wire)
    scenario_id = data.pop("scenario_id", None)
    if scenario_id is not None:
        resolve_scenario(str(scenario_id))  # raises ModelError on mismatch
    data["attack"] = AttackParams(**data["attack"])
    data["analysis"] = AnalysisConfig(**data["analysis"])
    data["p_values"] = tuple(data["p_values"])
    data["p_indices"] = tuple(data["p_indices"])
    return AttackTask(**data)


def outcome_to_wire(outcome: PointOutcome) -> Dict[str, object]:
    """Serialise a :class:`PointOutcome` into a JSON-safe dictionary."""
    return asdict(outcome)


def outcome_from_wire(wire: Dict[str, object]) -> PointOutcome:
    """Reconstruct a :class:`PointOutcome` from :func:`outcome_to_wire` output."""
    return PointOutcome(**wire)


def _validate_hello(
    header: Dict[str, object],
    required_scenarios: Tuple[str, ...] = (),
) -> Tuple[int, float]:
    """Validate a worker hello frame; return ``(capacity, heartbeat_seconds)``.

    Hello fields cross a trust boundary: a mismatched or buggy worker can send
    anything, and the coordinator must reject it cleanly instead of crashing
    (uncaught ``ValueError`` from ``int``/``float``) or accepting poison values
    (``capacity <= 0`` starves the scheduler; a zero, negative, NaN or infinite
    heartbeat either divides the monitor by nonsense or declares the worker
    immortal).

    ``required_scenarios`` are the versioned scenario ids the sweep's grid
    needs; a worker whose advertised ``scenarios`` list (absent = none) does
    not cover them is refused up front, instead of failing -- or, worse,
    *mis-computing* -- every unit it is handed.

    Raises:
        ProtocolError: Describing the offending field.
    """
    if header.get("type") != "hello":
        raise ProtocolError(f"expected hello, got {header.get('type')!r}")
    protocol = header.get("protocol")
    if not isinstance(protocol, int) or isinstance(protocol, bool):
        raise ProtocolError(f"non-integer protocol {protocol!r}")
    if protocol != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol {protocol} unsupported (this coordinator speaks {PROTOCOL_VERSION})"
        )
    # isinstance, not int()/float() coercion: 2.9 or true must be *rejected*,
    # not silently truncated to a capacity the worker never advertised.
    capacity = header.get("capacity", 1)
    if not isinstance(capacity, int) or isinstance(capacity, bool):
        raise ProtocolError(f"non-integer capacity {capacity!r}")
    if capacity < 1:
        raise ProtocolError(f"capacity must be >= 1, got {capacity}")
    heartbeat = header.get("heartbeat_seconds", DEFAULT_HEARTBEAT_SECONDS)
    if not isinstance(heartbeat, (int, float)) or isinstance(heartbeat, bool):
        raise ProtocolError(f"non-numeric heartbeat_seconds {heartbeat!r}")
    heartbeat = float(heartbeat)
    if not math.isfinite(heartbeat) or heartbeat <= 0.0:
        raise ProtocolError(f"heartbeat_seconds must be finite and > 0, got {heartbeat}")
    if required_scenarios:
        advertised = header.get("scenarios", [])
        if not isinstance(advertised, list) or not all(
            isinstance(entry, str) for entry in advertised
        ):
            raise ProtocolError(f"scenarios must be a list of strings, got {advertised!r}")
        missing = [entry for entry in required_scenarios if entry not in advertised]
        if missing:
            raise ProtocolError(
                f"worker does not implement required attack scenario(s) {missing} "
                f"(advertised {advertised})"
            )
    return capacity, heartbeat


# ---------------------------------------------------------------- coordinator


@dataclass
class _RemoteWorker:
    """Coordinator-side bookkeeping for one connected worker."""

    ident: int
    name: str
    capacity: int
    writer: asyncio.StreamWriter
    last_seen: float
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS
    assigned: Dict[int, float] = field(default_factory=dict)
    completed_units: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def free_slots(self) -> int:
        """Units this worker can still take before hitting its capacity."""
        return max(0, self.capacity - len(self.assigned))


class _Coordinator:
    """Asyncio coordinator: schedules units, heartbeats workers, streams results.

    Scheduling only: dispatch, heartbeat liveness, straggler duplication and
    requeue live here, while every accepted result is pushed straight into the
    shared :class:`~repro.core.execution.MergeSink` (unit-level idempotent
    merge, journal append, progress) -- the coordinator itself never journals
    or merges.
    """

    def __init__(
        self,
        tasks: List[AttackTask],
        structures_blob: Optional[bytes],
        *,
        min_workers: int,
        heartbeat_seconds: float,
        straggler_seconds: float,
        report: Callable[[str], None],
        sink: "MergeSink",
    ) -> None:
        self.tasks = tasks
        self.structures_blob = structures_blob
        #: Versioned scenario ids the grid needs; hello frames must cover them.
        self.required_scenarios: Tuple[str, ...] = tuple(
            sorted({scenario_id_for(task.attack.scenario) for task in tasks})
        )
        self.min_workers = min_workers
        self.heartbeat_seconds = heartbeat_seconds
        self.straggler_seconds = straggler_seconds
        self.report = report
        #: The one merge pipeline: every accepted unit's outcomes flow through
        #: the sink exactly once, no matter how many workers duplicated it.
        self.sink = sink
        self.pending: deque[int] = deque(range(len(tasks)))
        self.unit_holders: Dict[int, Set[int]] = {}
        #: Scheduling state only (which units are done); the outcomes
        #: themselves live in the sink.
        self.completed_units: Set[int] = set()
        self.workers: Dict[int, _RemoteWorker] = {}
        self.workers_ever = 0
        self.reassigned_units = 0
        self.duplicated_units = 0
        self.rejoined_workers = 0
        self.worker_stats: Dict[str, Dict[str, object]] = {}
        self.done = asyncio.Event()
        self.handler_tasks: Set[asyncio.Task] = set()
        self._next_ident = 0
        self._names_seen: Set[str] = set()

    # -- scheduling

    def _dispatch(self) -> None:
        """Hand pending units to free worker slots (event-driven, never blocks)."""
        if self.workers_ever < self.min_workers or self.done.is_set():
            return
        for worker in sorted(self.workers.values(), key=lambda w: -w.free_slots):
            while worker.free_slots > 0 and self.pending:
                self._assign(self.pending.popleft(), worker)
        if not self.pending:
            self._dispatch_stragglers()

    def _assign(self, unit_id: int, worker: _RemoteWorker) -> None:
        worker.assigned[unit_id] = time.monotonic()
        self.unit_holders.setdefault(unit_id, set()).add(worker.ident)
        self._send(worker, {"type": "work", "unit_id": unit_id, "task": task_to_wire(self.tasks[unit_id])})

    def _dispatch_stragglers(self) -> None:
        """Duplicate long-outstanding units onto idle workers (speculative)."""
        now = time.monotonic()
        outstanding = [
            (assigned_at, unit_id)
            for worker in self.workers.values()
            for unit_id, assigned_at in worker.assigned.items()
            if unit_id not in self.completed_units
        ]
        outstanding.sort()
        for assigned_at, unit_id in outstanding:
            if now - assigned_at < self.straggler_seconds:
                break  # sorted oldest-first: the rest are younger still
            holders = self.unit_holders.get(unit_id, set())
            for worker in self.workers.values():
                if worker.free_slots > 0 and worker.ident not in holders:
                    self.duplicated_units += 1
                    self.report(
                        f"unit {unit_id} outstanding for {now - assigned_at:.1f}s; "
                        f"duplicating onto worker {worker.name}"
                    )
                    self._assign(unit_id, worker)
                    break

    def _send(self, worker: _RemoteWorker, header: Dict[str, object], payload: bytes = b"") -> None:
        try:
            worker.writer.write(encode_frame(header, payload))
        except (ConnectionError, RuntimeError):
            # The reader loop of this worker will observe the broken pipe and
            # requeue its units; nothing to do here.
            pass

    # -- lifecycle events

    def _drop_worker(self, worker: _RemoteWorker, reason: str) -> None:
        if self.workers.pop(worker.ident, None) is None:
            return
        requeue = sorted(unit for unit in worker.assigned if unit not in self.completed_units)
        # Iterate highest-first so repeated appendleft leaves the queue front
        # in ascending unit order: units are numbered in series order, and
        # front-of-queue, in-order reassignment lets a p-axis warm-start chain
        # resume on the next worker with minimal cold restarts.
        for unit_id in reversed(requeue):
            self.unit_holders.get(unit_id, set()).discard(worker.ident)
            if not self.unit_holders.get(unit_id):
                # No other worker is computing this unit: back to the queue,
                # in front, so reassignment does not wait behind fresh work.
                self.pending.appendleft(unit_id)
                self.reassigned_units += 1
        worker.assigned.clear()
        try:
            worker.writer.close()
        except Exception:  # pragma: no cover - platform-dependent close errors
            pass
        if requeue:
            self.report(
                f"worker {worker.name} {reason}; requeued {len(requeue)} unit(s) "
                f"{sorted(requeue)}"
            )
        else:
            self.report(f"worker {worker.name} {reason}")
        self._dispatch()

    def _record_result(self, worker: _RemoteWorker, header: Dict[str, object]) -> None:
        unit_id = int(header["unit_id"])
        worker.assigned.pop(unit_id, None)
        self.unit_holders.get(unit_id, set()).discard(worker.ident)
        outcomes = [outcome_from_wire(wire) for wire in header["outcomes"]]
        if unit_id in self.completed_units:
            # Duplicate delivery (straggler or reassigned-but-alive worker):
            # the sink applies first-result-wins / fewer-errors-wins and tells
            # us how many errored points this recompute replaced, so the
            # replacement can be attributed to the worker that computed it.
            replaced = self.sink.accept_unit(unit_id, outcomes)
            if replaced:
                self.report(
                    f"unit {unit_id}: recompute on worker {worker.name} replaced "
                    f"{replaced} errored point(s)"
                )
            if isinstance(header.get("stats"), dict):
                worker.stats = header["stats"]
                self.worker_stats[worker.name] = dict(header["stats"], units=worker.completed_units)
            self._dispatch()
            return
        self.completed_units.add(unit_id)
        self.sink.accept_unit(unit_id, outcomes)
        worker.completed_units += 1
        if isinstance(header.get("stats"), dict):
            worker.stats = header["stats"]
            self.worker_stats[worker.name] = dict(header["stats"], units=worker.completed_units)
        if len(self.completed_units) == len(self.tasks):
            self._finish()
        else:
            self._dispatch()

    def _finish(self) -> None:
        for worker in self.workers.values():
            self._send(worker, {"type": "shutdown"})
        self.done.set()

    # -- asyncio plumbing

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one worker connection: handshake, then frames until EOF."""
        task = asyncio.current_task()
        if task is not None:
            self.handler_tasks.add(task)
            task.add_done_callback(self.handler_tasks.discard)
        worker: Optional[_RemoteWorker] = None
        try:
            header, _ = await asyncio.wait_for(read_frame(reader), timeout=30.0)
            try:
                capacity, advertised_heartbeat = _validate_hello(header, self.required_scenarios)
            except ProtocolError as exc:
                # A garbage hello (wrong type/protocol, non-numeric or
                # non-positive capacity/heartbeat) must refuse *this* worker
                # with a clean error frame -- never take the coordinator (and
                # every healthy worker's sweep) down with an uncaught
                # ValueError.
                self.report(f"rejecting worker hello: {exc}")
                writer.write(encode_frame({"type": "error", "message": str(exc)}))
                await writer.drain()
                return
            self._next_ident += 1
            ident = self._next_ident
            name = str(header.get("name") or f"worker-{ident}")
            if name in self._names_seen:
                # A worker process we already served is back on a fresh
                # connection (self-healing reconnect after a drop).
                self.rejoined_workers += 1
            self._names_seen.add(name)
            worker = _RemoteWorker(
                ident=ident,
                name=f"{name}#{ident}",
                capacity=capacity,
                writer=writer,
                last_seen=time.monotonic(),
                heartbeat_seconds=advertised_heartbeat,
            )
            self.workers[ident] = worker
            self.workers_ever += 1
            self.report(f"worker {worker.name} connected (capacity {worker.capacity})")
            self._send(
                worker,
                {"type": "welcome", "worker_id": ident, "structures": self.structures_blob is not None},
                self.structures_blob or b"",
            )
            if self.done.is_set():
                self._send(worker, {"type": "shutdown"})
            else:
                self._dispatch()
            while True:
                header, _ = await read_frame(reader)
                worker.last_seen = time.monotonic()
                kind = header.get("type")
                if kind == "result":
                    self._record_result(worker, header)
                elif kind == "heartbeat":
                    pass
                elif kind == "goodbye":
                    break
                else:
                    raise ProtocolError(f"unexpected frame {kind!r} from {worker.name}")
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
            pass
        except ProtocolError as exc:
            self.report(f"protocol error: {exc}")
        finally:
            if worker is not None:
                self._drop_worker(worker, "disconnected")
            else:
                writer.close()

    async def monitor(self) -> None:
        """Periodically drop heartbeat-silent workers and chase stragglers.

        The liveness timeout honours each worker's *advertised* heartbeat
        interval (from its hello frame): a coordinator configured with a
        shorter ``--heartbeat-seconds`` than its workers must not declare
        perfectly healthy workers dead between their beacons.
        """
        interval = max(0.1, self.heartbeat_seconds / 2.0)
        while not self.done.is_set():
            await asyncio.sleep(interval)
            now = time.monotonic()
            for worker in list(self.workers.values()):
                timeout = 3.0 * max(self.heartbeat_seconds, worker.heartbeat_seconds)
                if now - worker.last_seen > timeout:
                    self._drop_worker(worker, f"missed heartbeats for {now - worker.last_seen:.1f}s")
            if not self.pending:
                self._dispatch_stragglers()

    def serve(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        on_listen: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Run the fabric on this thread until every unit has completed.

        Args:
            host: Address to listen on.
            port: Port to listen on (0 = ephemeral; the bound port reaches
                ``on_listen``).
            timeout: Optional overall deadline (seconds).
            on_listen: Optional callback invoked with the bound ``(host,
                port)`` once the coordinator is accepting connections.

        Raises:
            ModelError: If the listen address cannot be bound or ``timeout``
                expires before the grid completes.
        """
        if not self.tasks:
            return

        async def _run() -> None:
            try:
                server = await asyncio.start_server(self.handle_connection, host, port)
            except OSError as exc:
                raise ModelError(f"cannot listen on {host}:{port}: {exc}") from exc
            bound = server.sockets[0].getsockname()
            self.report(f"coordinator listening on {bound[0]}:{bound[1]}")
            if on_listen is not None:
                on_listen(bound[0], bound[1])
            monitor = asyncio.ensure_future(self.monitor())
            try:
                await asyncio.wait_for(self.done.wait(), timeout)
            except asyncio.TimeoutError:
                raise ModelError(
                    f"distributed sweep did not complete within {timeout}s "
                    f"({len(self.completed_units)}/{len(self.tasks)} units done, "
                    f"{len(self.workers)} worker(s) connected)"
                ) from None
            finally:
                monitor.cancel()
                server.close()
                await server.wait_closed()
                # Nudge still-connected workers off the socket and let their
                # handlers run to completion, so loop teardown never cancels a
                # handler mid-read (noisy, and it would skip the drop
                # bookkeeping).
                for remote in list(self.workers.values()):
                    remote.writer.close()
                if self.handler_tasks:
                    await asyncio.wait(list(self.handler_tasks), timeout=5.0)

        asyncio.run(_run())


def run_distributed_sweep(
    config: "SweepConfig",
    *,
    progress: Optional[Callable[[str], None]] = None,
    heartbeat_seconds: Optional[float] = None,
    straggler_seconds: Optional[float] = None,
    timeout: Optional[float] = None,
    on_listen: Optional[Callable[[str, int], None]] = None,
) -> SweepResult:
    """Coordinate a sweep over remote TCP workers and return its sweep result.

    Invoked by :func:`repro.core.engine.execute_sweep` when
    ``config.coordinator`` is set; blocks until every grid unit has been
    computed by some worker.  Baseline series are evaluated inline as in the
    local engine, and the assembled :class:`~repro.core.results.SweepResult`
    additionally carries fabric statistics under
    ``result.metadata["distributed"]`` (per-worker ``builds`` / ``attaches`` /
    ``units`` plus reassignment counters).

    Args:
        config: Sweep configuration with ``coordinator`` set to the
            ``HOST:PORT`` to listen on and ``distributed_workers`` to the
            number of workers to wait for before scheduling (0 = first worker).
        progress: Optional per-event callback (worker joins/losses, unit
            reassignments and one line per computed point).
        heartbeat_seconds: Worker liveness granularity; a worker silent for 3x
            this is presumed dead.  Defaults to ``REPRO_HEARTBEAT_SECONDS`` or
            :data:`DEFAULT_HEARTBEAT_SECONDS`.
        straggler_seconds: Age after which an outstanding unit may be
            speculatively duplicated onto an idle worker once the queue is
            empty.  Defaults to ``REPRO_STRAGGLER_SECONDS`` or
            :data:`DEFAULT_STRAGGLER_SECONDS`.
        timeout: Optional overall deadline (seconds); raises
            :class:`~repro.exceptions.ModelError` when exceeded.
        on_listen: Optional callback invoked with the bound ``(host, port)``
            once the coordinator is accepting connections (ports chosen with
            ``:0`` become known here).

    Raises:
        ModelError: If the listen address cannot be bound or ``timeout``
            expires before the grid completes.
    """
    # Imported lazily to break the distributed <-> execution import cycle.
    # Everything that used to live here -- journal open/resume, unit merging,
    # baseline synthesis, result assembly -- now flows through the shared
    # execution plane; this module only contributes the fabric backend.
    from .execution import DistributedBackend, execute_plan

    backend = DistributedBackend(
        heartbeat_seconds=heartbeat_seconds,
        straggler_seconds=straggler_seconds,
        timeout=timeout,
        on_listen=on_listen,
    )
    return execute_plan(config, backend, progress=progress)


# --------------------------------------------------------------------- worker


@dataclass
class WorkerSummary:
    """What one worker process did over the lifetime of its connection(s).

    Attributes:
        units: Work units this worker computed (and successfully reported),
            summed over every connection it served.
        outcomes: Individual grid points inside those units.
        builds: Breadth-first explorations the worker performed -- 0 whenever
            the coordinator shipped structures over the wire.
        attaches: Structures installed from the coordinator's flat buffers.
        clean_shutdown: True when the coordinator said ``shutdown`` (or the
            worker drained gracefully on SIGTERM/SIGINT); False when the
            connection dropped and could not be re-established.
        reconnects: Connections re-established after a drop (self-healing).
        signalled: True when SIGTERM/SIGINT triggered a graceful drain.
    """

    units: int = 0
    outcomes: int = 0
    builds: int = 0
    attaches: int = 0
    clean_shutdown: bool = False
    reconnects: int = 0
    signalled: bool = False


def run_worker(
    connect: str,
    *,
    capacity: int = 1,
    heartbeat_seconds: Optional[float] = None,
    connect_retry_seconds: float = 10.0,
    reconnect_seconds: float = 60.0,
    progress: Optional[Callable[[str], None]] = None,
) -> WorkerSummary:
    """Serve a remote coordinator: compute streamed sweep units until shutdown.

    The worker connects to ``connect`` (with capped exponential backoff for up
    to ``connect_retry_seconds``, so it can be started before the
    coordinator), installs the structures received in the ``welcome`` frame
    into its process-local cache (zero explorations, exactly like a
    shared-memory pool worker), and computes up to ``capacity`` units
    concurrently on a thread pool -- the solvers release the GIL inside their
    numpy kernels, so thread-level capacity scales on numeric workloads while
    keeping the structure cache shared.

    The worker is *self-healing*: a dropped connection (coordinator crash or
    restart) does not kill it -- it re-dials with the same capped exponential
    backoff for up to ``reconnect_seconds`` and re-handshakes, so a
    coordinator restarted with ``--journal PATH --resume`` finds its fleet
    waiting.  SIGTERM/SIGINT trigger a graceful drain: in-flight units finish
    and report their results, a ``goodbye`` frame is sent, and the worker
    exits cleanly.

    Args:
        connect: ``HOST:PORT`` of the coordinator (also accepts a
            :class:`~repro.core.sweep.SweepConfig` whose ``connect`` is set).
        capacity: Concurrent units this worker advertises and computes.
        heartbeat_seconds: Interval between heartbeat frames.  Defaults to
            ``REPRO_HEARTBEAT_SECONDS`` or :data:`DEFAULT_HEARTBEAT_SECONDS`.
        connect_retry_seconds: How long to retry the initial connection.
        reconnect_seconds: How long to retry re-establishing a *dropped*
            connection before giving up; ``0`` restores the legacy
            exit-on-drop behaviour.
        progress: Optional callback for per-unit log lines.

    Returns:
        A :class:`WorkerSummary`; ``clean_shutdown`` distinguishes a
        coordinator-initiated shutdown (or graceful signal drain) from a
        dropped connection that could not be healed.

    Raises:
        ModelError: If the coordinator cannot be reached within
            ``connect_retry_seconds`` or speaks a different protocol version.
    """
    if hasattr(connect, "connect"):  # a SweepConfig-style object
        connect = str(connect.connect)
    heartbeat_seconds = resolve_heartbeat_seconds(heartbeat_seconds)
    host, port = parse_address(str(connect))
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if reconnect_seconds < 0:
        raise ValueError(f"reconnect_seconds must be >= 0, got {reconnect_seconds}")

    report = ProgressReporter.wrap(progress)

    summary = WorkerSummary()

    async def _dial(
        draining: asyncio.Event, budget: float, *, initial: bool
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        """Connect with capped exponential backoff; ``None`` = gave up/draining.

        Raises:
            ModelError: When the *initial* connection budget is exhausted (a
                worker that never reached its coordinator is a setup error; a
                worker that lost an established one merely reports and exits).
        """
        deadline = time.monotonic() + budget
        delays = backoff_delays(initial=0.2, cap=2.0)
        while not draining.is_set():
            try:
                return await asyncio.open_connection(host, port)
            except OSError as exc:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if initial:
                        raise ModelError(
                            f"cannot connect to coordinator at {host}:{port}: {exc}"
                        ) from exc
                    report(f"cannot reconnect to coordinator at {host}:{port}: {exc}")
                    return None
                try:
                    # Sleeping on the drain event keeps signal response
                    # instant even mid-backoff.
                    await asyncio.wait_for(
                        draining.wait(), timeout=min(next(delays), remaining)
                    )
                except asyncio.TimeoutError:
                    pass
        return None

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        draining = asyncio.Event()

        def request_drain(signum: int) -> None:
            if not draining.is_set():
                summary.signalled = True
                report(
                    f"signal {signum}: draining (finishing in-flight unit(s), "
                    f"then goodbye)"
                )
                draining.set()

        import signal as signal_module

        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(sig, request_drain, int(sig))
            except (NotImplementedError, RuntimeError, ValueError):
                # Platforms/threads without signal-handler support keep the
                # default behaviour (hard exit).
                pass

        # One race history per worker *process*: every unit computed on any
        # connection seeds later units' portfolio scheduling (thread-safe,
        # since capacity > 1 runs units concurrently against it), and
        # reconnects keep the learned window warm.
        from ..mdp.portfolio import PortfolioHistory

        portfolio_history = PortfolioHistory()

        first_connection = True
        while True:
            budget = connect_retry_seconds if first_connection else reconnect_seconds
            connection = await _dial(draining, budget, initial=first_connection)
            if connection is None:
                break
            reader, writer = connection
            if not first_connection:
                summary.reconnects += 1
                report(f"reconnected to coordinator at {host}:{port}")
            first_connection = False
            clean = await _serve_connection(
                loop, draining, reader, writer, portfolio_history
            )
            if clean or draining.is_set() or reconnect_seconds <= 0:
                break
            report("connection to coordinator lost; reconnecting")
        stats = structure_cache_stats()
        summary.builds = stats["builds"]
        summary.attaches = stats["attaches"]

    async def _serve_connection(
        loop: asyncio.AbstractEventLoop,
        draining: asyncio.Event,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        portfolio_history: "PortfolioHistory",
    ) -> bool:
        """Serve one established connection; return True on clean shutdown."""
        write_lock = asyncio.Lock()
        stop = asyncio.Event()

        def compute_in_daemon_thread(task: AttackTask) -> "asyncio.Future":
            """Run one unit on a dedicated *daemon* thread.

            Daemon threads (unlike a ``ThreadPoolExecutor``'s workers) are not
            joined at interpreter exit, so a unit abandoned at shutdown --
            e.g. one that was straggler-duplicated and already completed
            elsewhere -- can never block the worker process from exiting.
            Concurrency is bounded by the coordinator, which never keeps more
            than the advertised ``capacity`` units outstanding per worker.
            """
            future = loop.create_future()

            def runner() -> None:
                try:
                    result = _run_attack_task(task, portfolio_history)
                except BaseException as exc:  # noqa: BLE001 - marshalled to the loop
                    outcome: Tuple[bool, object] = (False, exc)
                else:
                    outcome = (True, result)
                def resolve() -> None:
                    if future.cancelled():
                        return
                    ok, value = outcome
                    if ok:
                        future.set_result(value)
                    else:
                        future.set_exception(value)
                try:
                    loop.call_soon_threadsafe(resolve)
                except RuntimeError:
                    pass  # loop already closed; the process is exiting

            threading.Thread(target=runner, daemon=True, name="repro-worker-unit").start()
            return future

        async def send(header: Dict[str, object]) -> None:
            async with write_lock:
                writer.write(encode_frame(header))
                await writer.drain()

        async def heartbeat() -> None:
            while not stop.is_set():
                await asyncio.sleep(heartbeat_seconds)
                if maybe_fail("distributed.heartbeat_stall"):
                    # Chaos site: skip this beacon.  Enough consecutive stalls
                    # make the coordinator presume us dead and requeue.
                    continue
                try:
                    await send({"type": "heartbeat"})
                except (ConnectionError, RuntimeError):
                    return

        async def run_unit(unit_id: int, task: AttackTask) -> None:
            outcomes = await compute_in_daemon_thread(task)
            stats = structure_cache_stats()
            frame = {
                "type": "result",
                "unit_id": unit_id,
                "outcomes": [outcome_to_wire(outcome) for outcome in outcomes],
                "stats": {
                    "builds": stats["builds"],
                    "attaches": stats["attaches"],
                    "entries": stats["entries"],
                },
            }
            try:
                if maybe_fail("distributed.result_drop"):
                    # Chaos site: silently swallow the result frame.  Recovery
                    # is the coordinator's job (heartbeat requeue after we are
                    # presumed dead, or straggler duplication).
                    report(f"unit {unit_id}: result frame dropped (injected fault)")
                    return
                if maybe_fail("distributed.result_corrupt"):
                    # Chaos site: garble the frame's header bytes.  The
                    # coordinator must reject it as a ProtocolError and drop
                    # this worker, which then self-heals by reconnecting.
                    report(f"unit {unit_id}: result frame corrupted (injected fault)")
                    corrupted = bytearray(encode_frame(frame))
                    for index in range(8, min(len(corrupted), 24)):
                        corrupted[index] ^= 0xFF
                    async with write_lock:
                        writer.write(bytes(corrupted))
                        await writer.drain()
                    return
                await send(frame)
            except (ConnectionError, RuntimeError):
                # The reader loop observes the dropped connection; the
                # coordinator will reassign this unit elsewhere.
                return
            summary.units += 1
            summary.outcomes += len(outcomes)
            report(f"unit {unit_id}: {len(outcomes)} point(s) done")

        await send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "capacity": capacity,
                "heartbeat_seconds": heartbeat_seconds,
                "name": f"{socket.gethostname()}:{os.getpid()}",
                "scenarios": [entry.scenario_id for entry in list_attacks()],
            }
        )
        heartbeats = asyncio.ensure_future(heartbeat())
        units_in_flight: Set[asyncio.Task] = set()
        clean = False
        try:
            while True:
                frame_future: asyncio.Task = asyncio.ensure_future(read_frame(reader))
                drain_future: asyncio.Task = asyncio.ensure_future(draining.wait())
                done, _ = await asyncio.wait(
                    {frame_future, drain_future}, return_when=asyncio.FIRST_COMPLETED
                )
                if frame_future not in done:
                    # Graceful signal drain: stop taking frames, let every
                    # in-flight unit finish and report its result, then say
                    # goodbye below (clean counts as a proper shutdown).
                    frame_future.cancel()
                    if units_in_flight:
                        await asyncio.wait(list(units_in_flight))
                    clean = True
                    break
                drain_future.cancel()
                header, payload = frame_future.result()
                kind = header.get("type")
                if kind == "welcome":
                    if header.get("structures") and payload:
                        for structure in unpack_structures(payload):
                            install_structure(structure)
                        report(f"installed {structure_cache_stats()['attaches']} structure(s)")
                elif kind == "work":
                    task = task_from_wire(header["task"])
                    unit = asyncio.ensure_future(run_unit(int(header["unit_id"]), task))
                    units_in_flight.add(unit)
                    unit.add_done_callback(units_in_flight.discard)
                elif kind == "shutdown":
                    clean = True
                    # Units still in flight were duplicated or completed
                    # elsewhere; the coordinator no longer wants them.
                    break
                elif kind == "error":
                    raise ModelError(f"coordinator refused: {header.get('message')}")
                else:
                    raise ProtocolError(f"unexpected frame {kind!r} from coordinator")
        except (asyncio.IncompleteReadError, ConnectionError):
            report("connection to coordinator lost")
        finally:
            stop.set()
            heartbeats.cancel()
            for unit in units_in_flight:
                unit.cancel()
            try:
                if clean:
                    summary.clean_shutdown = True
                    await send({"type": "goodbye"})
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
        return clean

    asyncio.run(_serve())
    return summary


__all__ = [
    "DEFAULT_HEARTBEAT_SECONDS",
    "DEFAULT_STRAGGLER_SECONDS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WorkerSummary",
    "decode_frame",
    "encode_frame",
    "outcome_from_wire",
    "outcome_to_wire",
    "parse_address",
    "read_frame",
    "run_distributed_sweep",
    "run_worker",
    "task_from_wire",
    "task_to_wire",
]
