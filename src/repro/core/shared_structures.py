"""Zero-copy shared-memory model plane for cached MDP structures.

The sweep engine's unit of reuse is the :class:`~repro.attacks.registry.
ScenarioStructure`: the ``(p, gamma)``-independent skeleton of one attack
configuration, a pure-Python breadth-first exploration that dominates model
construction cost.  Before this module existed, spawn-started workers re-ran
that exploration once per worker (the PR 2 prewarm initializer), so a 16-worker
sweep paid the exploration 16 times.

The model plane removes every redundant exploration:

1. The parent builds each structure once and serialises it into flat numpy
   buffers (:meth:`ScenarioStructure.to_buffers`).
2. :func:`publish_structures` packs all buffers of all structures into a single
   ``multiprocessing.shared_memory`` segment -- a small pickled directory of
   ``(key, dtype, shape, offset)`` entries followed by the raw array bytes.
3. Each pool worker (fork- and spawn-started alike) calls
   :func:`attach_structures` in its initializer: the segment is mapped into the
   worker, every array becomes a read-only numpy view *backed by the shared
   pages* (zero-copy -- all workers read the same physical memory), and the
   reconstructed structures are installed into the worker's structure cache.
   Only the python-object state/action labels are materialised per worker; the
   numeric transition arrays, which dominate the footprint, are never copied.

The invariant all of this buys: **workers never explore**.  Every worker's
``structure_cache_stats()["builds"]`` stays 0 for the lifetime of the sweep --
the test suite asserts it on fork, spawn and remote (distributed) workers
alike.  The distributed fabric (:mod:`repro.core.distributed`) reuses the
exact segment byte layout over TCP via :func:`pack_structures` /
:func:`unpack_structures`, so "the model plane" means the same bytes whether
they live in a local segment or crossed a socket.

Lifecycle and cleanup
---------------------
Shared-memory segments are kernel objects that outlive processes, so leaking
them is the failure mode to engineer against.  Ownership is reference-counted
within each process via :class:`SharedStructurePlane`: the parent (creator)
holds one reference and every in-process attach adds one; :meth:`release`
drops a reference, and the segment is closed when the count reaches zero --
the *creator* additionally unlinks it.  The engine releases its reference in a
``finally`` block after the pool exits, so the segment is unlinked even when a
worker crashed or the sweep raised; an ``atexit`` hook in the creator process
backstops planes still open when the interpreter shuts down mid-sweep.
Workers never unlink: fork-started workers call
:func:`forget_inherited_planes` before attaching, which drops any
creator-flagged handle inherited through the fork, and a worker's mapping
simply dies with its process (worker exit paths skip ``atexit``, which is
fine -- the parent's unlink is what removes the segment from the system).
"""

from __future__ import annotations

import atexit
import pickle
import sys
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..attacks.registry import ScenarioStructure, resolve_scenario
from ..attacks.structure import install_structure
from ..exceptions import ModelError
from .faults import InjectedFault, maybe_fail

#: Alignment (bytes) of every array inside the segment; numpy is happy with 8,
#: 64 keeps rows cache-line aligned for the solver gathers.
_ALIGNMENT = 64

#: Fixed segment prefix: ``[directory_length: uint64][data_start: uint64]``.
_HEADER_BYTES = 16

#: Planes currently held open by this process, keyed by segment name.
_ACTIVE_PLANES: Dict[str, "SharedStructurePlane"] = {}
_PLANES_LOCK = threading.Lock()


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


_ATTACH_LOCK = threading.Lock()


def attach_segment_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without handing it to the resource tracker.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers the
    segment with the resource tracker, which would unlink it when the
    *attaching* process exits -- exactly wrong for worker processes attaching a
    parent-owned segment (and, since spawn workers share the parent's tracker
    process, unregistering afterwards would corrupt the parent's bookkeeping).
    Python 3.13 grew ``track=False`` for this; on older interpreters the
    registration call is suppressed for the duration of the attach instead.
    Shared by the model plane here and the results plane
    (:mod:`repro.core.results_plane`), which attach worker-side segments under
    the same ownership rules.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - interpreter dependent
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]


class SharedStructurePlane:
    """One published set of model structures living in a shared-memory segment.

    Instances are created by :func:`publish_structures` (creator side, owns the
    segment) or :func:`attach_structures` (worker side, maps it read-only).
    The plane keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    object alive for as long as any reconstructed structure may reference its
    pages; dropping the last in-process reference via :meth:`release` closes
    the mapping, and the creator's release also unlinks the segment.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        structures: List[ScenarioStructure],
        *,
        creator: bool,
    ) -> None:
        self._segment = segment
        self._creator = creator
        self._refcount = 1
        self._lock = threading.Lock()
        self._closed = False
        self.structures = structures

    @property
    def name(self) -> str:
        """System-wide name of the shared-memory segment."""
        return self._segment.name

    @property
    def closed(self) -> bool:
        """Whether this process has dropped its mapping of the segment."""
        return self._closed

    def acquire(self) -> "SharedStructurePlane":
        """Add one in-process reference (e.g. a second attach of the same plane)."""
        with self._lock:
            if self._closed:
                raise ModelError(f"shared structure plane {self.name!r} is already closed")
            self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one reference; close (and, as creator, unlink) on the last one.

        Idempotent once the count reaches zero -- double releases and the
        ``atexit`` backstop must never raise during interpreter shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._refcount -= 1
            if self._refcount > 0:
                return
            self._closed = True
        with _PLANES_LOCK:
            _ACTIVE_PLANES.pop(self.name, None)
        # Reconstructed structures hold views into the segment; drop them first
        # so close() does not fail with exported-pointer BufferErrors.
        self.structures = []
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            return
        if self._creator:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


def _register(plane: SharedStructurePlane) -> SharedStructurePlane:
    with _PLANES_LOCK:
        _ACTIVE_PLANES[plane.name] = plane
    return plane


@atexit.register
def _release_active_planes() -> None:  # pragma: no cover - interpreter shutdown
    """Backstop: force-release every plane still open at interpreter exit."""
    with _PLANES_LOCK:
        planes = list(_ACTIVE_PLANES.values())
    for plane in planes:
        with plane._lock:
            plane._refcount = min(plane._refcount, 1)
        plane.release()


class _PackedLayout:
    """Directory and sizing of a set of structures packed into one flat buffer.

    The layout is shared by the shared-memory segment (:func:`publish_structures`
    / :func:`attach_structures`) and the wire payload of the distributed fabric
    (:func:`pack_structures` / :func:`unpack_structures`): a 16-byte prefix
    ``[directory_length: uint64][data_start: uint64]``, a pickled directory
    listing every array of every structure as ``(structure_index, scenario_id,
    buffer_key, dtype, shape, offset)``, then the 64-byte-aligned raw array
    bytes.  Offsets are relative to ``data_start``, so the directory can be
    built before the prefix is known.  The versioned ``scenario_id`` stamped on
    every entry selects the :class:`~repro.attacks.registry.ScenarioStructure`
    subclass that decodes the buffers; a reader that does not implement the
    scenario (or implements another version of it) fails loudly at attach time
    instead of silently misinterpreting the arrays.
    """

    def __init__(self, structures: List[ScenarioStructure]) -> None:
        self.buffer_sets = [structure.to_buffers() for structure in structures]
        self.directory: List[Tuple[int, str, str, str, Tuple[int, ...], int]] = []
        offset = 0
        for index, (structure, buffers) in enumerate(zip(structures, self.buffer_sets)):
            scenario_id = structure.scenario_id
            for key in type(structure).BUFFER_KEYS:
                array = np.ascontiguousarray(buffers[key])
                buffers[key] = array
                offset = _align(offset)
                self.directory.append(
                    (index, scenario_id, key, array.dtype.str, array.shape, offset)
                )
                offset += array.nbytes
        self.directory_bytes = pickle.dumps(self.directory, protocol=pickle.HIGHEST_PROTOCOL)
        self.data_start = _align(_HEADER_BYTES + len(self.directory_bytes))
        self.total_size = max(1, self.data_start + offset)

    def write_into(self, buf: memoryview) -> None:
        """Serialise the prefix, directory and every array into ``buf``."""
        header = np.ndarray((2,), dtype=np.uint64, buffer=buf)
        header[0] = len(self.directory_bytes)
        header[1] = self.data_start
        buf[_HEADER_BYTES : _HEADER_BYTES + len(self.directory_bytes)] = self.directory_bytes
        for index, _scenario_id, key, dtype, shape, rel_offset in self.directory:
            target = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf, offset=self.data_start + rel_offset
            )
            target[...] = self.buffer_sets[index][key]


def _read_structures(buf: memoryview) -> List[ScenarioStructure]:
    """Reconstruct every structure from a buffer written by :class:`_PackedLayout`.

    Every numeric array of every reconstructed structure is a *read-only* numpy
    view into ``buf`` -- nothing is copied, so structures decoded from a
    shared-memory segment (or from a received wire payload kept alive by the
    structure itself) stay zero-copy.  Each structure is decoded by the
    :class:`~repro.attacks.registry.ScenarioStructure` subclass its directory
    entries name; an unknown scenario or a version mismatch raises
    :class:`~repro.exceptions.ModelError` (see
    :func:`repro.attacks.registry.resolve_scenario`).
    """
    header = np.ndarray((2,), dtype=np.uint64, buffer=buf)
    directory_length = int(header[0])
    data_start = int(header[1])
    directory = pickle.loads(bytes(buf[_HEADER_BYTES : _HEADER_BYTES + directory_length]))
    buffer_sets: Dict[int, Dict[str, np.ndarray]] = {}
    scenario_ids: Dict[int, str] = {}
    for index, scenario_id, key, dtype, shape, rel_offset in directory:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=data_start + rel_offset)
        if view.flags.writeable:
            view.flags.writeable = False
        scenario_ids[index] = scenario_id
        buffer_sets.setdefault(index, {})[key] = view
    return [
        resolve_scenario(scenario_ids[index]).structure_cls.from_buffers(buffer_sets[index])
        for index in sorted(buffer_sets)
    ]


def pack_structures(structures: Iterable[ScenarioStructure]) -> bytes:
    """Serialise structures into one self-contained flat byte string.

    The byte layout is identical to the shared-memory segment layout of
    :func:`publish_structures`; the distributed sweep fabric
    (:mod:`repro.core.distributed`) ships these bytes over a socket so remote
    workers can reconstruct every skeleton without exploring.

    Raises:
        ModelError: If ``structures`` is empty (packing nothing is always a
            caller bug).
    """
    structure_list = list(structures)
    if not structure_list:
        raise ModelError("cannot pack an empty set of structures")
    layout = _PackedLayout(structure_list)
    out = bytearray(layout.total_size)
    layout.write_into(memoryview(out))
    return bytes(out)


def unpack_structures(data: bytes) -> List[ScenarioStructure]:
    """Reconstruct the structures serialised by :func:`pack_structures`.

    The numeric arrays of the returned structures are read-only views into
    ``data`` (zero-copy); the caller's bytes object is kept alive by those
    views for as long as any structure is.

    Raises:
        ModelError: If ``data`` is not a :func:`pack_structures` payload.
    """
    try:
        return _read_structures(memoryview(data))
    except ModelError:
        raise
    except Exception as exc:
        raise ModelError(f"malformed structure payload: {exc}") from exc


def publish_structures(
    structures: Iterable[ScenarioStructure],
) -> SharedStructurePlane:
    """Pack structures into one shared-memory segment and return the owner plane.

    The segment holds the flat :class:`_PackedLayout` byte layout (prefix,
    pickled directory, 64-byte-aligned raw array bytes).

    Raises:
        ModelError: If ``structures`` is empty (publishing nothing is always a
            caller bug) or the platform cannot allocate shared memory.
    """
    structure_list = list(structures)
    if not structure_list:
        raise ModelError("cannot publish an empty set of structures")
    layout = _PackedLayout(structure_list)
    try:
        segment = shared_memory.SharedMemory(create=True, size=layout.total_size)
    except OSError as exc:
        raise ModelError(f"cannot allocate shared memory for the model plane: {exc}") from exc
    try:
        layout.write_into(segment.buf)
    except Exception:
        segment.close()
        segment.unlink()
        raise
    return _register(SharedStructurePlane(segment, structure_list, creator=True))


def attach_structures(name: str) -> SharedStructurePlane:
    """Attach a published plane by segment name and reconstruct its structures.

    Every numeric array of every reconstructed structure is a *read-only* view
    into the shared segment -- nothing is copied, all attached processes read
    the same physical pages.  Attaching the same segment twice in one process
    returns the already-open plane with its reference count bumped.

    Raises:
        ModelError: If no segment with ``name`` exists (e.g. the parent already
            unlinked it) or its contents are malformed.
    """
    if maybe_fail("shm.attach_fail"):
        # Chaos site: a vanished/unmappable segment.  InjectedFault is a
        # ModelError, so the worker initializer's existing fallback (local
        # prewarm, counted by its build counters) absorbs it.
        raise InjectedFault("shm.attach_fail")
    with _PLANES_LOCK:
        existing = _ACTIVE_PLANES.get(name)
    if existing is not None and not existing.closed:
        return existing.acquire()
    try:
        segment = attach_segment_untracked(name)
    except (FileNotFoundError, OSError) as exc:
        raise ModelError(f"shared structure plane {name!r} is not available: {exc}") from exc
    try:
        structures = _read_structures(segment.buf)
    except ModelError:
        segment.close()
        raise
    except Exception as exc:
        segment.close()
        raise ModelError(f"shared structure plane {name!r} is malformed: {exc}") from exc
    return _register(SharedStructurePlane(segment, structures, creator=False))


def attach_and_install(name: str) -> SharedStructurePlane:
    """Attach a plane and install every structure into the process-local cache.

    This is the worker-side entry point used by the sweep pool initializer; the
    plane is kept open for the lifetime of the worker (released by the
    ``atexit`` backstop) because the installed structures reference its pages.
    """
    plane = attach_structures(name)
    for structure in plane.structures:
        install_structure(structure)
    return plane


def forget_inherited_planes() -> None:
    """Drop plane handles inherited through ``fork`` without closing anything.

    A fork-started worker inherits the parent's plane registry, including the
    *creator*-flagged handle of the published segment.  Left in place, an
    attach inside the worker would dedup to that inherited handle -- reusing
    the worker's private copy-on-write arrays instead of mapping the shared
    segment (CPython refcount updates dirty COW pages, so those copies do
    materialise) -- and the creator flag would hand the worker an unlink it
    must never perform.  Workers therefore forget the inherited registry
    before attaching; the parent process keeps sole ownership of the unlink.
    No-op in spawn-started workers, whose registry starts empty.
    """
    with _PLANES_LOCK:
        _ACTIVE_PLANES.clear()


def active_plane_names() -> List[str]:
    """Names of the planes this process currently holds open (for tests)."""
    with _PLANES_LOCK:
        return [name for name, plane in _ACTIVE_PLANES.items() if not plane.closed]


def plane_refcount(name: str) -> Optional[int]:
    """Current in-process reference count of a plane (``None`` if unknown)."""
    with _PLANES_LOCK:
        plane = _ACTIVE_PLANES.get(name)
    if plane is None:
        return None
    with plane._lock:
        return plane._refcount
