"""Zero-copy shared-memory model plane for cached MDP structures.

The sweep engine's unit of reuse is the :class:`~repro.attacks.registry.
ScenarioStructure`: the ``(p, gamma)``-independent skeleton of one attack
configuration, a pure-Python breadth-first exploration that dominates model
construction cost.  Before this module existed, spawn-started workers re-ran
that exploration once per worker (the PR 2 prewarm initializer), so a 16-worker
sweep paid the exploration 16 times.

The model plane removes every redundant exploration:

1. The parent builds each structure once and serialises it into flat numpy
   buffers (:meth:`ScenarioStructure.to_buffers`).
2. :func:`publish_structures` packs all buffers of all structures into a single
   shared-memory segment -- a small pickled directory of ``(key, dtype, shape,
   offset)`` entries followed by the raw array bytes.
3. Each pool worker (fork- and spawn-started alike) calls
   :func:`attach_structures` in its initializer: the segment is mapped into the
   worker, every array becomes a read-only numpy view *backed by the shared
   pages* (zero-copy -- all workers read the same physical memory), and the
   reconstructed structures are installed into the worker's structure cache.
   Only the python-object state/action labels are materialised per worker; the
   numeric transition arrays, which dominate the footprint, are never copied.

The invariant all of this buys: **workers never explore**.  Every worker's
``structure_cache_stats()["builds"]`` stays 0 for the lifetime of the sweep --
the test suite asserts it on fork, spawn and remote (distributed) workers
alike.  The distributed fabric (:mod:`repro.core.distributed`) reuses the
exact segment byte layout over TCP via :func:`pack_structures` /
:func:`unpack_structures`, so "the model plane" means the same bytes whether
they live in a local segment or crossed a socket.

Lifecycle and cleanup
---------------------
Segment lifecycle -- refcounted release with creator-unlink, the ``atexit``
backstop, fork-inheritance forget, the resource-tracker workaround, and the
magic + layout-version header every attach validates -- is implemented once
by the substrate (:mod:`repro.core.shm`) and merely *used* here: the plane
wraps a :class:`~repro.core.shm.ManagedSegment` whose header carries
:data:`MODEL_PLANE_MAGIC` and :data:`MODEL_PLANE_VERSION`.  The engine
releases its creator reference in a ``finally`` block after the pool exits,
so the segment is unlinked even when a worker crashed or the sweep raised;
workers attach untracked, never unlink, and fork-started workers first call
:func:`forget_inherited_planes`.  The lifecycle contract is proven by the
substrate conformance suite (``tests/core/shm_conformance.py``), which this
plane passes alongside every other plane.
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..attacks.registry import ScenarioStructure, resolve_scenario
from ..attacks.structure import install_structure
from ..exceptions import ModelError
from .faults import InjectedFault, maybe_fail
from .shm import (
    HEADER_BYTES as _SHM_HEADER_BYTES,
)
from .shm import (
    ManagedSegment,
    SegmentSpec,
    align,
    attach_segment,
    attach_segment_untracked,
    create_segment,
    forget_inherited_segments,
    segment_refcount,
    validate_header,
    write_header,
)
from .shm import (
    active_segment_names as _active_segment_names,
)

__all__ = [
    "MODEL_PLANE_MAGIC",
    "MODEL_PLANE_VERSION",
    "SharedStructurePlane",
    "active_plane_names",
    "attach_and_install",
    "attach_segment_untracked",
    "attach_structures",
    "forget_inherited_planes",
    "pack_structures",
    "plane_refcount",
    "publish_structures",
    "unpack_structures",
]

#: Plane magic stamped into the substrate header (b"REPROMDL" as an integer).
MODEL_PLANE_MAGIC = 0x5245_5052_4F4D_444C

#: Layout generation of the packed-directory payload.  Bump whenever the
#: directory tuple shape or the array packing changes, so a stale peer
#: (worker, or remote host via :func:`unpack_structures`) refuses to decode
#: instead of misinterpreting the arrays.  Generation 1 is the substrate
#: port: the payload gained the 64-byte substrate header in front of it.
MODEL_PLANE_VERSION = 1

#: Substrate identity of model-plane segments (and wire payloads).
_SPEC = SegmentSpec(kind="model-plane", magic=MODEL_PLANE_MAGIC, version=MODEL_PLANE_VERSION)

#: Fixed payload prefix: ``[directory_length: uint64][data_start: uint64]``
#: (offsets relative to the start of the payload, after the substrate header).
_PREFIX_BYTES = 16


class SharedStructurePlane:
    """One published set of model structures living in a shared-memory segment.

    Instances are created by :func:`publish_structures` (creator side, owns the
    segment) or :func:`attach_structures` (worker side, maps it read-only).
    The plane keeps the underlying :class:`~repro.core.shm.ManagedSegment`
    alive for as long as any reconstructed structure may reference its pages;
    dropping the last in-process reference via :meth:`release` closes the
    mapping, and the creator's release also unlinks the segment.
    """

    def __init__(
        self,
        handle: ManagedSegment,
        structures: List[ScenarioStructure],
    ) -> None:
        """Wrap a substrate handle; use the module factories, not this."""
        self._handle = handle
        self.structures = structures
        handle.owner = self
        handle.drop_views = self._drop_views

    def _drop_views(self) -> None:
        """Drop the reconstructed structures' views before the mapping closes."""
        self.structures = []

    @property
    def name(self) -> str:
        """System-wide name of the shared-memory segment."""
        return self._handle.name

    @property
    def closed(self) -> bool:
        """Whether this process has dropped its mapping of the segment."""
        return self._handle.closed

    def release(self) -> None:
        """Drop one reference; close (and, as creator, unlink) on the last one.

        Idempotent once the count reaches zero -- double releases and the
        substrate's ``atexit`` backstop must never raise during interpreter
        shutdown.
        """
        self._handle.release()


class _PackedLayout:
    """Directory and sizing of a set of structures packed into one flat buffer.

    The layout is shared by the shared-memory segment (:func:`publish_structures`
    / :func:`attach_structures`) and the wire payload of the distributed fabric
    (:func:`pack_structures` / :func:`unpack_structures`): a 16-byte prefix
    ``[directory_length: uint64][data_start: uint64]``, a pickled directory
    listing every array of every structure as ``(structure_index, scenario_id,
    buffer_key, dtype, shape, offset)``, then the 64-byte-aligned raw array
    bytes.  Offsets are relative to ``data_start``, so the directory can be
    built before the prefix is known.  The versioned ``scenario_id`` stamped on
    every entry selects the :class:`~repro.attacks.registry.ScenarioStructure`
    subclass that decodes the buffers; a reader that does not implement the
    scenario (or implements another version of it) fails loudly at attach time
    instead of silently misinterpreting the arrays.
    """

    def __init__(self, structures: List[ScenarioStructure]) -> None:
        self.buffer_sets = [structure.to_buffers() for structure in structures]
        self.directory: List[Tuple[int, str, str, str, Tuple[int, ...], int]] = []
        offset = 0
        for index, (structure, buffers) in enumerate(zip(structures, self.buffer_sets)):
            scenario_id = structure.scenario_id
            for key in type(structure).BUFFER_KEYS:
                array = np.ascontiguousarray(buffers[key])
                buffers[key] = array
                offset = align(offset)
                self.directory.append(
                    (index, scenario_id, key, array.dtype.str, array.shape, offset)
                )
                offset += array.nbytes
        self.directory_bytes = pickle.dumps(self.directory, protocol=pickle.HIGHEST_PROTOCOL)
        self.data_start = align(_PREFIX_BYTES + len(self.directory_bytes))
        self.total_size = max(1, self.data_start + offset)

    def write_into(self, buf: memoryview) -> None:
        """Serialise the prefix, directory and every array into ``buf``."""
        header = np.ndarray((2,), dtype=np.uint64, buffer=buf)
        header[0] = len(self.directory_bytes)
        header[1] = self.data_start
        buf[_PREFIX_BYTES : _PREFIX_BYTES + len(self.directory_bytes)] = self.directory_bytes
        for index, _scenario_id, key, dtype, shape, rel_offset in self.directory:
            target = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf, offset=self.data_start + rel_offset
            )
            target[...] = self.buffer_sets[index][key]


def _read_structures(buf: memoryview) -> List[ScenarioStructure]:
    """Reconstruct every structure from a payload written by :class:`_PackedLayout`.

    ``buf`` is the plane payload (the bytes *after* the substrate header).
    Every numeric array of every reconstructed structure is a *read-only*
    numpy view into ``buf`` -- nothing is copied, so structures decoded from a
    shared-memory segment (or from a received wire payload kept alive by the
    structure itself) stay zero-copy.  Each structure is decoded by the
    :class:`~repro.attacks.registry.ScenarioStructure` subclass its directory
    entries name; an unknown scenario or a version mismatch raises
    :class:`~repro.exceptions.ModelError` (see
    :func:`repro.attacks.registry.resolve_scenario`).
    """
    header = np.ndarray((2,), dtype=np.uint64, buffer=buf)
    directory_length = int(header[0])
    data_start = int(header[1])
    directory = pickle.loads(bytes(buf[_PREFIX_BYTES : _PREFIX_BYTES + directory_length]))
    buffer_sets: Dict[int, Dict[str, np.ndarray]] = {}
    scenario_ids: Dict[int, str] = {}
    for index, scenario_id, key, dtype, shape, rel_offset in directory:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=data_start + rel_offset)
        if view.flags.writeable:
            view.flags.writeable = False
        scenario_ids[index] = scenario_id
        buffer_sets.setdefault(index, {})[key] = view
    return [
        resolve_scenario(scenario_ids[index]).structure_cls.from_buffers(buffer_sets[index])
        for index in sorted(buffer_sets)
    ]


def pack_structures(structures: Iterable[ScenarioStructure]) -> bytes:
    """Serialise structures into one self-contained flat byte string.

    The byte layout is identical to the shared-memory segment layout of
    :func:`publish_structures` -- substrate header included -- so "the model
    plane" means the same bytes whether they live in a segment or crossed a
    socket; the distributed sweep fabric (:mod:`repro.core.distributed`) ships
    these bytes so remote workers can reconstruct every skeleton without
    exploring, and a remote peer built for another layout generation refuses
    the payload exactly like a stale local worker refuses the segment.

    Raises:
        ModelError: If ``structures`` is empty (packing nothing is always a
            caller bug).
    """
    structure_list = list(structures)
    if not structure_list:
        raise ModelError("cannot pack an empty set of structures")
    layout = _PackedLayout(structure_list)
    out = bytearray(_SHM_HEADER_BYTES + layout.total_size)
    buf = memoryview(out)
    write_header(_SPEC, buf, layout.total_size)
    layout.write_into(buf[_SHM_HEADER_BYTES:])
    return bytes(out)


def unpack_structures(data: bytes) -> List[ScenarioStructure]:
    """Reconstruct the structures serialised by :func:`pack_structures`.

    The numeric arrays of the returned structures are read-only views into
    ``data`` (zero-copy); the caller's bytes object is kept alive by those
    views for as long as any structure is.

    Raises:
        ModelError: If ``data`` is not a :func:`pack_structures` payload of
            this build's layout generation.
    """
    buf = memoryview(data)
    validate_header(_SPEC, buf, source="structure payload")
    try:
        return _read_structures(buf[_SHM_HEADER_BYTES:])
    except ModelError:
        raise
    except Exception as exc:
        raise ModelError(f"malformed structure payload: {exc}") from exc


def publish_structures(
    structures: Iterable[ScenarioStructure],
) -> SharedStructurePlane:
    """Pack structures into one shared-memory segment and return the owner plane.

    The segment holds the substrate header followed by the flat
    :class:`_PackedLayout` byte layout (prefix, pickled directory,
    64-byte-aligned raw array bytes).

    Raises:
        ModelError: If ``structures`` is empty (publishing nothing is always a
            caller bug) or the platform cannot allocate shared memory.
    """
    structure_list = list(structures)
    if not structure_list:
        raise ModelError("cannot publish an empty set of structures")
    layout = _PackedLayout(structure_list)
    handle = create_segment(_SPEC, layout.total_size)
    try:
        layout.write_into(handle.buf[_SHM_HEADER_BYTES:])
    except Exception:
        handle.release()
        raise
    return SharedStructurePlane(handle, structure_list)


def attach_structures(name: str) -> SharedStructurePlane:
    """Attach a published plane by segment name and reconstruct its structures.

    Every numeric array of every reconstructed structure is a *read-only* view
    into the shared segment -- nothing is copied, all attached processes read
    the same physical pages.  Attaching the same segment twice in one process
    returns the already-open plane with its reference count bumped.

    Raises:
        ModelError: If no segment with ``name`` exists (e.g. the parent
            already unlinked it -- an attacher racing the creator-unlink gets
            this clean error, never a raw ``FileNotFoundError``), its header
            is not this build's model-plane layout, or its payload is
            malformed.
    """
    if maybe_fail("shm.attach_fail"):
        # Chaos site: a vanished/unmappable segment.  InjectedFault is a
        # ModelError, so the worker initializer's existing fallback (local
        # prewarm, counted by its build counters) absorbs it.
        raise InjectedFault("shm.attach_fail")
    handle = attach_segment(_SPEC, name)
    owner = handle.owner
    if isinstance(owner, SharedStructurePlane):
        # In-process dedup: attach_segment returned the open handle (refcount
        # bumped); hand back the plane already wrapping it.
        return owner
    try:
        structures = _read_structures(handle.buf[_SHM_HEADER_BYTES:])
    except ModelError:
        handle.release()
        raise
    except Exception as exc:
        handle.release()
        raise ModelError(f"shared structure plane {name!r} is malformed: {exc}") from exc
    return SharedStructurePlane(handle, structures)


def attach_and_install(name: str) -> SharedStructurePlane:
    """Attach a plane and install every structure into the process-local cache.

    This is the worker-side entry point used by the sweep pool initializer; the
    plane is kept open for the lifetime of the worker (released by the
    substrate's ``atexit`` backstop) because the installed structures reference
    its pages.
    """
    plane = attach_structures(name)
    for structure in plane.structures:
        install_structure(structure)
    return plane


def forget_inherited_planes() -> None:
    """Drop model-plane handles inherited through ``fork`` without closing.

    Delegates to :func:`repro.core.shm.forget_inherited_segments` for this
    plane's segments; see there for why fork-started workers must start from
    a clean registry (COW dedup hazard, inherited creator unlink).
    """
    forget_inherited_segments(kind=_SPEC.kind)


def active_plane_names() -> List[str]:
    """Names of the model planes this process currently holds open (for tests)."""
    return _active_segment_names(kind=_SPEC.kind)


def plane_refcount(name: str) -> Optional[int]:
    """Current in-process reference count of a plane (``None`` if unknown)."""
    return segment_refcount(name)
