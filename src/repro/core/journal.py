"""Durable, crash-safe sweep journal with checksummed records and resume.

The engine's certified bounds make sweeps idempotent by grid key: recomputing
a ``(gamma, p, attack)`` point yields bit-for-bit the value it produced the
first time (the engine's core determinism invariant).  The journal turns that
idempotence into crash safety -- every computed
:class:`~repro.core.engine.PointOutcome` is appended to a JSONL file as it
lands, and a restarted sweep (``repro sweep --journal PATH --resume``) replays
the journaled points through the same :func:`assemble_sweep_result` merge the
live sweep uses, computing only the delta.  The resumed result is therefore
indistinguishable from an uninterrupted run.

Record format
-------------
One JSON object per line::

    {"crc": "89abcdef", "record": {"kind": "meta" | "point", ...}}

``crc`` is the CRC-32 of the canonical JSON encoding (sorted keys, no
whitespace) of ``record``, so every record self-validates.  The first record
of a journal is a ``meta`` record carrying the journal format version and a
*fingerprint* of the sweep -- grid, attack configurations, analysis settings,
versioned scenario ids and package version -- and every resume refuses a
journal whose fingerprint differs: replaying points of a different grid or
code version would silently violate the bit-for-bit contract.  Every later
record is a ``point`` holding one serialised ``PointOutcome`` (JSON round-trips
floats exactly, so replayed bounds are bit-for-bit identical).

Crash model
-----------
Appends are single ``write()`` calls of complete lines, flushed per record, so
the only state a crash can leave behind is a *torn tail*: a final partial line
(or a final line whose checksum fails).  Opening a journal scans it and
truncates such a tail -- the torn point is simply recomputed.  An invalid
record *followed by valid ones* is not a torn tail but mid-file corruption
(bit rot, concurrent writers) and is rejected loudly.

Durability is configurable (``--journal-fsync``): ``"never"`` trusts the OS
page cache, ``"close"`` (default) fsyncs once when the journal closes, and
``"always"`` fsyncs after every record -- the paranoid policy that survives
power loss at per-record cost (quantified by
``benchmarks/test_bench_journal.py``).

Resume semantics
----------------
:meth:`SweepJournal.replayed_outcomes` returns the journaled *successful*
points keyed by grid coordinates.  Records carrying an ``error`` are replayed
as absent so failed points get a fresh chance on resume.  The engine and the
distributed coordinator skip a unit of work only when **all** of its grid keys
are replayed; a partially journaled chained series (``warm_start_across_points``
/ ``reuse_p_axis_bounds``) is recomputed whole, which is safe because the
recomputed values are identical and the journal merge is last-write-wins on
equal values.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..exceptions import ConfigurationError, ModelError
from .engine import PointOutcome

#: Supported ``fsync`` policies, least to most durable.
FSYNC_POLICIES = ("never", "close", "always")

#: Format version stamped into (and checked against) every journal's meta record.
JOURNAL_VERSION = 1

GridKey = Tuple[int, int, int]


def _canonical(record: Dict[str, object]) -> str:
    """Canonical JSON encoding the per-record checksum is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    """CRC-32 of ``payload`` as 8 hex digits."""
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_record(record: Dict[str, object]) -> bytes:
    """Encode one journal record as a checksummed JSONL line (with newline)."""
    payload = _canonical(record)
    line = json.dumps({"crc": _checksum(payload), "record": record}, sort_keys=True)
    return line.encode("utf-8") + b"\n"


def decode_record(line: bytes) -> Optional[Dict[str, object]]:
    """Decode one journal line; ``None`` when unparseable or checksum-invalid."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(envelope, dict):
        return None
    record = envelope.get("record")
    crc = envelope.get("crc")
    if not isinstance(record, dict) or not isinstance(crc, str):
        return None
    if _checksum(_canonical(record)) != crc:
        return None
    return record


def journal_fingerprint(config: "object") -> Dict[str, object]:
    """Identity of a sweep for resume validation: grid + configs + versions.

    Two sweeps with equal fingerprints compute bit-for-bit identical certified
    bounds for every grid key, so replaying one's journal into the other is
    sound.  Anything that could change a computed value is included: the grid,
    the attack configurations, the analysis settings, the flags selecting the
    model-construction path, the versioned scenario ids and the package
    version.  Worker counts, transport choices and fault plans are excluded --
    they change scheduling, never values.
    """
    from .. import __version__
    from ..attacks.registry import scenario_id_for
    from .sweep import SweepConfig

    assert isinstance(config, SweepConfig)
    return {
        "journal_version": JOURNAL_VERSION,
        "package_version": __version__,
        "p_values": [float(p) for p in config.p_values],
        "gammas": [float(g) for g in config.gammas],
        "attacks": [attack.to_dict() for attack in config.attack_configs],
        "analysis": config.analysis.to_dict(),
        "scenarios": sorted(
            {scenario_id_for(attack.scenario) for attack in config.attack_configs}
        ),
        "use_structure_cache": bool(config.use_structure_cache),
        "warm_start_across_points": bool(config.warm_start_across_points),
        "reuse_p_axis_bounds": bool(config.reuse_p_axis_bounds),
    }


def _scan(data: bytes) -> Tuple[List[Dict[str, object]], int]:
    """Validate a journal image; return (valid records, validated byte length).

    The validated length covers the longest prefix of intact records.  A
    trailing invalid region (torn tail) is excluded from it; an invalid region
    with *valid records after it* is mid-file corruption and raises.

    Raises:
        ModelError: On an invalid record that is not part of a torn tail.
    """
    records: List[Dict[str, object]] = []
    validated = 0
    invalid_seen = False
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            # Final line never got its newline: torn mid-append.
            break
        record = decode_record(data[pos:newline])
        pos = newline + 1
        if record is None:
            invalid_seen = True
            continue
        if invalid_seen:
            raise ModelError(
                "journal is corrupt: an invalid record is followed by valid "
                "ones (a crash can only tear the tail; refusing to resume)"
            )
        records.append(record)
        validated = pos
    return records, validated


class SweepJournal:
    """Append-only crash-safe journal of one sweep's computed point outcomes.

    Create via :meth:`open`; call :meth:`record` per computed outcome and
    :meth:`close` (or use as a context manager) when the sweep finishes.
    Instances are process-local and must only be written from the process that
    owns the sweep (engine parent or distributed coordinator) -- workers ship
    outcomes to the owner, which journals them exactly once.
    """

    def __init__(
        self,
        path: Path,
        handle: io.BufferedWriter,
        fsync: str,
        replayed: Dict[GridKey, PointOutcome],
    ) -> None:
        self.path = path
        self._handle: Optional[io.BufferedWriter] = handle
        self.fsync = fsync
        self._replayed = replayed
        #: Point records appended by this process (excludes replayed ones).
        self.recorded = 0

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        config: "object",
        *,
        resume: bool = False,
        fsync: str = "close",
    ) -> "SweepJournal":
        """Open (and validate) a journal for the given sweep configuration.

        Without ``resume`` any existing file is truncated and a fresh meta
        record written.  With ``resume`` the file is scanned: a torn tail is
        truncated, intact point records become :meth:`replayed_outcomes`, and
        the meta fingerprint must match ``config`` exactly.  Resuming a
        missing or empty journal is a fresh start, so the first run of a
        restart loop needs no special casing.

        Raises:
            ConfigurationError: On an unknown ``fsync`` policy.
            ModelError: On mid-file corruption or a fingerprint mismatch.
        """
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"journal fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        path = Path(path)
        fingerprint = journal_fingerprint(config)
        replayed: Dict[GridKey, PointOutcome] = {}
        records: List[Dict[str, object]] = []
        validated = 0
        if resume and path.exists():
            data = path.read_bytes()
            records, validated = _scan(data)
            if validated < len(data):
                # Torn tail: drop it before appending.
                with open(path, "r+b") as repair:
                    repair.truncate(validated)
        if records:
            meta = records[0]
            if meta.get("kind") != "meta":
                raise ModelError(
                    f"journal {path} does not start with a meta record; refusing to resume"
                )
            if _canonical(meta.get("fingerprint", {})) != _canonical(fingerprint):  # type: ignore[arg-type]
                raise ModelError(
                    f"journal {path} was written by a different sweep "
                    "(grid, attack/analysis configuration or code version "
                    "differ); resuming it would violate the bit-for-bit "
                    "contract.  Use a fresh journal path."
                )
            for record in records[1:]:
                if record.get("kind") != "point":
                    raise ModelError(
                        f"journal {path} contains an unknown record kind "
                        f"{record.get('kind')!r}; refusing to resume"
                    )
                outcome = PointOutcome(**record["outcome"])  # type: ignore[arg-type]
                if outcome.error is not None:
                    # Failed points get a fresh chance on resume.
                    continue
                key = (outcome.gamma_index, outcome.p_index, outcome.attack_index)
                replayed[key] = outcome
            handle = open(path, "ab")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(path, "wb")
            handle.write(
                encode_record({"kind": "meta", "fingerprint": fingerprint})
            )
            handle.flush()
        return cls(path, handle, fsync, replayed)

    @property
    def replayed(self) -> int:
        """Number of successful point outcomes replayed from the journal."""
        return len(self._replayed)

    def replayed_outcomes(self) -> Dict[GridKey, PointOutcome]:
        """Successful journaled outcomes, keyed by grid coordinates (a copy)."""
        return dict(self._replayed)

    def record(self, outcome: PointOutcome) -> None:
        """Append one computed outcome (no-op for keys already replayed).

        The replayed no-op keeps the journal canonical across restarts: a
        recomputed chained series re-reports keys the journal already holds
        with identical values, and re-appending them would make the journal
        grow per restart.
        """
        handle = self._handle
        if handle is None:
            raise ModelError(f"journal {self.path} is closed")
        key = (outcome.gamma_index, outcome.p_index, outcome.attack_index)
        if key in self._replayed:
            return
        from dataclasses import asdict

        handle.write(encode_record({"kind": "point", "outcome": asdict(outcome)}))
        handle.flush()
        if self.fsync == "always":
            os.fsync(handle.fileno())
        self.recorded += 1

    def close(self) -> None:
        """Flush (and, per policy, fsync) and close the journal. Idempotent."""
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        handle.flush()
        if self.fsync != "never":
            os.fsync(handle.fileno())
        handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "FSYNC_POLICIES",
    "JOURNAL_VERSION",
    "GridKey",
    "SweepJournal",
    "decode_record",
    "encode_record",
    "journal_fingerprint",
]
