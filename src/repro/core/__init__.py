"""High-level user-facing API.

:class:`~repro.core.analyzer.SelfishMiningAnalyzer` wires together the model
construction (:mod:`repro.attacks`), the formal analysis (:mod:`repro.analysis`)
and optional Monte-Carlo validation (:mod:`repro.chain`).  The sweep driver and
reporting helpers regenerate the paper's Figure 2 series and Table 1 rows.
"""

from .results import AnalysisResult, SweepFailure, SweepPoint, SweepResult
from .analyzer import SelfishMiningAnalyzer
from .engine import attack_series_name, execute_sweep
from .sweep import SweepConfig, run_sweep, sweep_figure2
from .reporting import ascii_plot, render_table, write_csv

__all__ = [
    "AnalysisResult",
    "SweepFailure",
    "SweepPoint",
    "SweepResult",
    "SelfishMiningAnalyzer",
    "SweepConfig",
    "attack_series_name",
    "execute_sweep",
    "run_sweep",
    "sweep_figure2",
    "ascii_plot",
    "render_table",
    "write_csv",
]
