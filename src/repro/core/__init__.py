"""High-level user-facing API.

:class:`~repro.core.analyzer.SelfishMiningAnalyzer` wires together the model
construction (:mod:`repro.attacks`), the formal analysis (:mod:`repro.analysis`)
and optional Monte-Carlo validation (:mod:`repro.chain`).  The sweep driver and
reporting helpers regenerate the paper's Figure 2 series and Table 1 rows.
"""

from .results import AnalysisResult, SweepPoint, SweepResult
from .analyzer import SelfishMiningAnalyzer
from .sweep import SweepConfig, run_sweep, sweep_figure2
from .reporting import ascii_plot, render_table, write_csv

__all__ = [
    "AnalysisResult",
    "SweepPoint",
    "SweepResult",
    "SelfishMiningAnalyzer",
    "SweepConfig",
    "run_sweep",
    "sweep_figure2",
    "ascii_plot",
    "render_table",
    "write_csv",
]
