"""One shared-memory substrate: typed, versioned, refcounted segments.

Before this module existed, :mod:`repro.core.shared_structures` (the model
plane) and :mod:`repro.core.results_plane` each carried their own copy of the
same segment-lifecycle machinery: a process-local registry of open segments,
reference counting with creator-unlink, an ``atexit`` backstop for interpreter
shutdown, fork-inheritance hygiene, and the resource-tracker workaround for
worker-side attaches.  Each copy was proven safe by its own hand-rolled test
suite, and every future plane (the certified-bound store, CSR model buffers,
warm-start snapshots) would have needed a third and fourth copy.

This module is the single substrate all planes are built on.  The lifecycle
invariants are implemented once, here, and proven once by the reusable
conformance suite (``tests/core/shm_conformance.py``) that every plane runs
through; lint rule RL001 pins ``multiprocessing.shared_memory`` to this module
alone, so no other copy of the machinery can grow back.

Segment format
--------------
Every substrate segment starts with a fixed 64-byte header of little-endian
``uint64`` words::

    [0] SHM_MAGIC        -- identifies any repro substrate segment
    [1] plane magic      -- identifies the plane kind (model plane, results
                            plane, ...); foreign segments are refused loudly
    [2] layout version   -- the plane's layout generation; a reader built for
                            another generation refuses to attach instead of
                            decoding shifted fields
    [3] payload size     -- bytes of plane payload following the header
    [4..7] reserved (zero)

The payload that follows belongs to the plane.  Fixed-geometry planes describe
it as named typed regions via :class:`SegmentLayout` (mapped as numpy views
over the shared pages); variable-geometry planes (the model plane's pickled
directory + aligned arrays) write raw bytes into the payload region.

Lifecycle
---------
Shared-memory segments are kernel objects that outlive processes, so leaking
one is the failure mode to engineer against.  Ownership is reference-counted
within each process via :class:`ManagedSegment`: the creator holds one
reference and every in-process attach adds one; :meth:`ManagedSegment.release`
drops a reference, and the mapping is closed when the count reaches zero --
the *creator* additionally unlinks the segment from the system.  An ``atexit``
hook backstops segments still open when the interpreter shuts down mid-task.
Workers never unlink: fork-started workers call
:func:`forget_inherited_segments` before attaching, which drops every handle
(including the creator-flagged one) inherited through the fork, and a worker's
mapping simply dies with its process.

Segment names are always ``repro-<kind>-<random>`` so platform residue is
attributable: the test suite snapshots ``/dev/shm`` around every test module
and fails loudly on leaked ``repro-`` segments.
"""

from __future__ import annotations

import atexit
import secrets
import sys
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError

#: Substrate magic: the first header word of every repro shm segment
#: (b"REPROSHM" read as a little-endian integer tag).
SHM_MAGIC = 0x5245_5052_4F53_484D

#: Fixed size of the substrate header preceding every plane payload.
HEADER_BYTES = 64

#: Every substrate segment name starts with this, so platform residue
#: (``/dev/shm`` entries) is attributable to this package and the test
#: suite's leak check can scan for exactly these.
SEGMENT_PREFIX = "repro-"

#: Alignment (bytes) of regions inside a payload; 64 keeps rows of numpy
#: record arrays cache-line aligned for the solver gathers.
ALIGNMENT = 64

#: Attempts to find an unused random segment name before giving up.
_CREATE_ATTEMPTS = 8

#: Segments currently held open by this process, keyed by segment name.
_ACTIVE_SEGMENTS: Dict[str, "ManagedSegment"] = {}
_SEGMENTS_LOCK = threading.Lock()

_ATTACH_LOCK = threading.Lock()


def align(offset: int) -> int:
    """Round ``offset`` up to the substrate's region alignment."""
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class SegmentSpec:
    """Identity of one plane kind: registry key, header magic, layout version.

    ``kind`` names the plane in segment names (``repro-<kind>-...``) and in
    registry queries; ``magic`` and ``version`` are stamped into the header at
    create time and validated at attach time, so a foreign segment or a peer
    built for another layout generation is refused with a clean
    :class:`~repro.exceptions.ModelError` instead of decoding shifted fields.
    """

    kind: str
    magic: int
    version: int

    def __post_init__(self) -> None:
        """Validate that ``kind`` can appear in a POSIX shared-memory name."""
        if not self.kind or not all(c.isalnum() or c == "-" for c in self.kind):
            raise ModelError(
                f"segment kind {self.kind!r} must be non-empty alphanumeric-or-dash "
                "(it becomes part of the segment name)"
            )


@dataclass(frozen=True)
class Region:
    """One named typed region of a segment payload."""

    name: str
    dtype: np.dtype
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Byte size of the region."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * self.dtype.itemsize


class SegmentLayout:
    """Named typed regions packed (aligned) into one segment payload.

    A plane with fixed geometry declares its payload as an ordered sequence of
    :class:`Region` entries; the layout computes aligned offsets and total
    payload size, and :meth:`map` materialises each region as a numpy view
    over a mapped segment's shared pages (zero-copy).
    """

    def __init__(self, regions: Sequence[Tuple[str, Any, Tuple[int, ...]]]) -> None:
        """Build the layout from ``(name, dtype-like, shape)`` triples."""
        self.regions: List[Region] = []
        self.offsets: Dict[str, int] = {}
        offset = 0
        for name, dtype, shape in regions:
            region = Region(name=name, dtype=np.dtype(dtype), shape=tuple(shape))
            if region.name in self.offsets:
                raise ModelError(f"duplicate region name {region.name!r} in segment layout")
            offset = align(offset)
            self.offsets[region.name] = offset
            self.regions.append(region)
            offset += region.nbytes
        #: Total payload bytes the regions occupy (regions are aligned).
        self.payload_size = offset

    def map(self, handle: "ManagedSegment", *, writeable: bool = True) -> Dict[str, np.ndarray]:
        """Map every region as a numpy view over the segment's payload.

        The views are backed by the shared pages -- nothing is copied.  With
        ``writeable=False`` the views are marked read-only (attacher side).
        The caller owns dropping the views before the handle's last release
        (see :attr:`ManagedSegment.drop_views`).
        """
        arrays: Dict[str, np.ndarray] = {}
        for region in self.regions:
            view = np.ndarray(
                region.shape,
                dtype=region.dtype,
                buffer=handle.buf,
                offset=HEADER_BYTES + self.offsets[region.name],
            )
            if not writeable and view.flags.writeable:
                view.flags.writeable = False
            arrays[region.name] = view
        return arrays


def write_header(spec: SegmentSpec, buf: memoryview, payload_size: int) -> None:
    """Stamp the substrate header (magic, plane magic, version, payload size)."""
    header = np.ndarray((HEADER_BYTES // 8,), dtype=np.uint64, buffer=buf)
    header[:] = 0
    header[0] = SHM_MAGIC
    header[1] = spec.magic
    header[2] = spec.version
    header[3] = payload_size


def read_header(buf: memoryview) -> Tuple[int, int, int]:
    """Read ``(plane_magic, version, payload_size)`` from a substrate header.

    Raises:
        ModelError: If the buffer is too small to hold a header or its first
            word is not :data:`SHM_MAGIC` (a foreign segment).
    """
    if len(buf) < HEADER_BYTES:
        raise ModelError(
            f"buffer of {len(buf)} bytes is too small to hold a "
            f"{HEADER_BYTES}-byte substrate header"
        )
    header = np.ndarray((HEADER_BYTES // 8,), dtype=np.uint64, buffer=buf)
    if int(header[0]) != SHM_MAGIC:
        raise ModelError("not a repro shared-memory segment (substrate magic mismatch)")
    return int(header[1]), int(header[2]), int(header[3])


def validate_header(spec: SegmentSpec, buf: memoryview, *, source: str) -> int:
    """Check a header against ``spec``; return the recorded payload size.

    Raises:
        ModelError: On a foreign segment, a plane-kind (magic) mismatch, a
            layout-version mismatch, or a payload that does not fit the
            mapped buffer -- each with a distinct, actionable message.
    """
    magic, version, payload_size = read_header(buf)
    if magic != spec.magic:
        raise ModelError(
            f"{source} is not a {spec.kind} segment (plane magic mismatch: "
            f"found 0x{magic:x}, expected 0x{spec.magic:x})"
        )
    if version != spec.version:
        raise ModelError(
            f"{source} uses {spec.kind} layout version {version}, but this build "
            f"implements version {spec.version}; refusing to decode shifted fields"
        )
    if len(buf) < HEADER_BYTES + payload_size:
        raise ModelError(
            f"{source} records a {payload_size}-byte payload but only "
            f"{len(buf) - HEADER_BYTES} bytes are mapped"
        )
    return payload_size


def attach_segment_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without handing it to the resource tracker.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers the
    segment with the resource tracker, which would unlink it when the
    *attaching* process exits -- exactly wrong for worker processes attaching a
    parent-owned segment (and, since spawn workers share the parent's tracker
    process, unregistering afterwards would corrupt the parent's bookkeeping).
    Python 3.13 grew ``track=False`` for this; on older interpreters the
    registration call is suppressed for the duration of the attach instead.
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - interpreter dependent
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]


class ManagedSegment:
    """One refcounted handle over a substrate segment in this process.

    Instances are created by :func:`create_segment` (creator side, owns the
    unlink) or :func:`attach_segment` (attacher side, mapping only).  Planes
    wrap a handle and set :attr:`owner` (so an in-process re-attach dedups to
    the wrapping plane) and :attr:`drop_views` (called on the last release,
    before the mapping closes, so numpy views into the pages are dropped and
    ``close()`` cannot fail with exported-pointer ``BufferError``).
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        spec: SegmentSpec,
        *,
        creator: bool,
    ) -> None:
        """Wrap ``segment``; use the module factories instead of calling this."""
        self._segment = segment
        self.spec = spec
        self.creator = creator
        self._refcount = 1
        self._lock = threading.Lock()
        self._closed = False
        #: The plane object wrapping this handle, if any (attach dedup target).
        self.owner: Any = None
        #: Callback dropping numpy views into the pages; run on last release.
        self.drop_views: Optional[Callable[[], None]] = None

    @property
    def name(self) -> str:
        """System-wide name of the shared-memory segment."""
        return self._segment.name

    @property
    def closed(self) -> bool:
        """Whether this process has dropped its mapping of the segment."""
        return self._closed

    @property
    def buf(self) -> memoryview:
        """The full mapped buffer, substrate header included."""
        return self._segment.buf

    def acquire(self) -> "ManagedSegment":
        """Add one in-process reference (an additional attach of the segment)."""
        with self._lock:
            if self._closed:
                raise ModelError(f"shared-memory segment {self.name!r} is already closed")
            self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one reference; close (and, as creator, unlink) on the last one.

        Idempotent once the count reaches zero -- double releases and the
        ``atexit`` backstop must never raise during interpreter shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._refcount -= 1
            if self._refcount > 0:
                return
            self._closed = True
        with _SEGMENTS_LOCK:
            _ACTIVE_SEGMENTS.pop(self.name, None)
        # Views into the mapping (plane record arrays, reconstructed model
        # structures) must die before close(), or mmap teardown raises
        # exported-pointer BufferErrors.
        if self.drop_views is not None:
            self.drop_views()
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a caller still holds a view
            return
        if self.creator:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def force_release(self) -> None:
        """Collapse the refcount and release (the ``atexit`` backstop's path)."""
        with self._lock:
            self._refcount = min(self._refcount, 1)
        self.release()


def _register(handle: ManagedSegment) -> ManagedSegment:
    with _SEGMENTS_LOCK:
        _ACTIVE_SEGMENTS[handle.name] = handle
    return handle


@atexit.register
def _release_active_segments() -> None:  # pragma: no cover - interpreter shutdown
    """Backstop: force-release every segment still open at interpreter exit."""
    with _SEGMENTS_LOCK:
        handles = list(_ACTIVE_SEGMENTS.values())
    for handle in handles:
        handle.force_release()


def create_segment(
    spec: SegmentSpec, payload_size: int, *, zero_payload: bool = False
) -> ManagedSegment:
    """Allocate a new substrate segment with a stamped header (creator side).

    The segment is named ``repro-<kind>-<random>`` and registered with the
    atexit-backstopped registry; the returned handle owns the unlink.  With
    ``zero_payload`` the whole payload is zero-filled (planes whose protocol
    reads "never written" from zeroed words need this; some platforms hand
    out dirty pages).

    Raises:
        ModelError: If ``payload_size`` is negative, no free name is found,
            or the platform cannot allocate shared memory.
    """
    if payload_size < 0:
        raise ModelError(f"cannot create a segment with negative payload size {payload_size}")
    total = HEADER_BYTES + payload_size
    segment: Optional[shared_memory.SharedMemory] = None
    for _ in range(_CREATE_ATTEMPTS):
        name = f"{SEGMENT_PREFIX}{spec.kind}-{secrets.token_hex(8)}"
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=total)
            break
        except FileExistsError:  # pragma: no cover - 64-bit collision
            continue
        except OSError as exc:
            raise ModelError(f"cannot allocate shared memory for {spec.kind}: {exc}") from exc
    if segment is None:  # pragma: no cover - eight collisions in a row
        raise ModelError(f"could not find a free segment name for {spec.kind}")
    try:
        if zero_payload:
            segment.buf[:total] = b"\x00" * total
        write_header(spec, segment.buf, payload_size)
    except Exception:
        segment.close()
        segment.unlink()
        raise
    return _register(ManagedSegment(segment, spec, creator=True))


def attach_segment(spec: SegmentSpec, name: str) -> ManagedSegment:
    """Attach an existing substrate segment by name, validating its header.

    Attaching a segment this process already holds open returns the existing
    handle with its reference count bumped (so its :attr:`ManagedSegment.owner`
    plane can be reused).  A fresh attach maps the segment untracked (the
    parent owns the unlink; see :func:`attach_segment_untracked`) and refuses
    foreign segments, plane-kind mismatches and layout-version mismatches.

    Raises:
        ModelError: If no segment with ``name`` exists (e.g. the creator
            already unlinked it -- attachers racing a creator-unlink get this
            clean error, never a raw ``FileNotFoundError``), or its header
            does not validate against ``spec``.
    """
    with _SEGMENTS_LOCK:
        existing = _ACTIVE_SEGMENTS.get(name)
    if existing is not None and not existing.closed:
        if existing.spec != spec:
            raise ModelError(
                f"segment {name!r} is already open as {existing.spec.kind} "
                f"v{existing.spec.version}, not {spec.kind} v{spec.version}"
            )
        return existing.acquire()
    try:
        segment = attach_segment_untracked(name)
    except (FileNotFoundError, OSError) as exc:
        raise ModelError(f"{spec.kind} segment {name!r} is not available: {exc}") from exc
    try:
        validate_header(spec, segment.buf, source=f"segment {name!r}")
    except ModelError:
        segment.close()
        raise
    return _register(ManagedSegment(segment, spec, creator=False))


def forget_inherited_segments(kind: Optional[str] = None) -> None:
    """Drop segment handles inherited through ``fork`` without closing anything.

    A fork-started worker inherits the parent's registry, including
    *creator*-flagged handles.  Left in place, an attach inside the worker
    would dedup to the inherited handle -- reusing the worker's private
    copy-on-write pages instead of mapping the shared segment (CPython
    refcount updates dirty COW pages, so those copies do materialise) -- and
    the creator flag would hand the worker an unlink it must never perform.
    Workers therefore forget the whole registry (or one plane ``kind``)
    before attaching; the parent process keeps sole ownership of every
    unlink.  No-op in spawn-started workers, whose registry starts empty.
    """
    with _SEGMENTS_LOCK:
        if kind is None:
            _ACTIVE_SEGMENTS.clear()
        else:
            for name in [n for n, h in _ACTIVE_SEGMENTS.items() if h.spec.kind == kind]:
                del _ACTIVE_SEGMENTS[name]


def active_segment(name: str) -> Optional[ManagedSegment]:
    """The open handle this process holds for ``name``, if any."""
    with _SEGMENTS_LOCK:
        handle = _ACTIVE_SEGMENTS.get(name)
    if handle is None or handle.closed:
        return None
    return handle


def active_segment_names(kind: Optional[str] = None) -> List[str]:
    """Names of the segments this process holds open (optionally one kind)."""
    with _SEGMENTS_LOCK:
        return [
            name
            for name, handle in _ACTIVE_SEGMENTS.items()
            if not handle.closed and (kind is None or handle.spec.kind == kind)
        ]


def segment_refcount(name: str) -> Optional[int]:
    """Current in-process reference count of a segment (``None`` if unknown)."""
    with _SEGMENTS_LOCK:
        handle = _ACTIVE_SEGMENTS.get(name)
    if handle is None:
        return None
    with handle._lock:
        return handle._refcount


__all__ = [
    "ALIGNMENT",
    "HEADER_BYTES",
    "SEGMENT_PREFIX",
    "SHM_MAGIC",
    "ManagedSegment",
    "Region",
    "SegmentLayout",
    "SegmentSpec",
    "active_segment",
    "active_segment_names",
    "align",
    "attach_segment",
    "attach_segment_untracked",
    "create_segment",
    "forget_inherited_segments",
    "segment_refcount",
    "validate_header",
    "write_header",
    "read_header",
]
