"""One execution plane: sweep scheduling, backend protocol and merge pipeline.

Historically the sweep machinery lived twice: ``execute_sweep``
(:mod:`repro.core.engine`) and ``run_distributed_sweep``
(:mod:`repro.core.distributed`) each reimplemented scheduling, journaling,
retry bookkeeping, baseline synthesis and progress reporting inside one big
batch driver.  This module decomposes that machinery into three explicit
layers, shared by every way a sweep can run:

1. :class:`SweepPlan` -- the *schedulable* form of a sweep grid.  The plan
   owns the task list (one unit per grid point, or one unit per ``(gamma,
   attack)`` series under chaining) and makes the implicit ordering of
   ``_build_tasks`` explicit data: :meth:`SweepPlan.dependencies` is the
   chain-edge graph induced by ``warm_start_across_points`` /
   ``reuse_p_axis_bounds``, and "what may run concurrently" is exactly
   "units are independent; points inside a unit are chained in p order".
   Resume filtering (:meth:`SweepPlan.with_replayed`) is a plan-to-plan
   transform, so every backend skips journal-replayed units the same way.

2. :class:`ExecutionBackend` -- the protocol that turns a plan's tasks into
   :class:`~repro.core.engine.PointOutcome`\\ s, and *nothing else*:
   ``start(plan)`` acquires resources, ``outcomes()`` streams outcome events,
   ``close()`` releases resources (idempotent).  :class:`SerialBackend` runs
   units in-process in submission order, :class:`PoolBackend` fans them over a
   :class:`~concurrent.futures.ProcessPoolExecutor` with the shared-memory
   model plane and results-plane drain, and :class:`DistributedBackend` wraps
   the TCP coordinator fabric.  Backends never journal, never merge, never
   synthesize failures.

3. :class:`MergeSink` -- the single merge pipeline that the engine's old
   ``collect()`` closure and the coordinator's ``_record_result`` /
   ``_journal`` used to duplicate: idempotent grid-key merge, journal append
   (a no-op for replayed keys), unit-level first-result-wins with
   fewer-errors-wins recompute replacement, per-channel counters
   (``in_process`` / ``via_plane`` / ``via_pickle`` / ``synthesized``),
   synthesized failures for crashed units, progress reporting through
   :class:`~repro.core.reporting.ProgressReporter`, and final assembly into a
   :class:`~repro.core.results.SweepResult`.  The sink is also the streaming
   seam a future query API will sit on: every outcome flows through
   :meth:`MergeSink.accept` (or :meth:`MergeSink.accept_unit`) the moment it
   exists, so an observer can serve certified bounds *while* the sweep runs.

:func:`execute_plan` is the thin orchestration over the three layers::

    plan -> journal resume-filter -> backend.run(plan, sink) -> assemble

and is what :func:`repro.core.engine.execute_sweep` and
:func:`repro.core.distributed.run_distributed_sweep` now delegate to.  Lint
rule RL007 (:mod:`repro.lint.rules.merge_pipeline`) pins the design: no module
outside this one may append to a sweep journal, mutate sweep-result metadata
or call ``assemble_sweep_result``.

Behavioral contract: every backend produces bit-for-bit the values of the
pre-refactor serial path (certified bounds, ERRev, CSV value columns, journal
records); only wall-clock metadata may differ.  The conformance suite
(``tests/core/execution_conformance.py``) asserts this for all three backends
under fork and spawn.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..exceptions import ModelError
from . import engine as _engine
from .journal import GridKey
from .reporting import ProgressReporter
from .results import SweepResult

if TYPE_CHECKING:  # pragma: no cover - import cycles broken at runtime
    from ..mdp.portfolio import PortfolioHistory
    from .engine import AttackTask, PointOutcome
    from .journal import SweepJournal
    from .results_plane import ResultsPlane
    from .shared_structures import SharedStructurePlane
    from .sweep import SweepConfig


# ----------------------------------------------------------------- sweep plan


@dataclass(frozen=True)
class SweepPlan:
    """The schedulable form of a sweep grid: tasks plus explicit dependencies.

    ``tasks`` are the engine's :class:`~repro.core.engine.AttackTask` units in
    deterministic grid order; the unit id of a task is its index.  Units are
    mutually independent and may run concurrently on any backend; the only
    ordering constraints are *inside* a unit, where chained warm starts /
    certified-bound reuse tie each point to its predecessor on the p axis --
    :meth:`dependencies` returns exactly those edges.  ``replayed_units`` are
    the units a journal resume already completed; backends schedule only
    :attr:`pending_units`.
    """

    config: "SweepConfig"
    tasks: Tuple["AttackTask", ...]
    replayed_units: FrozenSet[int] = frozenset()

    @classmethod
    def build(cls, config: "SweepConfig") -> "SweepPlan":
        """Decompose ``config``'s grid into a plan (series-ordered under chaining)."""
        return cls(config=config, tasks=tuple(_engine._build_tasks(config)))

    def unit_keys(self, unit_id: int) -> Tuple[GridKey, ...]:
        """Grid keys ``(gamma_index, p_index, attack_index)`` of one unit, in p order."""
        task = self.tasks[unit_id]
        return tuple(
            (task.gamma_index, p_index, task.attack_index) for p_index in task.p_indices
        )

    def dependencies(self) -> Dict[GridKey, GridKey]:
        """Chain edges: each chained grid key mapped to its p-axis predecessor.

        Non-empty only when ``warm_start_across_points`` or
        ``reuse_p_axis_bounds`` chains a series, in which case every point of a
        unit (except the first) depends on the previous p point -- the reason
        a whole series travels as one unit and never crosses a process or host
        boundary.  Keys absent from the mapping may start immediately.
        """
        edges: Dict[GridKey, GridKey] = {}
        for unit_id, task in enumerate(self.tasks):
            if not (task.warm_start_across_points or task.reuse_p_axis_bounds):
                continue
            keys = self.unit_keys(unit_id)
            for previous, current in zip(keys, keys[1:]):
                edges[current] = previous
        return edges

    @property
    def pending_units(self) -> Tuple[int, ...]:
        """Unit ids still to be executed (everything not replayed), in order."""
        return tuple(
            unit_id for unit_id in range(len(self.tasks)) if unit_id not in self.replayed_units
        )

    def pending_tasks(self) -> List[Tuple[int, "AttackTask"]]:
        """``(unit_id, task)`` pairs of the pending units, in submission order."""
        return [(unit_id, self.tasks[unit_id]) for unit_id in self.pending_units]

    def with_replayed(self, replayed: Mapping[GridKey, "PointOutcome"]) -> "SweepPlan":
        """Resume filter: mark every unit whose grid keys are all replayed.

        A *partially* journaled unit (a chained series interrupted mid-block)
        stays pending and is recomputed whole -- the chain must not cross the
        crash boundary -- which is safe because recomputed values are
        bit-for-bit identical and re-journaling replayed keys is a no-op.
        """
        if not replayed:
            return self
        done = frozenset(
            unit_id
            for unit_id in range(len(self.tasks))
            if all(key in replayed for key in self.unit_keys(unit_id))
        )
        if not done:
            return self
        return SweepPlan(config=self.config, tasks=self.tasks, replayed_units=done)


# ----------------------------------------------------------------- merge sink


class MergeSink:
    """The one merge pipeline: journal, retry accounting, counters, assembly.

    Every computed :class:`~repro.core.engine.PointOutcome` -- whatever backend
    produced it, whatever channel carried it -- flows through this object
    exactly once.  The sink owns the idempotent grid-key merge (last write
    wins at key level; :meth:`accept_unit` adds the coordinator's unit-level
    first-result-wins / fewer-errors-wins discipline on top), the durable
    journal append (``record`` is a no-op for replayed keys), the per-channel
    delivery counters behind ``metadata["results_plane"]``, synthesized
    failures for units whose worker died, and progress reporting.  Baseline
    synthesis and per-point transient-retry accounting
    (``metadata["recovery"]``) happen in :meth:`assemble`, which re-orders the
    merged outcomes into the canonical ``gamma -> p -> series``
    :class:`~repro.core.results.SweepResult`.
    """

    def __init__(
        self,
        plan: SweepPlan,
        *,
        reporter: ProgressReporter,
        journal: Optional["SweepJournal"] = None,
    ) -> None:
        """Create the sink for one sweep run (one plan, one optional journal)."""
        self.plan = plan
        self.reporter = reporter
        self.journal = journal
        self.outcomes: Dict[GridKey, "PointOutcome"] = {}
        self.channels: Dict[str, int] = {
            "via_plane": 0,
            "via_pickle": 0,
            "in_process": 0,
            "synthesized": 0,
        }
        self._unit_outcomes: Dict[int, List["PointOutcome"]] = {}

    @staticmethod
    def key_of(outcome: "PointOutcome") -> GridKey:
        """Grid key ``(gamma_index, p_index, attack_index)`` of one outcome."""
        return (outcome.gamma_index, outcome.p_index, outcome.attack_index)

    def replay(self, replayed: Mapping[GridKey, "PointOutcome"]) -> None:
        """Seed journal-replayed outcomes: merged silently, never re-journaled."""
        self.outcomes.update(replayed)

    def accept(
        self, outcomes: Iterable["PointOutcome"], *, channel: str = "via_pickle"
    ) -> None:
        """Merge computed outcomes at key level: count, journal, report each one."""
        for outcome in outcomes:
            self.outcomes[self.key_of(outcome)] = outcome
            self.channels[channel] += 1
            if self.journal is not None:
                self.journal.record(outcome)
            self.reporter(_engine.describe_outcome(outcome))

    def accept_unit(self, unit_id: int, outcomes: List["PointOutcome"]) -> int:
        """Merge one whole unit's outcomes with duplicate-delivery discipline.

        The first result per unit wins -- a straggler-duplicated or
        reassigned-but-alive worker recomputes the same grid keys to the same
        values -- unless the accepted result carried errors and the recompute
        has fewer (a host-specific transient failure must not outrank a clean
        value), in which case the recompute replaces it.

        Returns:
            The number of errored points replaced (0 for a first delivery or
            an ignored duplicate), so the caller can attribute the replacement
            to the worker that computed it.
        """
        previous = self._unit_outcomes.get(unit_id)
        if previous is not None:
            previous_errors = sum(1 for o in previous if o.error is not None)
            new_errors = sum(1 for o in outcomes if o.error is not None)
            if previous_errors and new_errors < previous_errors:
                self._unit_outcomes[unit_id] = list(outcomes)
                for outcome in outcomes:
                    self.outcomes[self.key_of(outcome)] = outcome
                    if self.journal is not None:
                        self.journal.record(outcome)
                return previous_errors
            return 0
        self._unit_outcomes[unit_id] = list(outcomes)
        for outcome in outcomes:
            self.outcomes[self.key_of(outcome)] = outcome
            if self.journal is not None:
                self.journal.record(outcome)
        for outcome in outcomes:
            self.reporter(_engine.describe_outcome(outcome))
        return 0

    def synthesize_missing(self, task: "AttackTask", message: str) -> None:
        """Record synthesized failures for a crashed unit's unreported keys.

        Only grid keys that never made it anywhere (no plane record, no
        pickled result, no duplicate delivery) become failures, so each key is
        merged exactly once.
        """
        self.accept(
            [
                _engine.PointOutcome(
                    gamma_index=task.gamma_index,
                    p_index=p_index,
                    attack_index=task.attack_index,
                    p=p,
                    gamma=task.gamma,
                    series=task.series,
                    errev=None,
                    seconds=0.0,
                    solver_iterations=0,
                    num_states=0,
                    error=message,
                )
                for p, p_index in zip(task.p_values, task.p_indices)
                if (task.gamma_index, p_index, task.attack_index) not in self.outcomes
            ],
            channel="synthesized",
        )

    def assemble(self, *, description: str) -> SweepResult:
        """Assemble the merged outcomes (plus inline baselines) into the result."""
        return _engine.assemble_sweep_result(
            self.plan.config, self.outcomes, self.reporter, description=description
        )

    def journal_metadata(self) -> Optional[Dict[str, object]]:
        """The ``metadata["journal"]`` block (``None`` when journaling is off)."""
        if self.journal is None:
            return None
        return {
            "path": str(self.journal.path),
            "fsync": self.journal.fsync,
            "replayed": self.journal.replayed,
            "recorded": self.journal.recorded,
            "skipped_units": len(self.plan.replayed_units),
        }


# ------------------------------------------------------------ backend events


@dataclass(frozen=True)
class OutcomeBatch:
    """One streamed batch of computed outcomes plus the channel that carried it."""

    outcomes: Tuple["PointOutcome", ...]
    channel: str


@dataclass(frozen=True)
class UnitCrash:
    """A unit whose worker died; unreported keys become synthesized failures."""

    unit_id: int
    message: str


#: Events an :meth:`ExecutionBackend.outcomes` iterator may stream.
BackendEvent = Union[OutcomeBatch, UnitCrash]


# -------------------------------------------------------------------- backends


class ExecutionBackend:
    """Protocol of every sweep execution backend: tasks in, outcomes out.

    A backend's only job is turning a plan's pending tasks into
    :class:`~repro.core.engine.PointOutcome`\\ s; it never journals, merges or
    assembles.  The contract is

    * :meth:`start` -- acquire resources for a plan (pools, planes, sockets),
    * :meth:`outcomes` -- stream :class:`OutcomeBatch` / :class:`UnitCrash`
      events as units complete,
    * :meth:`close` -- release every resource; must be idempotent and safe
      after a partial :meth:`start`,

    and :meth:`run` is the pull-mode driver over those three, feeding each
    event into the :class:`MergeSink`.  :class:`DistributedBackend` overrides
    :meth:`run` to push outcomes into the sink from its event loop instead
    (same seam, push mode).  :meth:`describe` and :meth:`metadata` supply the
    backend-specific result description and metadata blocks, so the
    orchestration in :func:`execute_plan` stays backend-agnostic.
    """

    #: Short identifier used by harnesses and benchmarks.
    name: str = "backend"

    def start(self, plan: SweepPlan) -> None:
        """Acquire the resources needed to execute ``plan``'s pending units."""
        raise NotImplementedError

    def outcomes(self) -> Iterator[BackendEvent]:
        """Stream outcome events until every pending unit is accounted for."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every resource acquired by :meth:`start` (idempotent)."""

    def describe(self, plan: SweepPlan) -> str:
        """One-line description of how the sweep ran (``SweepResult.description``)."""
        config = plan.config
        return (
            f"figure-2 sweep over p={list(config.p_values)} and gamma={list(config.gammas)} "
            f"(workers={int(config.workers)})"
        )

    def metadata(self, plan: SweepPlan, sink: MergeSink) -> Dict[str, object]:
        """Backend-specific ``SweepResult.metadata`` entries (may be empty)."""
        return {}

    def run(self, plan: SweepPlan, sink: MergeSink) -> None:
        """Default driver: start, feed every streamed event to the sink, close."""
        self.start(plan)
        stream = self.outcomes()
        try:
            for event in stream:
                if isinstance(event, UnitCrash):
                    sink.synthesize_missing(plan.tasks[event.unit_id], event.message)
                else:
                    sink.accept(event.outcomes, channel=event.channel)
        finally:
            close_stream = getattr(stream, "close", None)
            if close_stream is not None:
                close_stream()
            self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution: units run in submission order on this thread.

    The reference backend: deterministic ordering, no IPC, no shared memory.
    A per-sweep :class:`~repro.mdp.portfolio.PortfolioHistory` (portfolio
    solver only) starts cold, exactly like a fresh pool worker, so independent
    serial sweeps in a long-lived process never share race history.
    """

    name = "serial"

    def __init__(self) -> None:
        """Create an idle serial backend (resources acquired by ``start``)."""
        self._plan: Optional[SweepPlan] = None
        self._history: Optional["PortfolioHistory"] = None

    def start(self, plan: SweepPlan) -> None:
        """Prepare in-process execution (cold per-sweep portfolio history)."""
        self._plan = plan
        self._history = None
        if plan.pending_units and plan.config.analysis.solver == "portfolio":
            from ..mdp.portfolio import PortfolioHistory

            self._history = PortfolioHistory()

    def outcomes(self) -> Iterator[BackendEvent]:
        """Compute each pending unit inline and stream its outcomes."""
        assert self._plan is not None  # start() ran
        for _unit_id, task in self._plan.pending_tasks():
            yield OutcomeBatch(
                outcomes=tuple(_engine._run_attack_task(task, self._history)),
                channel="in_process",
            )

    def close(self) -> None:
        """Drop the per-sweep portfolio history."""
        self._history = None


class PoolBackend(ExecutionBackend):
    """Process-pool execution with the shared model plane and results plane.

    The parent builds every skeleton of the grid once, publishes the flat
    buffers on the shared-memory model plane, and each worker -- fork- or
    spawn-started -- attaches zero-copy in its initializer (zero explorations;
    ``structure_cache_stats()["builds"] == 0`` in workers).  Outcomes return
    through the pickle-free results plane where possible, drained per task
    once the task's future result provides the memory barrier the per-slot
    seqlock does not; a post-join full drain catches records published by
    crashed workers, and only keys that never made it anywhere become
    :class:`UnitCrash` synthesized failures.
    """

    name = "pool"

    def __init__(self) -> None:
        """Create an idle pool backend (resources acquired by ``start``)."""
        self._plan: Optional[SweepPlan] = None
        self._plane: Optional["SharedStructurePlane"] = None
        self._results_plane: Optional["ResultsPlane"] = None
        self._pool_kwargs: Dict[str, object] = {}
        self._workers: int = 0
        self._released = False

    def start(self, plan: SweepPlan) -> None:
        """Publish the model plane, create the results plane, size the pool.

        When shared memory is unavailable the backend degrades to the legacy
        behaviour: forked workers inherit the parent's prewarmed cache,
        spawned workers prewarm once per worker via the same initializer, and
        outcomes return by pickling.
        """
        self._plan = plan
        config = plan.config
        self._workers = int(config.workers)
        self._released = False
        if not plan.pending_units:
            return
        start_method = _engine._pool_start_method()
        pool_kwargs: Dict[str, object] = {
            "mp_context": multiprocessing.get_context(start_method)
        }
        plane: Optional["SharedStructurePlane"] = None
        if config.use_structure_cache:
            structures = _engine._prewarm_structure_cache(config)
            if structures and config.use_shared_structures:
                try:
                    plane = _engine.publish_structures(structures)
                except ModelError:
                    plane = None
        self._plane = plane
        results_plane: Optional["ResultsPlane"] = None
        if getattr(config, "use_results_plane", True):
            from .results_plane import create_results_plane

            try:
                results_plane = create_results_plane(
                    len(config.gammas), len(config.p_values), len(config.attack_configs)
                )
            except ModelError:
                results_plane = None
        self._results_plane = results_plane
        if plane is not None or results_plane is not None or (
            start_method != "fork" and config.use_structure_cache
        ):
            # Fresh (spawn) interpreters cannot inherit the parent's cache, and
            # any shared plane must be attached inside the worker.
            pool_kwargs["initializer"] = _engine._initialize_worker
            pool_kwargs["initargs"] = (
                plane.name if plane is not None else None,
                config,
                results_plane.name if results_plane is not None else None,
            )
        self._pool_kwargs = pool_kwargs

    def outcomes(self) -> Iterator[BackendEvent]:
        """Fan pending units over the pool and stream outcomes as they land."""
        assert self._plan is not None  # start() ran
        plan = self._plan
        pending = plan.pending_tasks()
        if not pending:
            return
        results_plane = self._results_plane

        def drain_task_slots(task: "AttackTask") -> Tuple["PointOutcome", ...]:
            """Consume one task's plane slots (call only after syncing with its writer).

            The per-slot seqlock detects torn records but is not a memory
            barrier, so slots are only consumed once the writer has
            synchronized with this process: here via the task's future
            *result* (queue IPC).  Failed futures don't qualify -- a broken
            pool fails every in-flight future while sibling workers may still
            be writing -- so crashed units are handled after the pool joins.
            """
            if results_plane is None:
                return ()
            ready = []
            for p_index in task.p_indices:
                outcome = results_plane.take_new(
                    results_plane.slot_of(task.gamma_index, p_index, task.attack_index)
                )
                if outcome is not None:
                    ready.append(outcome)
            return tuple(ready)

        crashed: List[Tuple[int, str]] = []
        with ProcessPoolExecutor(max_workers=self._workers, **self._pool_kwargs) as pool:  # type: ignore[arg-type]
            futures = {
                pool.submit(_engine._run_attack_task, task): unit_id
                for unit_id, task in pending
            }
            for future in as_completed(futures):
                unit_id = futures[future]
                task = plan.tasks[unit_id]
                try:
                    spilled = future.result()
                except Exception as exc:
                    # A worker that died (OOM kill, segfault, broken pool)
                    # must not discard the outcomes already collected from
                    # others.  A broken pool marks *every* in-flight future
                    # failed while sibling workers may still be writing, so
                    # neither plane slots nor failure placeholders may be
                    # touched here -- both wait for the post-join drain,
                    # where no concurrent writer can exist.
                    crashed.append((unit_id, f"worker crashed: {type(exc).__name__}: {exc}"))
                    continue
                # Outcomes the plane absorbed are drained here, once their
                # task's future confirms the records are published; anything
                # the plane refused (oversized strings, no plane at all)
                # arrives pickled.
                yield OutcomeBatch(outcomes=drain_task_slots(task), channel="via_plane")
                yield OutcomeBatch(outcomes=tuple(spilled), channel="via_pickle")
        # The pool has joined: every worker is gone, so a full drain is
        # race-free and catches anything published by crashed or interrupted
        # workers; only grid keys that never made it anywhere become
        # synthesized failures (each key is collected exactly once).
        if results_plane is not None:
            yield OutcomeBatch(outcomes=tuple(results_plane.drain_new()), channel="via_plane")
        for unit_id, message in crashed:
            yield UnitCrash(unit_id=unit_id, message=message)

    def close(self) -> None:
        """Release both shared segments (parent-owned: release means unlink)."""
        if self._released:
            return
        self._released = True
        plane, self._plane = self._plane, None
        if plane is not None:
            plane.release()
        if self._results_plane is not None:
            # Keep the handle for metadata (num_slots) but release the segment.
            self._results_plane.release()

    def metadata(self, plan: SweepPlan, sink: MergeSink) -> Dict[str, object]:
        """The ``metadata["results_plane"]`` block (only when the pool ran)."""
        if not plan.pending_units:
            return {}
        results_plane = self._results_plane
        return {
            "results_plane": {
                "enabled": results_plane is not None,
                "slots": results_plane.num_slots if results_plane is not None else 0,
                "via_plane": sink.channels["via_plane"],
                "via_pickle": sink.channels["via_pickle"],
                "synthesized": sink.channels["synthesized"],
            }
        }


class DistributedBackend(ExecutionBackend):
    """TCP coordinator execution: units stream to remote ``repro worker``\\ s.

    Wraps the fabric of :mod:`repro.core.distributed`.  This backend is
    *push-mode*: outcome frames arrive inside the coordinator's asyncio event
    loop, which feeds them to :meth:`MergeSink.accept_unit` the moment they
    land (unit-level merge: first result wins, fewer-errors-wins recompute
    replacement) -- so journal appends stay crash-safe mid-sweep instead of
    buffering until the loop exits.  :meth:`run` is overridden accordingly;
    :meth:`outcomes` therefore never yields and raises if called.
    """

    name = "distributed"

    def __init__(
        self,
        *,
        heartbeat_seconds: Optional[float] = None,
        straggler_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        on_listen: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Configure the fabric (``None`` tunables resolve to env defaults)."""
        self._heartbeat_seconds = heartbeat_seconds
        self._straggler_seconds = straggler_seconds
        self._timeout = timeout
        self._on_listen = on_listen
        self._listen: Optional[Tuple[str, int]] = None
        self._coordinator: Optional[object] = None

    def start(self, plan: SweepPlan) -> None:
        """No-op: the fabric's lifetime is contained in :meth:`run`."""

    def outcomes(self) -> Iterator[BackendEvent]:
        """Unused: outcomes are pushed into the sink from the event loop."""
        raise RuntimeError(
            "DistributedBackend streams outcomes by pushing into the MergeSink "
            "from the coordinator event loop; drive it with run(plan, sink)"
        )

    def run(self, plan: SweepPlan, sink: MergeSink) -> None:
        """Serve the coordinator fabric until every pending unit completes."""
        from . import distributed as fabric

        config = plan.config
        heartbeat_seconds = fabric.resolve_heartbeat_seconds(self._heartbeat_seconds)
        straggler_seconds = fabric.resolve_straggler_seconds(self._straggler_seconds)
        host, port = fabric.parse_address(str(config.coordinator))
        self._listen = (host, port)
        tasks = list(plan.tasks)
        structures_blob: Optional[bytes] = None
        if tasks and config.use_structure_cache:
            structures = _engine._prewarm_structure_cache(config)
            if structures:
                structures_blob = fabric.pack_structures(structures)
                if len(structures_blob) >= fabric.MAX_FRAME_BYTES - 4096:
                    # Fail fast: otherwise every worker handshake would raise
                    # on the oversized welcome frame and the sweep would hang
                    # with no worker ever accepted.
                    raise ModelError(
                        f"packed model structures ({len(structures_blob)} bytes) exceed the "
                        f"wire frame cap of {fabric.MAX_FRAME_BYTES} bytes; reduce the grid "
                        f"or disable use_structure_cache"
                    )
        coordinator = fabric._Coordinator(
            tasks,
            structures_blob,
            min_workers=int(config.distributed_workers),
            heartbeat_seconds=heartbeat_seconds,
            straggler_seconds=straggler_seconds,
            report=sink.reporter,
            sink=sink,
        )
        self._coordinator = coordinator
        # Journal resume: replayed units pre-complete before the fabric even
        # listens, so a resumed sweep streams only the delta to workers.
        if plan.replayed_units:
            coordinator.completed_units.update(plan.replayed_units)
            coordinator.pending = deque(
                unit_id
                for unit_id in range(len(tasks))
                if unit_id not in coordinator.completed_units
            )
        if sink.journal is not None and sink.journal.replayed:
            sink.reporter(
                f"journal resume: {len(plan.replayed_units)} of {len(tasks)} unit(s) "
                f"replayed from {sink.journal.path}"
            )
        if len(coordinator.completed_units) < len(tasks):
            coordinator.serve(host, port, timeout=self._timeout, on_listen=self._on_listen)
        elif tasks:
            sink.reporter("journal resume: every unit already journaled; skipping the fabric")

    def describe(self, plan: SweepPlan) -> str:
        """Distributed description: worker count and the listen address."""
        from .distributed import _Coordinator

        config = plan.config
        coordinator = self._coordinator
        assert isinstance(coordinator, _Coordinator) and self._listen is not None  # run() ran
        host, port = self._listen
        return (
            f"figure-2 sweep over p={list(config.p_values)} and gamma={list(config.gammas)} "
            f"(distributed over {len(coordinator.worker_stats) or coordinator.workers_ever} "
            f"worker(s) via {host}:{port})"
        )

    def metadata(self, plan: SweepPlan, sink: MergeSink) -> Dict[str, object]:
        """The ``metadata["distributed"]`` fabric-statistics block."""
        from .distributed import _Coordinator

        coordinator = self._coordinator
        assert isinstance(coordinator, _Coordinator) and self._listen is not None  # run() ran
        host, port = self._listen
        return {
            "distributed": {
                "listen": f"{host}:{port}",
                "workers": coordinator.worker_stats,
                "reassigned_units": coordinator.reassigned_units,
                "duplicated_units": coordinator.duplicated_units,
                "rejoined_workers": coordinator.rejoined_workers,
                "units": len(plan.tasks),
            }
        }


# -------------------------------------------------------------- orchestration


def execute_plan(
    config: "SweepConfig",
    backend: ExecutionBackend,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Thin orchestration: plan -> resume filter -> ``backend.run`` -> assemble.

    The only function in the package that opens a sweep journal, constructs a
    :class:`MergeSink` and attaches result metadata -- every execution path
    (:func:`repro.core.engine.execute_sweep`,
    :func:`repro.core.distributed.run_distributed_sweep`) funnels through it,
    so resume semantics, channel counters and metadata shapes cannot drift
    between backends.  The journal is sealed in a ``finally`` *before* the
    result is assembled, so its durability policy runs even when the backend
    (or a progress callback used for cancellation) raises.
    """
    reporter = ProgressReporter.wrap(progress)
    plan = SweepPlan.build(config)
    journal: Optional["SweepJournal"] = None
    journal_path = getattr(config, "journal_path", None)
    if journal_path is not None:
        from .journal import SweepJournal

        journal = SweepJournal.open(
            journal_path,
            config,
            resume=config.journal_resume,
            fsync=config.journal_fsync,
        )
    replayed: Mapping[GridKey, "PointOutcome"] = {}
    if journal is not None:
        replayed = journal.replayed_outcomes()
        plan = plan.with_replayed(replayed)
    sink = MergeSink(plan, reporter=reporter, journal=journal)
    if replayed:
        sink.replay(replayed)
    try:
        backend.run(plan, sink)
    finally:
        if journal is not None:
            journal.close()
    result = sink.assemble(description=backend.describe(plan))
    for key, value in backend.metadata(plan, sink).items():
        result.metadata[key] = value
    journal_meta = sink.journal_metadata()
    if journal_meta is not None:
        result.metadata["journal"] = journal_meta
    return result


__all__ = [
    "BackendEvent",
    "DistributedBackend",
    "ExecutionBackend",
    "MergeSink",
    "OutcomeBatch",
    "PoolBackend",
    "SerialBackend",
    "SweepPlan",
    "UnitCrash",
    "execute_plan",
]
