"""The top-level entry point: build the MDP, run Algorithm 1, report the result.

Example:
    >>> from repro import AnalysisConfig, AttackParams, ProtocolParams, SelfishMiningAnalyzer
    >>> analyzer = SelfishMiningAnalyzer(
    ...     ProtocolParams(p=0.3, gamma=0.5),
    ...     AttackParams(depth=2, forks=1, max_fork_length=4),
    ...     AnalysisConfig(epsilon=1e-3),
    ... )
    >>> result = analyzer.run()
    >>> result.errev_lower_bound >= result.honest_errev - 1e-3
    True
"""

from __future__ import annotations

import time
from typing import Optional

from ..analysis import evaluate_strategy_errev, formal_analysis
from ..attacks import honest_errev
from ..attacks.registry import get_attack
from ..config import AnalysisConfig, AttackParams, ProtocolParams
from .results import AnalysisResult


class SelfishMiningAnalyzer:
    """Runs the full pipeline for one ``(p, gamma, d, f, l)`` parameter point.

    The analyzer is scenario-generic: the attack family named by
    ``attack.scenario`` is resolved through the attack registry
    (:mod:`repro.attacks.registry`), so model construction, strategy replay
    and the honest baseline all dispatch to the registered scenario's hooks.
    """

    def __init__(
        self,
        protocol: Optional[ProtocolParams] = None,
        attack: Optional[AttackParams] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.protocol = protocol or ProtocolParams()
        self.attack = attack or AttackParams()
        self.config = config or AnalysisConfig()
        self._entry = get_attack(self.attack.scenario)
        self._model: Optional[object] = None

    # ------------------------------------------------------------------ pipeline

    def build_model(self, force: bool = False) -> object:
        """Build (or return the cached) scenario MDP model."""
        if self._model is None or force:
            self._model = self._entry.build_model(self.protocol, self.attack)
        return self._model

    def run(self) -> AnalysisResult:
        """Build the model and run the formal analysis (Algorithm 1)."""
        build_start = time.perf_counter()
        model = self.build_model()
        build_seconds = time.perf_counter() - build_start

        analysis_start = time.perf_counter()
        formal = formal_analysis(model.mdp, self.config)
        analysis_seconds = time.perf_counter() - analysis_start

        return AnalysisResult(
            protocol=self.protocol,
            attack=self.attack,
            errev_lower_bound=formal.errev_lower_bound,
            strategy_errev=formal.strategy_errev,
            honest_errev=honest_errev(self.protocol),
            num_states=model.mdp.num_states,
            num_transitions=model.mdp.num_transitions,
            build_seconds=build_seconds,
            analysis_seconds=analysis_seconds,
            formal=formal,
        )

    # ----------------------------------------------------------------- validation

    def evaluate_honest_baseline(self) -> float:
        """Exact ERRev of the honest-emulating strategy inside the constructed MDP.

        The scenario's protocol-following strategy (for selfish forks, the
        immediate-release strategy) yields value ``p`` whenever the model is
        not truncated against the honest miner, which users can employ to
        sanity-check the model on their parameter point.
        """
        model = self.build_model()
        return evaluate_strategy_errev(model.mdp, self._entry.honest_strategy(model.mdp))

    def validate_by_simulation(
        self,
        result: AnalysisResult,
        *,
        num_steps: int = 200_000,
        seed: int = 0,
    ) -> AnalysisResult:
        """Monte-Carlo-validate the extracted strategy and record the estimate.

        The computed strategy is replayed in the discrete-time chain simulator,
        whose revenue accounting is independent of the MDP's reward bookkeeping.
        The estimate is stored in ``result.simulated_errev`` and also returned.
        """
        policy = self._entry.make_policy(result.formal.strategy)
        simulation = self._entry.simulate(
            self.protocol, self.attack, policy, num_steps=num_steps, seed=seed
        )
        result.simulated_errev = simulation.relative_revenue
        return result
