"""Deterministic fault injection for the sweep fabric's recovery paths.

Recovery logic that is never driven through its failure space should be
presumed wrong: the heartbeat requeue, straggler duplication, journal resume
and worker-reconnect paths all exist to handle events (crashes, drops,
corruption) that ordinary test runs never produce.  This module makes those
events *reproducible*: a :class:`FaultPlan` names injection **sites** and the
exact hit at which each fires, so "the second result frame this process sends
is corrupted" is a deterministic test input rather than a prayer to the
scheduler.

Sites and actions
-----------------
Every injection point in the package calls ``maybe_fail("<site>")`` with a
name registered in :data:`FAULT_SITES`; the call returns ``True`` when the
active plan says this hit fires.  What happens then is decided *at the call
site* (raise, ``os._exit``, drop a frame, ...), so the effect of each fault is
visible exactly where it strikes.  Calling :func:`maybe_fail` with an
unregistered name raises -- and the ``repro lint`` rule RL006 enforces the
same registration statically, so no injection point can silently rot.

Plans
-----
A plan is a comma-separated list of specs::

    site:N        fire on the Nth hit of the site (1-based)
    site:N:M      fire on hits N .. N+M-1
    site:N:*      fire on every hit from the Nth on

installed either programmatically (:func:`install_fault_plan`) or through the
``REPRO_FAULTS`` environment variable, which the CLI's ``--inject-faults``
flag sets so pool workers (fork and spawn alike) and distributed worker
subprocesses inherit the plan.  Hit counters are **per process**: each worker
counts its own hits, which keeps the Nth-hit semantics deterministic per
process regardless of how work is scheduled across processes.

The module also hosts the shared recovery knobs: transient-error
classification for the engine's bounded per-point retries
(:func:`is_transient_error`, limit from ``REPRO_POINT_RETRIES``) and the
capped exponential backoff schedule used by worker connect/reconnect loops
(:func:`backoff_delays`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Union

from ..exceptions import ConfigurationError, ModelError

#: Environment variable holding the process-wide fault plan specification.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable overriding the per-point transient retry budget.
POINT_RETRIES_ENV_VAR = "REPRO_POINT_RETRIES"

#: Default number of *re*-tries a transiently failing grid point is granted
#: before it is recorded as a failure (total attempts = retries + 1).
DEFAULT_POINT_RETRIES = 2

#: Registry of every injection site threaded through the package, mapping the
#: site name to what firing it simulates.  ``repro lint`` rule RL006 requires
#: every ``maybe_fail(...)`` call to use a name registered here.
FAULT_SITES: Dict[str, str] = {
    "engine.point_transient": (
        "transient solver exception inside one grid point (exercises the "
        "engine's bounded per-point retries)"
    ),
    "engine.worker_crash_pre_result": (
        "worker process dies (os._exit) after computing a point but before "
        "its outcome is recorded anywhere"
    ),
    "engine.worker_crash_post_result": (
        "worker process dies (os._exit) after its outcome reached the "
        "results plane / outcome list but before the unit completes"
    ),
    "distributed.result_drop": (
        "worker silently drops one result frame (the coordinator must "
        "recover via heartbeat requeue or straggler duplication)"
    ),
    "distributed.result_corrupt": (
        "worker corrupts the bytes of one result frame (the coordinator "
        "must reject the frame and drop the worker, which then reconnects)"
    ),
    "distributed.heartbeat_stall": (
        "worker skips sending one heartbeat frame (enough stalls in a row "
        "make the coordinator presume it dead and requeue its units)"
    ),
    "shm.attach_fail": (
        "shared-memory model plane attach fails (workers must fall back to "
        "prewarming their own skeletons)"
    ),
    "results_plane.attach_fail": (
        "shared-memory results plane attach fails (workers must fall back "
        "to the pickled return path)"
    ),
}


class InjectedFault(ModelError):
    """An artificial failure raised by a fired fault-injection site.

    Subclasses :class:`~repro.exceptions.ModelError` so injected faults flow
    through exactly the handlers that catch the real failures they simulate
    (shm attach fallbacks, per-point failure isolation), while staying
    distinguishable -- and classified as *transient* -- for the retry paths.

    Attributes:
        site: Name of the fault site that fired.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """When one site fires: hits ``nth .. nth+count-1`` (``count=None`` = forever).

    Attributes:
        site: Registered fault-site name.
        nth: 1-based hit index at which the site first fires.
        count: How many consecutive hits fire; ``None`` means every hit from
            ``nth`` on.
    """

    site: str
    nth: int
    count: Optional[int] = 1

    def fires_on(self, hit: int) -> bool:
        """Whether the ``hit``-th occurrence of the site fires."""
        if hit < self.nth:
            return False
        return self.count is None or hit < self.nth + self.count


@dataclass
class FaultPlan:
    """A set of :class:`FaultSpec` entries plus per-process hit counters.

    Counters are mutated under an instance lock so concurrently computing
    threads (a distributed worker with ``capacity > 1``) observe a total
    order of hits.  Plans are process-local by design -- they carry a lock
    and never cross a pickle boundary; subprocesses re-parse ``REPRO_FAULTS``.
    """

    specs: Dict[str, FaultSpec] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    fired: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def hit(self, site: str) -> bool:
        """Count one hit of ``site``; return whether this hit fires."""
        with self._lock:
            count = self.hits.get(site, 0) + 1
            self.hits[site] = count
            spec = self.specs.get(site)
            fires = spec is not None and spec.fires_on(count)
            if fires:
                self.fired[site] = self.fired.get(site, 0) + 1
        return fires

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site ``{"hits": ..., "fired": ...}`` counters of this process."""
        with self._lock:
            sites = set(self.hits) | set(self.specs)
            return {
                site: {"hits": self.hits.get(site, 0), "fired": self.fired.get(site, 0)}
                for site in sorted(sites)
            }


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a ``site:N[,site:N:M,...]`` specification into a :class:`FaultPlan`.

    Raises:
        ConfigurationError: On an unknown site name, a malformed spec, or a
            non-positive ``N``/``M`` -- a typo must fail loudly, never become
            a chaos run that silently injects nothing.
    """
    plan = FaultPlan()
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"fault spec {chunk!r} must be site:N or site:N:M (M may be '*')"
            )
        site = parts[0].strip()
        if site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {site!r} (known: {', '.join(sorted(FAULT_SITES))})"
            )
        if site in plan.specs:
            raise ConfigurationError(f"fault site {site!r} specified twice")
        try:
            nth = int(parts[1])
        except ValueError:
            raise ConfigurationError(f"fault spec {chunk!r}: N must be an integer") from None
        if nth < 1:
            raise ConfigurationError(f"fault spec {chunk!r}: N must be >= 1 (hits are 1-based)")
        count: Optional[int] = 1
        if len(parts) == 3:
            if parts[2].strip() == "*":
                count = None
            else:
                try:
                    count = int(parts[2])
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {chunk!r}: M must be an integer or '*'"
                    ) from None
                if count < 1:
                    raise ConfigurationError(f"fault spec {chunk!r}: M must be >= 1")
        plan.specs[site] = FaultSpec(site=site, nth=nth, count=count)
    return plan


#: Process-wide active plan.  ``_PLAN_LOADED`` distinguishes "no plan" from
#: "REPRO_FAULTS not consulted yet" so env-installed plans work lazily in
#: fork- and spawn-started subprocesses alike.
_ACTIVE_PLAN: Optional[FaultPlan] = None
_PLAN_LOADED = False
_PLAN_LOCK = threading.Lock()


def install_fault_plan(plan: Union[FaultPlan, str, None]) -> Optional[FaultPlan]:
    """Install ``plan`` (a :class:`FaultPlan`, a spec string, or ``None``) process-wide.

    Returns:
        The installed plan (``None`` cleared any active plan).
    """
    global _ACTIVE_PLAN, _PLAN_LOADED
    if isinstance(plan, str):
        plan = parse_fault_plan(plan)
    with _PLAN_LOCK:
        _ACTIVE_PLAN = plan
        _PLAN_LOADED = True
    return plan


def reset_fault_plan() -> None:
    """Clear the active plan and re-arm the lazy ``REPRO_FAULTS`` load (tests)."""
    global _ACTIVE_PLAN, _PLAN_LOADED
    with _PLAN_LOCK:
        _ACTIVE_PLAN = None
        _PLAN_LOADED = False


def active_fault_plan() -> Optional[FaultPlan]:
    """The process's active plan, lazily parsed from ``REPRO_FAULTS`` once."""
    global _ACTIVE_PLAN, _PLAN_LOADED
    if _PLAN_LOADED:
        return _ACTIVE_PLAN
    with _PLAN_LOCK:
        if not _PLAN_LOADED:
            text = os.environ.get(FAULTS_ENV_VAR, "").strip()
            _ACTIVE_PLAN = parse_fault_plan(text) if text else None
            _PLAN_LOADED = True
        return _ACTIVE_PLAN


def maybe_fail(site: str) -> bool:
    """Count one hit of the named site; ``True`` when the active plan fires it.

    The cheap path -- no plan installed and ``REPRO_FAULTS`` unset -- is a
    dictionary lookup plus one attribute read, so production sweeps pay
    nothing for carrying the sites.

    Raises:
        ModelError: If ``site`` is not registered in :data:`FAULT_SITES`
            (defense in depth behind lint rule RL006).
    """
    if site not in FAULT_SITES:
        raise ModelError(
            f"maybe_fail() called with unregistered fault site {site!r}; "
            f"register it in repro.core.faults.FAULT_SITES"
        )
    plan = active_fault_plan()
    if plan is None:
        return False
    return plan.hit(site)


def fault_stats() -> Dict[str, Dict[str, int]]:
    """Hit/fired counters of this process's active plan (empty without one)."""
    plan = active_fault_plan()
    return plan.stats() if plan is not None else {}


def is_transient_error(exc: BaseException) -> bool:
    """Whether ``exc`` warrants a bounded retry of the failing grid point.

    Injected faults and OS-level hiccups (shared-memory blips, connection
    resets) are transient; deterministic model/configuration errors are not
    -- retrying them burns the budget to fail identically.
    """
    if isinstance(exc, InjectedFault):
        return True
    if isinstance(exc, (ConfigurationError, ModelError)):
        return False
    return isinstance(exc, (OSError, ConnectionError))


def point_retry_limit() -> int:
    """Re-tries granted to a transiently failing grid point (env-overridable)."""
    raw = os.environ.get(POINT_RETRIES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_POINT_RETRIES
    try:
        limit = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{POINT_RETRIES_ENV_VAR}={raw!r} must be a non-negative integer"
        ) from None
    if limit < 0:
        raise ConfigurationError(f"{POINT_RETRIES_ENV_VAR} must be >= 0, got {limit}")
    return limit


def backoff_delays(
    *, initial: float = 0.25, factor: float = 2.0, cap: float = 5.0
) -> Iterator[float]:
    """Yield capped exponential backoff delays: ``initial``, ``initial*factor``, ...

    Used by the distributed worker's initial-connect and reconnect loops; the
    cap keeps a long outage from inflating the probe interval past the point
    where a restarted coordinator sits unnoticed.
    """
    delay = initial
    while True:
        yield min(delay, cap)
        delay = min(delay * factor, cap)


__all__: Tuple[str, ...] = (
    "DEFAULT_POINT_RETRIES",
    "FAULTS_ENV_VAR",
    "FAULT_SITES",
    "POINT_RETRIES_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_fault_plan",
    "backoff_delays",
    "fault_stats",
    "install_fault_plan",
    "is_transient_error",
    "maybe_fail",
    "parse_fault_plan",
    "point_retry_limit",
    "reset_fault_plan",
)
