"""Proof of work: the ``(p, 1)``-mining proof system.

A PoW miner can only usefully direct its hashing power at a single block at a
time, so the number of concurrent mining targets is one and the probability of
winning a slot is simply proportional to the hashing-power fraction.
"""

from __future__ import annotations

from .base import ProofChallenge, ProofOutcome, ProofSystem


class ProofOfWork(ProofSystem):
    """Hashcash-style proof of work."""

    @property
    def name(self) -> str:
        """Human-readable proof-system name."""
        return "proof-of-work"

    @property
    def max_concurrent_targets(self) -> float:
        """Blocks a miner can usefully direct its resource at simultaneously."""
        return 1

    def attempt(
        self, challenge: ProofChallenge, resource_fraction: float, success_rate: float
    ) -> ProofOutcome:
        """Attempt the hash lottery for one slot.

        The success probability is ``resource_fraction * success_rate``; the
        proof quality is a uniform draw used only for tie-breaking in tests.
        """
        probability = resource_fraction * success_rate
        if self._bernoulli(probability):
            return ProofOutcome(success=True, quality=float(self._rng.random()))
        return ProofOutcome(success=False)
