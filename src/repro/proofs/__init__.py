"""Efficient proof system abstractions.

The paper's ``(p, k)``-mining model abstracts how blocks are won: ``k = 1``
corresponds to proof of work, finite ``k`` to proof of space-and-time (one VDF
per concurrently extended block) and ``k = infinity`` to proof of stake.  This
subpackage provides small, simulation-oriented models of these proof systems so
the chain substrate can be driven by a concrete lottery, plus a toy VDF.
"""

from .base import ProofSystem, ProofChallenge, ProofOutcome
from .proof_of_work import ProofOfWork
from .proof_of_stake import ProofOfStake
from .proof_of_space_time import ProofOfSpaceTime
from .vdf import VerifiableDelayFunction

__all__ = [
    "ProofSystem",
    "ProofChallenge",
    "ProofOutcome",
    "ProofOfWork",
    "ProofOfStake",
    "ProofOfSpaceTime",
    "VerifiableDelayFunction",
]
