"""Proof of stake: the ``(p, infinity)``-mining proof system.

Producing a PoStake proof is computationally free, so a staker can attempt to
extend arbitrarily many blocks concurrently -- the source of the
nothing-at-stake amplification the paper analyses.
"""

from __future__ import annotations

from .base import ProofChallenge, ProofOutcome, ProofSystem


class ProofOfStake(ProofSystem):
    """Stake-weighted leader election (Ouroboros / post-merge Ethereum style)."""

    @property
    def name(self) -> str:
        """Human-readable proof-system name."""
        return "proof-of-stake"

    @property
    def max_concurrent_targets(self) -> float:
        """Blocks a miner can usefully direct its resource at simultaneously."""
        return float("inf")

    def attempt(
        self, challenge: ProofChallenge, resource_fraction: float, success_rate: float
    ) -> ProofOutcome:
        """Attempt the stake lottery for one slot and one chain tip.

        Each (challenge, staker) pair is an independent lottery with success
        probability ``resource_fraction * success_rate``; the same staker can run
        the lottery for every block it wants to extend.
        """
        probability = resource_fraction * success_rate
        if self._bernoulli(probability):
            return ProofOutcome(success=True, quality=float(self._rng.random()))
        return ProofOutcome(success=False)
