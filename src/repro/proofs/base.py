"""Common interface of the efficient proof system models.

A proof system exposes two things to the mining model:

* ``max_concurrent_targets`` -- how many blocks a miner with the system's
  resource can try to extend at the same time (the ``k`` of ``(p, k)``-mining),
* ``attempt`` -- a lottery that decides whether a proof for a given challenge is
  found by a miner holding a ``resource_fraction`` of the total resource.

The models are deliberately lightweight: they capture the *rate* structure that
matters for selfish mining, not the cryptography.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_probability


@dataclass(frozen=True)
class ProofChallenge:
    """A challenge derived from the tip of a chain.

    Attributes:
        parent_block_id: Identifier of the block the challenge is derived from
            (unpredictable, Bitcoin-like derivation).
        slot: Discrete time slot of the challenge.
    """

    parent_block_id: int
    slot: int


@dataclass(frozen=True)
class ProofOutcome:
    """Result of a proof attempt.

    Attributes:
        success: Whether a valid proof was found.
        quality: Tie-breaking quality of the proof (lower is better), only
            meaningful when ``success`` is true.
    """

    success: bool
    quality: float = float("inf")


class ProofSystem(ABC):
    """Abstract efficient proof system."""

    def __init__(self, rng: Optional[np.random.Generator] = None, seed: int = 0) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable name of the proof system."""

    @property
    @abstractmethod
    def max_concurrent_targets(self) -> float:
        """The ``k`` of ``(p, k)``-mining (may be ``float('inf')``)."""

    @abstractmethod
    def attempt(self, challenge: ProofChallenge, resource_fraction: float, success_rate: float) -> ProofOutcome:
        """Attempt to produce a proof for ``challenge``.

        Args:
            challenge: The challenge derived from the block being extended.
            resource_fraction: The miner's share of the global resource.
            success_rate: Base per-slot success probability of the whole network.
        """

    def _bernoulli(self, probability: float) -> bool:
        probability = check_probability(probability, "probability")
        return bool(self._rng.random() < probability)

    def effective_targets(self, requested: int) -> int:
        """Clamp a requested number of concurrent targets to the system's ``k``."""
        if requested < 0:
            raise ValueError("requested targets must be non-negative")
        maximum = self.max_concurrent_targets
        if maximum == float("inf"):
            return requested
        return min(requested, int(maximum))
