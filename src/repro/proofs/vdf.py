"""A toy verifiable delay function (VDF).

Chia-style proof-of-space-and-time chains require every candidate block to be
finalised by a VDF: a function that takes a prescribed number of sequential
steps to evaluate but is fast to verify.  The model below captures exactly the
two properties the selfish-mining analysis cares about: a VDF instance can only
work on one block at a time (which bounds the adversary's concurrent mining
targets, the ``k`` of ``(p, k)``-mining), and evaluation takes a configurable
number of sequential ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..exceptions import SimulationError


@dataclass
class VerifiableDelayFunction:
    """A single sequential VDF instance.

    Attributes:
        steps_required: Number of sequential ticks needed to finish an evaluation.
    """

    steps_required: int = 1
    _current_input: Optional[int] = field(default=None, repr=False)
    _steps_done: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.steps_required < 1:
            raise ValueError("steps_required must be >= 1")

    @property
    def busy(self) -> bool:
        """Whether an evaluation is currently in progress."""
        return self._current_input is not None

    @property
    def progress(self) -> float:
        """Fraction of the current evaluation that is complete."""
        if not self.busy:
            return 0.0
        return self._steps_done / self.steps_required

    def start(self, challenge_id: int) -> None:
        """Begin evaluating the VDF on ``challenge_id``.

        Raises:
            SimulationError: If the instance is already evaluating another input.
        """
        if self.busy:
            raise SimulationError("VDF instance is already busy; sequentiality violated")
        self._current_input = challenge_id
        self._steps_done = 0

    def tick(self) -> Optional[int]:
        """Advance the evaluation by one sequential step.

        Returns:
            The challenge identifier when the evaluation completes, else ``None``.
        """
        if not self.busy:
            return None
        self._steps_done += 1
        if self._steps_done >= self.steps_required:
            finished = self._current_input
            self._current_input = None
            self._steps_done = 0
            return finished
        return None

    def abort(self) -> None:
        """Abandon the current evaluation (e.g. the target block was orphaned)."""
        self._current_input = None
        self._steps_done = 0

    @staticmethod
    def verify(challenge_id: int, output_id: int) -> bool:
        """Verify an evaluation (trivially correct in the toy model)."""
        return challenge_id == output_id
