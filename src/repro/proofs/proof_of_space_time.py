"""Proof of space and time: the ``(p, k)``-mining proof system with finite ``k``.

A PoST farmer answers space challenges essentially for free but must finish each
candidate block with a VDF evaluation; owning ``k`` VDF instances therefore caps
the number of blocks that can be extended concurrently.  This is the setting the
paper's bounded-fork MDP captures most faithfully.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import check_positive_int
from .base import ProofChallenge, ProofOutcome, ProofSystem
from .vdf import VerifiableDelayFunction


class ProofOfSpaceTime(ProofSystem):
    """Chia-style proof of space and time with a bounded number of VDFs."""

    def __init__(
        self,
        num_vdfs: int = 1,
        vdf_steps: int = 1,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(rng=rng, seed=seed)
        self.num_vdfs = check_positive_int(num_vdfs, "num_vdfs")
        self.vdfs: List[VerifiableDelayFunction] = [
            VerifiableDelayFunction(steps_required=vdf_steps) for _ in range(num_vdfs)
        ]

    @property
    def name(self) -> str:
        """Human-readable proof-system name."""
        return "proof-of-space-time"

    @property
    def max_concurrent_targets(self) -> float:
        """Blocks a miner can usefully direct its resource at simultaneously."""
        return self.num_vdfs

    def available_vdf(self) -> Optional[VerifiableDelayFunction]:
        """Return an idle VDF instance, or ``None`` if all are busy."""
        for vdf in self.vdfs:
            if not vdf.busy:
                return vdf
        return None

    def attempt(
        self, challenge: ProofChallenge, resource_fraction: float, success_rate: float
    ) -> ProofOutcome:
        """Attempt the space lottery and claim a VDF for the winning proof.

        The attempt fails outright when no VDF instance is idle, modelling the
        sequentiality constraint that bounds the adversary's concurrency.
        """
        vdf = self.available_vdf()
        if vdf is None:
            return ProofOutcome(success=False)
        probability = resource_fraction * success_rate
        if not self._bernoulli(probability):
            return ProofOutcome(success=False)
        vdf.start(challenge.parent_block_id)
        # The toy model finishes the VDF immediately; real chains would tick it.
        while vdf.busy:
            vdf.tick()
        return ProofOutcome(success=True, quality=float(self._rng.random()))
