"""Parameter containers for the selfish-mining analysis.

The paper's model is parameterised by five quantities (Section 3.2):

* ``p``      -- relative resource of the adversarial coalition,
* ``gamma``  -- switching probability of honest miners in a tie,
* ``d``      -- attack depth (number of recent main-chain blocks forked on),
* ``f``      -- forking number (private forks per main-chain block),
* ``l``      -- maximal private fork length (finiteness bound).

``ProtocolParams`` carries the first two (properties of the blockchain / network),
``AttackParams`` the last three (properties of the attack), and ``AnalysisConfig``
collects solver choices for the formal analysis procedure (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple, Union

from ._validation import (
    check_positive_float,
    check_positive_int,
    check_probability,
)
from .exceptions import ConfigurationError

#: Names of the attack scenarios shipped with the package, in registry order.
#: They are listed here (rather than discovered by importing the scenario
#: modules) so that :class:`AttackParams` can validate its ``scenario`` field
#: eagerly without pulling the whole :mod:`repro.attacks` package into every
#: import of this bottom-layer module.
BUILTIN_SCENARIO_NAMES: Tuple[str, ...] = ("selfish-forks", "sm-actions")

_KNOWN_SCENARIO_NAMES = set(BUILTIN_SCENARIO_NAMES)


def _register_scenario_name(name: str) -> None:
    """Teach :class:`AttackParams` about a scenario registered at runtime.

    Called by :func:`repro.attacks.registry.register_attack`; not part of the
    public API -- register scenarios through the registry, never directly here.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"scenario name must be a non-empty string, got {name!r}")
    _KNOWN_SCENARIO_NAMES.add(name)


def known_scenario_names() -> Tuple[str, ...]:
    """Every scenario name :class:`AttackParams` currently accepts.

    Built-in scenarios first (in registry order), then runtime registrations in
    sorted order.
    """
    extras = sorted(_KNOWN_SCENARIO_NAMES - set(BUILTIN_SCENARIO_NAMES))
    return BUILTIN_SCENARIO_NAMES + tuple(extras)


@dataclass(frozen=True)
class ProtocolParams:
    """System-model parameters of the blockchain protocol.

    Attributes:
        p: Fraction of the total mining resource owned by the adversary.
        gamma: Probability that honest miners switch to a just-revealed adversarial
            chain of equal length ("switching probability" in the paper).
    """

    p: float = 0.3
    gamma: float = 0.5

    def __post_init__(self) -> None:
        check_probability(self.p, "p")
        check_probability(self.gamma, "gamma")

    def with_p(self, p: float) -> "ProtocolParams":
        """Return a copy with a different adversarial resource fraction."""
        return replace(self, p=p)

    def with_gamma(self, gamma: float) -> "ProtocolParams":
        """Return a copy with a different switching probability."""
        return replace(self, gamma=gamma)

    def honest_fraction(self) -> float:
        """Fraction of the resource owned by honest miners."""
        return 1.0 - self.p

    def to_dict(self) -> Dict[str, float]:
        """Serialise to a plain dictionary (for CSV / JSON reporting)."""
        return {"p": self.p, "gamma": self.gamma}


@dataclass(frozen=True)
class AttackParams:
    """Parameters of one attack-scenario instance.

    The integer parameters are interpreted by the scenario named in
    ``scenario`` (see :mod:`repro.attacks.registry`).  For the default
    ``"selfish-forks"`` scenario they are the paper's ``(d, f, l)``; the
    ``"sm-actions"`` scenario uses only ``max_fork_length`` as its race
    truncation bound and keeps ``depth = forks = 1``.

    Attributes:
        depth: Attack depth ``d`` -- the adversary forks on the last ``d`` blocks
            of the main chain.
        forks: Forking number ``f`` -- number of private forks grown per block.
        max_fork_length: Maximal fork length ``l`` -- private forks longer than
            this are truncated, keeping the MDP finite.
        scenario: Name of the registered attack scenario these parameters belong
            to.  Unknown names are rejected at construction time.
        variant: Scenario-specific reward-regime selector (e.g. ``"overpaying"``
            for ``sm-actions``); the empty string selects the scenario default.
            Validated by the scenario when its model is built.
    """

    depth: int = 2
    forks: int = 1
    max_fork_length: int = 4
    scenario: str = "selfish-forks"
    variant: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.depth, "depth")
        check_positive_int(self.forks, "forks")
        check_positive_int(self.max_fork_length, "max_fork_length")
        if self.scenario not in _KNOWN_SCENARIO_NAMES:
            raise ConfigurationError(
                f"scenario must be one of {known_scenario_names()}, got "
                f"{self.scenario!r} (register new scenarios with "
                f"repro.attacks.registry.register_attack)"
            )
        if not isinstance(self.variant, str):
            raise ConfigurationError(f"variant must be a string, got {self.variant!r}")

    @property
    def d(self) -> int:
        """Alias matching the paper's notation."""
        return self.depth

    @property
    def f(self) -> int:
        """Alias matching the paper's notation."""
        return self.forks

    @property
    def l(self) -> int:  # noqa: E743 - matches the paper's symbol
        """Alias matching the paper's notation."""
        return self.max_fork_length

    def max_mining_targets(self) -> int:
        """Upper bound on the number of blocks the adversary mines on at once."""
        return self.depth * self.forks

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary (for CSV / JSON / wire reporting)."""
        return {
            "depth": self.depth,
            "forks": self.forks,
            "max_fork_length": self.max_fork_length,
            "scenario": self.scenario,
            "variant": self.variant,
        }


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of the formal analysis procedure (Algorithm 1).

    Attributes:
        epsilon: Precision of the binary search over the reward parameter beta.
        solver: Mean-payoff solver backend; one of ``"policy_iteration"``,
            ``"value_iteration"``, ``"linear_program"`` or ``"portfolio"``
            (policy iteration raced against value iteration per probe, first
            finisher wins).
        solver_tolerance: Convergence tolerance used inside the solver.
        max_solver_iterations: Iteration budget for iterative solvers.
        evaluate_strategy: If true, the extracted strategy is additionally
            evaluated exactly (stationary-distribution ratio), which yields the
            exact ERRev it guarantees.
        warm_start: If true (default), each binary-search iteration warm-starts
            the mean-payoff solver with the strategy and bias vector of the
            previous iteration, and externally supplied warm starts (e.g. from
            an adjacent sweep grid point) are honoured.  Setting this to false
            forces every solve to start cold, which is useful for ablations.
        batch_probes: Number of beta probes evaluated per binary-search round
            (1 = classic bisection).  With ``k > 1`` probes the round stacks
            ``k`` reward vectors against the shared model structure and solves
            them in one vectorised batched call, shrinking the interval by a
            factor of ``k + 1`` per round.  The string ``"auto"`` enables
            adaptive scheduling: Algorithm 1 fits a per-round cost model to the
            observed solve times and picks the probe count maximising interval
            shrinkage per second, round by round (the certified bounds are
            unchanged -- only the probe placement adapts).
        portfolio_deadline: Seconds the ``"portfolio"`` solver waits for the
            first backend to finish before blocking unconditionally; ignored by
            the other backends.
    """

    epsilon: float = 1e-3
    solver: str = "policy_iteration"
    solver_tolerance: float = 1e-9
    max_solver_iterations: int = 100_000
    evaluate_strategy: bool = True
    warm_start: bool = True
    batch_probes: Union[int, str] = 1
    portfolio_deadline: float = 30.0

    _VALID_SOLVERS = ("policy_iteration", "value_iteration", "linear_program", "portfolio")

    def __post_init__(self) -> None:
        check_positive_float(self.epsilon, "epsilon")
        check_positive_float(self.solver_tolerance, "solver_tolerance")
        check_positive_int(self.max_solver_iterations, "max_solver_iterations")
        if isinstance(self.batch_probes, str):
            if self.batch_probes != "auto":
                raise ValueError(
                    f'batch_probes must be a positive integer or "auto", '
                    f"got {self.batch_probes!r}"
                )
        else:
            check_positive_int(self.batch_probes, "batch_probes")
        check_positive_float(self.portfolio_deadline, "portfolio_deadline")
        if self.solver not in self._VALID_SOLVERS:
            raise ValueError(
                f"solver must be one of {self._VALID_SOLVERS}, got {self.solver!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dictionary (for reporting)."""
        return {
            "epsilon": self.epsilon,
            "solver": self.solver,
            "solver_tolerance": self.solver_tolerance,
            "max_solver_iterations": self.max_solver_iterations,
            "evaluate_strategy": self.evaluate_strategy,
            "warm_start": self.warm_start,
            "batch_probes": self.batch_probes,
            "portfolio_deadline": self.portfolio_deadline,
        }


#: Attack configurations evaluated in the paper (Table 1 / Figure 2), l = 4.
PAPER_ATTACK_CONFIGS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=2, max_fork_length=4),
    AttackParams(depth=3, forks=2, max_fork_length=4),
    AttackParams(depth=4, forks=2, max_fork_length=4),
)

#: Switching probabilities evaluated in Figure 2.
PAPER_GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0)
