"""Explicit-state Markov decision process library.

This subpackage is the substrate that replaces the Storm probabilistic model
checker used by the paper: a from-scratch finite MDP container together with
mean-payoff solvers (relative value iteration, Howard policy iteration and a
linear-programming formulation), discounted value iteration, induced-Markov-chain
stationary analysis and structural (graph) analysis.
"""

from .cancellation import CancellationToken
from .model import MDP, MDPBuilder, TransitionRow
from .strategy import Strategy
from .markov_chain import MarkovChain, induced_markov_chain
from .value_iteration import (
    RelativeValueIterationResult,
    batched_relative_value_iteration,
    relative_value_iteration,
)
from .policy_iteration import PolicyIterationResult, batched_policy_iteration, policy_iteration
from .linear_program import LinearProgramResult, solve_mean_payoff_lp
from .discounted import DiscountedValueIterationResult, discounted_value_iteration
from .mean_payoff import (
    SOLVER_BACKENDS,
    MeanPayoffSolution,
    solve_mean_payoff,
    solve_mean_payoff_batch,
)
from .portfolio import PORTFOLIO_BACKENDS, PortfolioHistory, SolverPortfolio
from .reachability import end_components, is_unichain, reachable_states
from .validation import validate_mdp

__all__ = [
    "CancellationToken",
    "MDP",
    "MDPBuilder",
    "TransitionRow",
    "Strategy",
    "MarkovChain",
    "induced_markov_chain",
    "RelativeValueIterationResult",
    "batched_relative_value_iteration",
    "relative_value_iteration",
    "PolicyIterationResult",
    "batched_policy_iteration",
    "policy_iteration",
    "LinearProgramResult",
    "solve_mean_payoff_lp",
    "DiscountedValueIterationResult",
    "discounted_value_iteration",
    "SOLVER_BACKENDS",
    "MeanPayoffSolution",
    "solve_mean_payoff",
    "solve_mean_payoff_batch",
    "PORTFOLIO_BACKENDS",
    "PortfolioHistory",
    "SolverPortfolio",
    "end_components",
    "is_unichain",
    "reachable_states",
    "validate_mdp",
]
