"""Well-formedness checks for built MDPs.

These checks are cheap enough to run inside the test suite on every constructed
selfish-mining model: probability distributions sum to one, offsets are
consistent, every state has at least one action, and all states are reachable
from the initial state (unreachable states would silently inflate the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..exceptions import ModelError
from .model import MDP
from .reachability import reachable_states


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_mdp`.

    Attributes:
        num_states: Number of states in the model.
        num_rows: Number of state-action rows.
        num_transitions: Number of transitions.
        num_unreachable: Number of states not reachable from the initial state.
        problems: Human-readable list of detected problems (empty when valid).
    """

    num_states: int
    num_rows: int
    num_transitions: int
    num_unreachable: int
    problems: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether no problems were detected."""
        return not self.problems


def validate_mdp(
    mdp: MDP,
    *,
    require_reachable: bool = True,
    probability_tolerance: float = 1e-8,
    raise_on_error: bool = True,
) -> ValidationReport:
    """Validate structural invariants of an MDP.

    Args:
        mdp: The model to validate.
        require_reachable: If true, unreachable states are reported as problems.
        probability_tolerance: Allowed deviation of row probability sums from 1.
        raise_on_error: If true, raise :class:`~repro.exceptions.ModelError` when
            any problem is found; otherwise return the report.
    """
    problems: List[str] = []

    if mdp.num_states == 0:
        problems.append("model has no states")
    if not 0 <= mdp.initial_state < max(mdp.num_states, 1):
        problems.append(f"initial state {mdp.initial_state} out of range")

    # Offsets must be monotone and cover all rows / transitions.
    if mdp.state_row_offsets[0] != 0 or mdp.state_row_offsets[-1] != mdp.num_rows:
        problems.append("state_row_offsets do not cover all rows")
    if np.any(np.diff(mdp.state_row_offsets) < 1):
        empty = int(np.nonzero(np.diff(mdp.state_row_offsets) < 1)[0][0])
        problems.append(f"state {empty} has no actions")
    if mdp.row_trans_offsets[0] != 0 or mdp.row_trans_offsets[-1] != mdp.num_transitions:
        problems.append("row_trans_offsets do not cover all transitions")
    if np.any(np.diff(mdp.row_trans_offsets) < 1):
        empty_row = int(np.nonzero(np.diff(mdp.row_trans_offsets) < 1)[0][0])
        problems.append(f"row {empty_row} has no transitions")

    # Probabilities must be valid and sum to one per row.
    if np.any(mdp.trans_prob < 0) or np.any(mdp.trans_prob > 1 + probability_tolerance):
        problems.append("transition probabilities outside [0, 1]")
    if mdp.num_rows:
        row_sums = np.add.reduceat(mdp.trans_prob, mdp.row_trans_offsets[:-1])
        worst = float(np.max(np.abs(row_sums - 1.0))) if row_sums.size else 0.0
        if worst > probability_tolerance:
            problems.append(f"row probability sums deviate from 1 by up to {worst:.2e}")

    # Successor indices must be in range.
    if mdp.num_transitions and (
        np.any(mdp.trans_succ < 0) or np.any(mdp.trans_succ >= mdp.num_states)
    ):
        problems.append("transition successor indices out of range")

    num_unreachable = 0
    if require_reachable and mdp.num_states:
        reachable = reachable_states(mdp)
        num_unreachable = mdp.num_states - len(reachable)
        if num_unreachable:
            problems.append(f"{num_unreachable} states are unreachable from the initial state")

    report = ValidationReport(
        num_states=mdp.num_states,
        num_rows=mdp.num_rows,
        num_transitions=mdp.num_transitions,
        num_unreachable=num_unreachable,
        problems=problems,
    )
    if problems and raise_on_error:
        raise ModelError("; ".join(problems))
    return report
