"""Sparse explicit-state MDP container and builder.

The model stores, for every state, a contiguous block of *state-action rows*;
every row stores a contiguous block of transitions (successor, probability,
reward vector).  Rewards are vectors so that several reward structures can be
attached to the same model -- the selfish-mining analysis attaches the pair
``(r_A, r_H)`` (adversarial / honest blocks finalised by the transition) and
combines them linearly into the paper's ``r_beta`` without rebuilding the model.

All solver-facing data lives in flat numpy arrays so that value iteration can be
fully vectorised with ``numpy.add.reduceat`` / ``numpy.maximum.reduceat``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError

#: Probabilities within one state-action row must sum to one up to this tolerance.
PROBABILITY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TransitionRow:
    """A single state-action row: the distribution over successors and rewards.

    Attributes:
        state: Index of the owning state.
        action: Hashable action label.
        successors: Successor state indices.
        probabilities: Transition probabilities (same length as ``successors``).
        rewards: Reward vectors, one per successor, shape ``(len(successors), k)``.
    """

    state: int
    action: Hashable
    successors: Tuple[int, ...]
    probabilities: Tuple[float, ...]
    rewards: Tuple[Tuple[float, ...], ...]


class MDP:
    """A finite Markov decision process in sparse explicit form.

    Instances are created through :class:`MDPBuilder`; the attributes below are
    read-only flat arrays shared by every solver in :mod:`repro.mdp`.

    Attributes:
        num_states: Number of states.
        num_rows: Number of state-action rows.
        num_reward_components: Dimension of the per-transition reward vectors.
        initial_state: Index of the initial state.
        row_state: For each row, the owning state index (``int64`` array).
        state_row_offsets: CSR-style offsets of shape ``(num_states + 1,)`` such
            that the rows of state ``s`` are ``row_state_offsets[s]:row_state_offsets[s+1]``.
        row_trans_offsets: CSR-style offsets into the transition arrays, shape
            ``(num_rows + 1,)``.
        trans_succ: Successor state per transition.
        trans_prob: Probability per transition.
        trans_reward: Reward vectors per transition, shape ``(num_transitions, k)``.
        row_actions: Action label per row (python list).
        state_labels: Optional hashable label per state (python list).
    """

    def __init__(
        self,
        *,
        num_states: int,
        initial_state: int,
        row_state: np.ndarray,
        state_row_offsets: np.ndarray,
        row_trans_offsets: np.ndarray,
        trans_succ: np.ndarray,
        trans_prob: np.ndarray,
        trans_reward: np.ndarray,
        row_actions: List[Hashable],
        state_labels: Optional[List[Hashable]] = None,
    ) -> None:
        self.num_states = int(num_states)
        self.initial_state = int(initial_state)
        self.row_state = row_state
        self.state_row_offsets = state_row_offsets
        self.row_trans_offsets = row_trans_offsets
        self.trans_succ = trans_succ
        self.trans_prob = trans_prob
        self.trans_reward = trans_reward
        self.row_actions = row_actions
        self.state_labels = state_labels
        self.num_rows = int(row_state.shape[0])
        self.num_transitions = int(trans_succ.shape[0])
        self.num_reward_components = int(trans_reward.shape[1]) if trans_reward.size else (
            int(trans_reward.shape[1]) if trans_reward.ndim == 2 else 1
        )
        self._label_to_state: Optional[Dict[Hashable, int]] = None

    # ------------------------------------------------------------------ queries

    def actions_of(self, state: int) -> List[Hashable]:
        """Return the action labels available in ``state``."""
        start, end = self.state_row_offsets[state], self.state_row_offsets[state + 1]
        return [self.row_actions[row] for row in range(start, end)]

    def rows_of(self, state: int) -> range:
        """Return the row indices belonging to ``state``."""
        return range(int(self.state_row_offsets[state]), int(self.state_row_offsets[state + 1]))

    def num_actions_of(self, state: int) -> int:
        """Return the number of actions available in ``state``."""
        return int(self.state_row_offsets[state + 1] - self.state_row_offsets[state])

    def row_index(self, state: int, action: Hashable) -> int:
        """Return the row index of ``(state, action)``.

        Raises:
            ModelError: If ``action`` is not available in ``state``.
        """
        for row in self.rows_of(state):
            if self.row_actions[row] == action:
                return row
        raise ModelError(f"action {action!r} not available in state {state}")

    def transitions_of_row(self, row: int) -> List[Tuple[int, float, np.ndarray]]:
        """Return ``(successor, probability, reward_vector)`` triples of a row."""
        start, end = self.row_trans_offsets[row], self.row_trans_offsets[row + 1]
        return [
            (int(self.trans_succ[t]), float(self.trans_prob[t]), self.trans_reward[t])
            for t in range(start, end)
        ]

    def row(self, row: int) -> TransitionRow:
        """Return a :class:`TransitionRow` view of row ``row``."""
        triples = self.transitions_of_row(row)
        return TransitionRow(
            state=int(self.row_state[row]),
            action=self.row_actions[row],
            successors=tuple(succ for succ, _, _ in triples),
            probabilities=tuple(prob for _, prob, _ in triples),
            rewards=tuple(tuple(float(x) for x in reward) for _, _, reward in triples),
        )

    def state_of_label(self, label: Hashable) -> int:
        """Return the state index carrying ``label``.

        Raises:
            ModelError: If the model has no labels or the label is unknown.
        """
        if self.state_labels is None:
            raise ModelError("this MDP was built without state labels")
        if self._label_to_state is None:
            self._label_to_state = {lbl: idx for idx, lbl in enumerate(self.state_labels)}
        try:
            return self._label_to_state[label]
        except KeyError as exc:
            raise ModelError(f"unknown state label {label!r}") from exc

    # --------------------------------------------------------------- reward math

    def expected_row_rewards(self, weights: Sequence[float]) -> np.ndarray:
        """Return the expected immediate reward of every row under ``weights``.

        The scalar reward of a transition is the dot product of its reward vector
        with ``weights``; the expectation is taken over the row's successor
        distribution.
        """
        weights_arr = np.asarray(weights, dtype=float)
        if weights_arr.shape != (self.num_reward_components,):
            raise ModelError(
                f"expected {self.num_reward_components} reward weights, got {weights_arr.shape}"
            )
        scalar = self.trans_reward @ weights_arr
        contributions = scalar * self.trans_prob
        return np.add.reduceat(contributions, self.row_trans_offsets[:-1]) if self.num_rows else np.zeros(0)

    def expected_row_reward_components(self) -> np.ndarray:
        """Return the expected reward vector of every row, shape ``(num_rows, k)``."""
        weighted = self.trans_reward * self.trans_prob[:, None]
        out = np.zeros((self.num_rows, self.num_reward_components))
        if self.num_rows:
            out = np.add.reduceat(weighted, self.row_trans_offsets[:-1], axis=0)
        return out

    # ------------------------------------------------------------------ utilities

    def uniform_random_row_choice(self) -> np.ndarray:
        """Return a policy choosing the first row of every state (deterministic)."""
        return self.state_row_offsets[:-1].astype(np.int64).copy()

    def max_reward_magnitude(self) -> float:
        """Return ``max |r|`` over all transition reward entries (0 for empty models)."""
        if self.trans_reward.size == 0:
            return 0.0
        return float(np.max(np.abs(self.trans_reward)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MDP(states={self.num_states}, rows={self.num_rows}, "
            f"transitions={self.num_transitions}, rewards={self.num_reward_components})"
        )


class MDPBuilder:
    """Incremental builder for :class:`MDP` instances.

    States are identified by hashable labels; indices are assigned on first use.
    Actions are added per state with an explicit successor distribution.

    Example:
        >>> builder = MDPBuilder(num_reward_components=1)
        >>> s = builder.add_state("s")
        >>> builder.add_action("s", "loop", [("s", 1.0, (1.0,))])
        >>> mdp = builder.build(initial_state="s")
        >>> mdp.num_states
        1
    """

    def __init__(self, num_reward_components: int = 1) -> None:
        if num_reward_components < 1:
            raise ModelError("num_reward_components must be >= 1")
        self.num_reward_components = int(num_reward_components)
        self._state_ids: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        # per-state list of (action_label, [(succ_label, prob, reward_vec), ...])
        self._actions: List[List[Tuple[Hashable, List[Tuple[Hashable, float, Tuple[float, ...]]]]]] = []

    # ------------------------------------------------------------------- states

    def add_state(self, label: Hashable) -> int:
        """Register ``label`` as a state (idempotent) and return its index."""
        if label in self._state_ids:
            return self._state_ids[label]
        index = len(self._labels)
        self._state_ids[label] = index
        self._labels.append(label)
        self._actions.append([])
        return index

    def state_index(self, label: Hashable) -> int:
        """Return the index of an already-registered state label."""
        try:
            return self._state_ids[label]
        except KeyError as exc:
            raise ModelError(f"unknown state label {label!r}") from exc

    def has_state(self, label: Hashable) -> bool:
        """Return whether ``label`` has been registered."""
        return label in self._state_ids

    @property
    def num_states(self) -> int:
        """Number of states registered so far."""
        return len(self._labels)

    # ------------------------------------------------------------------ actions

    def add_action(
        self,
        state_label: Hashable,
        action: Hashable,
        transitions: Iterable[Tuple[Hashable, float, Sequence[float]]],
    ) -> None:
        """Add an action to a state.

        Args:
            state_label: Label of the owning state (registered automatically).
            action: Hashable action label, unique within the state.
            transitions: Iterable of ``(successor_label, probability, reward_vector)``;
                successor states are registered automatically.

        Raises:
            ModelError: If the distribution is empty, contains invalid
                probabilities, does not sum to one, or has a reward vector of the
                wrong length, or if the action label is duplicated in the state.
        """
        state_index = self.add_state(state_label)
        stored: List[Tuple[Hashable, float, Tuple[float, ...]]] = []
        total = 0.0
        for succ_label, prob, reward in transitions:
            prob = float(prob)
            if prob < -PROBABILITY_TOLERANCE:
                raise ModelError(f"negative probability {prob} in ({state_label!r}, {action!r})")
            if prob <= 0.0:
                continue
            reward_tuple = tuple(float(x) for x in reward)
            if len(reward_tuple) != self.num_reward_components:
                raise ModelError(
                    f"reward vector of length {len(reward_tuple)} does not match "
                    f"num_reward_components={self.num_reward_components}"
                )
            self.add_state(succ_label)
            stored.append((succ_label, prob, reward_tuple))
            total += prob
        if not stored:
            raise ModelError(f"action {action!r} of state {state_label!r} has no transitions")
        if abs(total - 1.0) > 1e-6:
            raise ModelError(
                f"probabilities of ({state_label!r}, {action!r}) sum to {total}, expected 1"
            )
        existing = self._actions[state_index]
        if any(existing_action == action for existing_action, _ in existing):
            raise ModelError(f"duplicate action {action!r} in state {state_label!r}")
        existing.append((action, stored))

    def has_action(self, state_label: Hashable, action: Hashable) -> bool:
        """Return whether ``(state_label, action)`` has already been added."""
        if state_label not in self._state_ids:
            return False
        rows = self._actions[self._state_ids[state_label]]
        return any(existing_action == action for existing_action, _ in rows)

    def num_actions_of(self, state_label: Hashable) -> int:
        """Return the number of actions added to ``state_label`` so far."""
        return len(self._actions[self.state_index(state_label)])

    # -------------------------------------------------------------------- build

    def build(self, initial_state: Hashable) -> MDP:
        """Freeze the builder into an immutable :class:`MDP`.

        Raises:
            ModelError: If any state has no actions (absorbing states must be
                given an explicit self-loop) or the initial state is unknown.
        """
        if initial_state not in self._state_ids:
            raise ModelError(f"initial state {initial_state!r} was never registered")
        for label, index in self._state_ids.items():
            if not self._actions[index]:
                raise ModelError(f"state {label!r} has no actions; add an explicit self-loop")

        row_state: List[int] = []
        row_actions: List[Hashable] = []
        state_row_offsets = np.zeros(self.num_states + 1, dtype=np.int64)
        trans_succ: List[int] = []
        trans_prob: List[float] = []
        trans_reward: List[Tuple[float, ...]] = []
        row_trans_offsets: List[int] = [0]

        for state_index in range(self.num_states):
            for action, transitions in self._actions[state_index]:
                row_state.append(state_index)
                row_actions.append(action)
                # Renormalise to wash out floating-point drift in the inputs.
                total = sum(prob for _, prob, _ in transitions)
                for succ_label, prob, reward in transitions:
                    trans_succ.append(self._state_ids[succ_label])
                    trans_prob.append(prob / total)
                    trans_reward.append(reward)
                row_trans_offsets.append(len(trans_succ))
            state_row_offsets[state_index + 1] = len(row_state)

        return MDP(
            num_states=self.num_states,
            initial_state=self._state_ids[initial_state],
            row_state=np.asarray(row_state, dtype=np.int64),
            state_row_offsets=state_row_offsets,
            row_trans_offsets=np.asarray(row_trans_offsets, dtype=np.int64),
            trans_succ=np.asarray(trans_succ, dtype=np.int64),
            trans_prob=np.asarray(trans_prob, dtype=float),
            trans_reward=np.asarray(trans_reward, dtype=float).reshape(
                len(trans_reward), self.num_reward_components
            ),
            row_actions=row_actions,
            state_labels=list(self._labels),
        )
