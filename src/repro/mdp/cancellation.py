"""Cooperative cancellation for iterative mean-payoff solvers.

The iterative backends (relative value iteration, Howard policy iteration)
cannot be killed mid-solve -- they run numpy kernels on shared state -- but
they *can* stop cleanly between iterations.  A :class:`CancellationToken` is
the one-way signal for that: the owner (e.g. the solver portfolio, once a rival
backend has won the race) calls :meth:`~CancellationToken.cancel`, and the
solver raises :class:`~repro.exceptions.SolverCancelled` at its next iteration
boundary instead of burning the rest of its iteration budget.

Tokens are thread-safe (a :class:`threading.Event` underneath), cheap to poll
once per iteration, and never reset: a cancelled token stays cancelled.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..exceptions import SolverCancelled


class CancellationToken:
    """A one-way, thread-safe stop signal polled at solver iteration boundaries."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; idempotent and irreversible."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def raise_if_cancelled(self, *, solver: str, iterations: int) -> None:
        """Raise :class:`~repro.exceptions.SolverCancelled` if cancellation was requested.

        Args:
            solver: Human-readable name of the solver checking the token.
            iterations: Iterations the solver completed so far; recorded on the
                exception so the canceller can account for the work saved.
        """
        if self._event.is_set():
            raise SolverCancelled(
                f"{solver} cancelled cooperatively after {iterations} iterations",
                iterations=iterations,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self.cancelled})"


def check_cancelled(
    token: Optional[CancellationToken], *, solver: str, iterations: int
) -> None:
    """Poll an optional token: no-op for ``None``, raise when cancelled."""
    if token is not None:
        token.raise_if_cancelled(solver=solver, iterations=iterations)
