"""Cooperative cancellation for iterative mean-payoff solvers.

The iterative backends (relative value iteration, Howard policy iteration)
cannot be killed mid-solve -- they run numpy kernels on shared state -- but
they *can* stop cleanly between iterations.  A :class:`CancellationToken` is
the one-way signal for that: the owner (e.g. the solver portfolio, once a rival
backend has won the race) calls :meth:`~CancellationToken.cancel`, and the
solver raises :class:`~repro.exceptions.SolverCancelled` at its next iteration
boundary instead of burning the rest of its iteration budget.

Tokens are thread-safe (a :class:`threading.Event` underneath), cheap to poll
once per iteration, and never reset: a cancelled token stays cancelled.

Tokens can be *linked*: a token constructed with ``parent=other`` observes its
parent's cancellation as its own, so cancelling the parent stops every child at
its next iteration boundary.  The solver portfolio uses this to link an
external stop signal (e.g. a coordinator shutdown) into the per-backend tokens
of a running race: cancelling the external token aborts both racing backends
mid-solve instead of only being honoured before the race starts.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..exceptions import SolverCancelled


class CancellationToken:
    """A one-way, thread-safe stop signal polled at solver iteration boundaries.

    Args:
        parent: Optional token whose cancellation this token inherits: a child
            reports :attr:`cancelled` as soon as either itself *or* its parent
            is cancelled.  Cancelling a child never cancels the parent (or any
            sibling linked to the same parent).
    """

    __slots__ = ("_event", "_parent")

    def __init__(self, parent: Optional["CancellationToken"] = None) -> None:
        self._event = threading.Event()
        self._parent = parent

    def cancel(self) -> None:
        """Request cancellation; idempotent and irreversible."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested (here or on a linked parent)."""
        if self._event.is_set():
            return True
        return self._parent is not None and self._parent.cancelled

    def raise_if_cancelled(self, *, solver: str, iterations: int) -> None:
        """Raise :class:`~repro.exceptions.SolverCancelled` if cancellation was requested.

        Args:
            solver: Human-readable name of the solver checking the token.
            iterations: Iterations the solver completed so far; recorded on the
                exception so the canceller can account for the work saved.
        """
        if self.cancelled:
            raise SolverCancelled(
                f"{solver} cancelled cooperatively after {iterations} iterations",
                iterations=iterations,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self.cancelled})"


def check_cancelled(
    token: Optional[CancellationToken], *, solver: str, iterations: int
) -> None:
    """Poll an optional token: no-op for ``None``, raise when cancelled."""
    if token is not None:
        token.raise_if_cancelled(solver=solver, iterations=iterations)
