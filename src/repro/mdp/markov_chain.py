"""Markov chains induced by fixing a positional strategy in an MDP.

The formal analysis needs two quantities of the induced chain: the stationary
distribution (to evaluate the exact expected relative revenue of a strategy)
and the gain/bias pair (for policy evaluation inside Howard policy iteration).
Both are computed with sparse linear algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..exceptions import ModelError, SolverError
from .model import MDP
from .strategy import Strategy


@dataclass
class MarkovChain:
    """A finite Markov chain with per-transition reward vectors.

    Attributes:
        transition_matrix: Sparse ``(n, n)`` row-stochastic matrix.
        expected_rewards: Dense ``(n, k)`` matrix of expected one-step reward
            vectors per state.
        initial_state: Index of the initial state.
    """

    transition_matrix: sp.csr_matrix
    expected_rewards: np.ndarray
    initial_state: int = 0

    @property
    def num_states(self) -> int:
        """Number of states of the chain."""
        return self.transition_matrix.shape[0]

    # ----------------------------------------------------------------- analysis

    def validate(self, tolerance: float = 1e-8) -> None:
        """Check that every row of the transition matrix sums to one."""
        sums = np.asarray(self.transition_matrix.sum(axis=1)).ravel()
        if not np.allclose(sums, 1.0, atol=tolerance):
            worst = int(np.argmax(np.abs(sums - 1.0)))
            raise ModelError(
                f"row {worst} of the Markov chain sums to {sums[worst]}, expected 1"
            )

    def stationary_distribution(self, tolerance: float = 1e-12) -> np.ndarray:
        """Compute a stationary distribution ``pi`` with ``pi P = pi``.

        The chain is assumed to be unichain (a single recurrent class, possibly
        plus transient states), which holds for every strategy of the paper's
        selfish-mining MDP.  The linear system ``(P^T - I) pi = 0`` with the
        normalisation ``sum(pi) = 1`` is solved directly; for unichain models the
        solution is unique.

        Raises:
            SolverError: If the linear solve fails or produces an invalid
                distribution.
        """
        n = self.num_states
        if n == 1:
            return np.ones(1)
        # Build (P^T - I) and replace the last equation with the normalisation.
        matrix = (self.transition_matrix.T - sp.identity(n, format="csr")).tolil()
        matrix[n - 1, :] = np.ones(n)
        rhs = np.zeros(n)
        rhs[n - 1] = 1.0
        try:
            pi = spla.spsolve(matrix.tocsc(), rhs)
        except Exception as exc:  # pragma: no cover - scipy failure path
            raise SolverError(f"stationary distribution solve failed: {exc}") from exc
        pi = np.asarray(pi, dtype=float)
        pi[np.abs(pi) < tolerance] = 0.0
        if np.any(pi < -1e-6):
            raise SolverError("stationary distribution has negative entries; chain may be multichain")
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise SolverError("stationary distribution sums to zero")
        return pi / total

    def long_run_reward(self, weights: Optional[Sequence[float]] = None) -> np.ndarray:
        """Return the long-run average reward vector (or scalar if weighted).

        Args:
            weights: Optional reward-component weights.  If omitted, the full
                vector of per-component long-run averages is returned.
        """
        pi = self.stationary_distribution()
        averages = pi @ self.expected_rewards
        if weights is None:
            return averages
        return np.asarray([float(averages @ np.asarray(weights, dtype=float))])

    def gain_and_bias(
        self, weights: Sequence[float], reference_state: int = 0
    ) -> Tuple[float, np.ndarray]:
        """Solve the unichain Poisson equation ``h + g = r + P h``, ``h[ref] = 0``.

        Returns:
            The scalar gain ``g`` and the bias vector ``h``.
        """
        n = self.num_states
        rewards = self.expected_rewards @ np.asarray(weights, dtype=float)
        # Unknowns: h[0..n-1] with h[reference_state] eliminated, plus g.
        # Equation per state s: h[s] - sum_t P[s,t] h[t] + g = r[s].
        identity = sp.identity(n, format="csr")
        a_matrix = (identity - self.transition_matrix).tolil()
        # Append the gain column and the normalisation h[ref] = 0.
        gain_column = np.ones((n, 1))
        top = sp.hstack([a_matrix.tocsr(), sp.csr_matrix(gain_column)], format="csr")
        normalisation = sp.lil_matrix((1, n + 1))
        normalisation[0, reference_state] = 1.0
        full = sp.vstack([top, normalisation.tocsr()], format="csc")
        rhs = np.concatenate([rewards, [0.0]])
        try:
            solution = spla.spsolve(full, rhs)
            if not np.all(np.isfinite(solution)):
                raise SolverError("singular Poisson system")
        except Exception:
            # Unichain models with transient structure can make the square system
            # ill-conditioned; fall back to a least-squares solve.
            try:
                solution = spla.lsqr(full, rhs, atol=1e-12, btol=1e-12)[0]
            except Exception as exc:  # pragma: no cover - scipy failure path
                raise SolverError(f"gain/bias solve failed: {exc}") from exc
        h = np.asarray(solution[:n], dtype=float)
        g = float(solution[n])
        return g, h

    def occupancy_ratio(self, numerator_weights: Sequence[float], denominator_weights: Sequence[float]) -> float:
        """Return the ratio of two long-run average rewards.

        This is the quantity the paper calls the expected relative revenue when
        the numerator counts adversarial blocks and the denominator all blocks.

        Raises:
            SolverError: If the denominator's long-run average is not positive.
        """
        averages = self.long_run_reward()
        numerator = float(averages @ np.asarray(numerator_weights, dtype=float))
        denominator = float(averages @ np.asarray(denominator_weights, dtype=float))
        if denominator <= 0:
            raise SolverError(
                f"long-run denominator reward is {denominator}; ratio objective undefined"
            )
        return numerator / denominator


def induced_markov_chain(mdp: MDP, strategy: Strategy) -> MarkovChain:
    """Build the Markov chain obtained by fixing ``strategy`` in ``mdp``."""
    if strategy.mdp is not mdp:
        raise ModelError("strategy does not belong to this MDP")
    rows = strategy.rows
    n = mdp.num_states
    data: list = []
    indices: list = []
    indptr = [0]
    expected = np.zeros((n, mdp.num_reward_components))
    for state in range(n):
        row = int(rows[state])
        start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
        probs = mdp.trans_prob[start:end]
        succs = mdp.trans_succ[start:end]
        rewards = mdp.trans_reward[start:end]
        data.extend(probs.tolist())
        indices.extend(succs.tolist())
        indptr.append(len(data))
        expected[state] = probs @ rewards
    matrix = sp.csr_matrix((np.asarray(data), np.asarray(indices), np.asarray(indptr)), shape=(n, n))
    # Merge duplicate successor columns within a row (e.g. several capped forks).
    matrix.sum_duplicates()
    return MarkovChain(
        transition_matrix=matrix,
        expected_rewards=expected,
        initial_state=mdp.initial_state,
    )
