"""Howard policy iteration for unichain mean-payoff MDPs.

Each iteration evaluates the current positional strategy exactly (gain / bias via
a sparse linear solve on the induced Markov chain) and then improves it greedily.
For unichain models the procedure terminates after finitely many iterations with
an optimal positional strategy and the exact optimal gain, which makes it the
default solver of the formal analysis.

Both entry points accept an optional
:class:`~repro.mdp.cancellation.CancellationToken`, polled once per improvement
round; a cancelled token raises :class:`~repro.exceptions.SolverCancelled` at
the next round boundary so portfolio losers stop instead of evaluating policies
nobody will use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .cancellation import CancellationToken, check_cancelled
from .markov_chain import induced_markov_chain
from .model import MDP
from .strategy import Strategy


@dataclass
class PolicyIterationResult:
    """Result of Howard policy iteration.

    Attributes:
        gain: Optimal mean payoff (exact up to linear-algebra accuracy).
        bias: Bias (relative value) vector of the optimal strategy.
        strategy: The optimal positional strategy found.
        iterations: Number of policy-improvement rounds performed.
        converged: Whether a fixed point was reached within the budget.
    """

    gain: float
    bias: np.ndarray
    strategy: Strategy
    iterations: int
    converged: bool


def _greedy_improvement(
    mdp: MDP, row_rewards: np.ndarray, bias: np.ndarray, gain: float, current_rows: np.ndarray,
    tolerance: float,
) -> np.ndarray:
    """Return improved row choices; ties are broken in favour of the incumbent."""
    continuation = mdp.trans_prob * bias[mdp.trans_succ]
    row_values = row_rewards + np.add.reduceat(continuation, mdp.row_trans_offsets[:-1])
    state_best = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1])
    new_rows = current_rows.copy()
    current_values = row_values[current_rows]
    # Only switch when the improvement is strictly larger than the tolerance;
    # this is the standard rule that guarantees termination of policy iteration.
    improvable = state_best > current_values + tolerance
    if not np.any(improvable):
        return new_rows
    is_best = row_values >= state_best[mdp.row_state] - 1e-12
    row_indices = np.arange(mdp.num_rows)
    candidate_rows = row_indices[is_best]
    candidate_states = mdp.row_state[is_best]
    best_rows = np.full(mdp.num_states, -1, dtype=np.int64)
    best_rows[candidate_states[::-1]] = candidate_rows[::-1]
    new_rows[improvable] = best_rows[improvable]
    return new_rows


def policy_iteration(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 1_000,
    initial_strategy: Optional[Strategy] = None,
    cancel_token: Optional[CancellationToken] = None,
) -> PolicyIterationResult:
    """Solve the mean-payoff MDP with Howard policy iteration.

    Args:
        mdp: The model to solve (assumed unichain under every strategy).
        reward_weights: Weights combining reward components into the scalar
            reward being maximised.
        tolerance: Improvement threshold below which actions are not switched.
        max_iterations: Maximum number of improvement rounds.
        initial_strategy: Optional warm start (e.g. the previous binary-search
            iterate); defaults to the first-action strategy.
        cancel_token: Optional cooperative stop signal, polled once per
            improvement round.

    Raises:
        ConvergenceError: If no fixed point is reached within the budget.
        SolverCancelled: If ``cancel_token`` was cancelled before convergence.
    """
    row_rewards = mdp.expected_row_rewards(reward_weights)
    return _policy_iteration_core(
        mdp,
        reward_weights,
        row_rewards,
        tolerance=tolerance,
        max_iterations=max_iterations,
        initial_strategy=initial_strategy,
        cancel_token=cancel_token,
    )


def _policy_iteration_core(
    mdp: MDP,
    reward_weights: Sequence[float],
    row_rewards: np.ndarray,
    *,
    tolerance: float,
    max_iterations: int,
    initial_strategy: Optional[Strategy],
    cancel_token: Optional[CancellationToken] = None,
    iterations_before: int = 0,
) -> PolicyIterationResult:
    """Howard iteration with the expected row rewards already assembled.

    ``iterations_before`` offsets the iteration count reported on a
    :class:`~repro.exceptions.SolverCancelled` so that a cancelled chain of
    batched problems accounts for all rounds it completed, not just the rounds
    of the problem it was cancelled in.
    """
    strategy = initial_strategy if initial_strategy is not None else Strategy.first_action(mdp)
    rows = strategy.rows.copy()
    gain = 0.0
    bias = np.zeros(mdp.num_states)
    converged = False
    iterations = 0

    for iterations in range(1, max_iterations + 1):
        check_cancelled(
            cancel_token,
            solver="policy iteration",
            iterations=iterations_before + iterations - 1,
        )
        chain = induced_markov_chain(mdp, Strategy(mdp, rows))
        gain, bias = chain.gain_and_bias(reward_weights, reference_state=mdp.initial_state)
        new_rows = _greedy_improvement(mdp, row_rewards, bias, gain, rows, tolerance)
        if np.array_equal(new_rows, rows):
            converged = True
            break
        rows = new_rows

    if not converged:
        raise ConvergenceError(
            f"policy iteration did not converge within {max_iterations} iterations"
        )
    return PolicyIterationResult(
        gain=float(gain),
        bias=bias,
        strategy=Strategy(mdp, rows),
        iterations=iterations,
        converged=converged,
    )


def batched_policy_iteration(
    mdp: MDP,
    weight_matrix: np.ndarray,
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 1_000,
    initial_strategy: Optional[Strategy] = None,
    cancel_token: Optional[CancellationToken] = None,
) -> List[PolicyIterationResult]:
    """Solve ``k`` mean-payoff problems over one model with shared reward assembly.

    The expected per-row rewards of all ``k`` weight vectors are assembled in a
    single matrix product against the model's reward components; the Howard
    iterations themselves still run per problem because each policy evaluation
    is a separate sparse linear solve.  Problems are additionally chained:
    problem ``j + 1`` is warm-started with the optimal strategy of problem
    ``j``, which is effective when the weight rows are adjacent beta probes
    (their optimal policies differ in few states).

    Args:
        mdp: The model to solve (assumed unichain under every strategy).
        weight_matrix: Reward-weight matrix of shape ``(k, num_reward_components)``.
        tolerance: Improvement threshold below which actions are not switched.
        max_iterations: Maximum improvement rounds per problem.
        initial_strategy: Optional warm start for the first problem; subsequent
            problems chain from their predecessor's optimum.
        cancel_token: Optional cooperative stop signal, polled once per
            improvement round; a cancellation aborts the remaining problems of
            the chain and reports the rounds completed across all of them.

    Returns:
        One :class:`PolicyIterationResult` per row of ``weight_matrix``, in order.
    """
    weight_matrix = np.asarray(weight_matrix, dtype=float)
    if weight_matrix.ndim != 2 or weight_matrix.shape[1] != mdp.num_reward_components:
        raise ValueError(
            f"weight_matrix must have shape (k, {mdp.num_reward_components}), "
            f"got {weight_matrix.shape}"
        )
    row_reward_matrix = mdp.expected_row_reward_components() @ weight_matrix.T
    results: List[PolicyIterationResult] = []
    warm = initial_strategy
    completed_iterations = 0
    for j in range(weight_matrix.shape[0]):
        result = _policy_iteration_core(
            mdp,
            weight_matrix[j],
            row_reward_matrix[:, j],
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_strategy=warm,
            cancel_token=cancel_token,
            iterations_before=completed_iterations,
        )
        results.append(result)
        completed_iterations += result.iterations
        warm = result.strategy
    return results
