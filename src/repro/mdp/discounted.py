"""Discounted value iteration.

Not used directly by Algorithm 1, but provided as part of the MDP substrate:
(i) as an independent approximation of the mean payoff through the vanishing
discount relation ``g ≈ (1 - γ) V_γ``, useful for cross-checks, and (ii) as a
generally useful building block for downstream users of the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .model import MDP
from .strategy import Strategy


@dataclass
class DiscountedValueIterationResult:
    """Result of discounted value iteration.

    Attributes:
        values: Optimal discounted value per state.
        strategy: Greedy optimal strategy.
        iterations: Number of Bellman backups performed.
        converged: Whether the stopping criterion was met.
        discount: Discount factor used.
    """

    values: np.ndarray
    strategy: Strategy
    iterations: int
    converged: bool
    discount: float

    def mean_payoff_estimate(self) -> float:
        """Vanishing-discount estimate of the gain at the initial state."""
        return float((1.0 - self.discount) * self.values[self.strategy.mdp.initial_state])


def discounted_value_iteration(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    discount: float = 0.999,
    tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
    initial_values: Optional[np.ndarray] = None,
) -> DiscountedValueIterationResult:
    """Solve the discounted MDP with value iteration.

    The stopping rule uses the standard contraction bound: iteration stops once
    the sup-norm of successive iterates guarantees an error below ``tolerance``.

    Raises:
        ConvergenceError: If the iteration budget is exhausted first.
    """
    if not 0.0 < discount < 1.0:
        raise ValueError(f"discount must be in (0, 1), got {discount}")
    row_rewards = mdp.expected_row_rewards(reward_weights)
    values = (
        np.zeros(mdp.num_states)
        if initial_values is None
        else np.asarray(initial_values, dtype=float).copy()
    )
    threshold = tolerance * (1.0 - discount) / (2.0 * discount)
    best_rows = mdp.uniform_random_row_choice()
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):  # noqa: B007 - read after the loop
        continuation = mdp.trans_prob * values[mdp.trans_succ]
        row_values = row_rewards + discount * np.add.reduceat(
            continuation, mdp.row_trans_offsets[:-1]
        )
        new_values = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1])
        delta = float(np.max(np.abs(new_values - values)))
        values = new_values
        if delta < threshold:
            converged = True
            # Extract greedy rows at the fixed point.
            is_best = row_values >= new_values[mdp.row_state] - 1e-12
            row_indices = np.arange(mdp.num_rows)
            candidate_rows = row_indices[is_best]
            candidate_states = mdp.row_state[is_best]
            best_rows = np.full(mdp.num_states, -1, dtype=np.int64)
            best_rows[candidate_states[::-1]] = candidate_rows[::-1]
            break
    if not converged:
        raise ConvergenceError(
            f"discounted value iteration did not converge within {max_iterations} iterations"
        )
    return DiscountedValueIterationResult(
        values=values,
        strategy=Strategy(mdp, best_rows),
        iterations=iterations,
        converged=converged,
        discount=discount,
    )
