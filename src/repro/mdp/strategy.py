"""Positional (memoryless, deterministic) strategies for finite MDPs.

A positional strategy fixes one action per state.  The mean-payoff MDP problem
always admits an optimal positional strategy (Puterman 1994), which is why this
is the only strategy class needed by the formal analysis.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional

import numpy as np

from ..exceptions import ModelError
from .model import MDP


class Strategy:
    """A positional strategy represented by one chosen row per state.

    Attributes:
        mdp: The model the strategy belongs to.
        rows: ``int64`` array of length ``mdp.num_states``; ``rows[s]`` is the
            index of the state-action row chosen in state ``s``.
    """

    def __init__(self, mdp: MDP, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.shape != (mdp.num_states,):
            raise ModelError(
                f"strategy must choose one row per state, got shape {rows.shape}"
            )
        owners = mdp.row_state[rows]
        if not np.array_equal(owners, np.arange(mdp.num_states)):
            offending = int(np.nonzero(owners != np.arange(mdp.num_states))[0][0])
            raise ModelError(
                f"strategy chooses a row that does not belong to state {offending}"
            )
        self.mdp = mdp
        self.rows = rows

    # ----------------------------------------------------------------- factories

    @classmethod
    def from_action_map(cls, mdp: MDP, actions: Dict[Hashable, Hashable]) -> "Strategy":
        """Build a strategy from a ``{state_label: action_label}`` mapping.

        States absent from the mapping default to their first available action.
        """
        rows = mdp.uniform_random_row_choice()
        for state_label, action in actions.items():
            state = mdp.state_of_label(state_label)
            rows[state] = mdp.row_index(state, action)
        return cls(mdp, rows)

    @classmethod
    def first_action(cls, mdp: MDP) -> "Strategy":
        """Return the strategy that always picks the first listed action."""
        return cls(mdp, mdp.uniform_random_row_choice())

    # ------------------------------------------------------------------- queries

    def action(self, state: int) -> Hashable:
        """Return the action label chosen in ``state``."""
        return self.mdp.row_actions[int(self.rows[state])]

    def action_of_label(self, state_label: Hashable) -> Hashable:
        """Return the action label chosen in the state carrying ``state_label``."""
        return self.action(self.mdp.state_of_label(state_label))

    def row(self, state: int) -> int:
        """Return the chosen row index of ``state``."""
        return int(self.rows[state])

    def to_action_map(self) -> Dict[Hashable, Hashable]:
        """Return a ``{state_label: action_label}`` mapping (labels required)."""
        if self.mdp.state_labels is None:
            raise ModelError("the underlying MDP has no state labels")
        return {
            self.mdp.state_labels[state]: self.action(state)
            for state in range(self.mdp.num_states)
        }

    def differs_from(self, other: "Strategy") -> int:
        """Return the number of states where the two strategies disagree."""
        if other.mdp is not self.mdp:
            raise ModelError("cannot compare strategies over different MDPs")
        return int(np.count_nonzero(self.rows != other.rows))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Strategy)
            and other.mdp is self.mdp
            and np.array_equal(other.rows, self.rows)
        )

    def __hash__(self) -> int:  # pragma: no cover - strategies are rarely hashed
        return hash((id(self.mdp), self.rows.tobytes()))

    def __iter__(self) -> Iterator[int]:
        return iter(self.rows.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Strategy(states={self.mdp.num_states})"


def describe_strategy(
    strategy: Strategy,
    *,
    only_non_default: bool = True,
    default_action: Optional[Hashable] = None,
    limit: Optional[int] = None,
) -> str:
    """Render a human-readable listing of a strategy.

    Args:
        strategy: The strategy to describe.
        only_non_default: If true, omit states whose chosen action equals
            ``default_action``.
        default_action: The action considered "default" (e.g. ``("mine",)``).
        limit: Maximum number of lines to emit; ``None`` for no limit.
    """
    mdp = strategy.mdp
    lines = []
    for state in range(mdp.num_states):
        action = strategy.action(state)
        if only_non_default and default_action is not None and action == default_action:
            continue
        label = mdp.state_labels[state] if mdp.state_labels is not None else state
        lines.append(f"{label!r} -> {action!r}")
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
    return "\n".join(lines)
