"""Racing solver portfolio for mean-payoff problems.

Policy iteration and value iteration dominate each other on different regions
of the sweep grid: policy iteration converges in a handful of exact linear
solves when a warm-started policy is already near-optimal, while value
iteration's vectorised sweeps win on large models or cold starts where a single
policy evaluation is expensive.  Rather than guessing, the portfolio runs both
backends concurrently on the same probe and returns whichever finishes first,
in the spirit of fault-tolerant redundant orchestration: a backend that stalls
(or raises :class:`~repro.exceptions.ConvergenceError`) never blocks the
analysis as long as its rival completes.

Both backends release the GIL inside their numpy kernels, so a two-thread race
costs little more wall-clock than the winner alone.  Race losers are stopped
*cooperatively*: every backend runs under its own
:class:`~repro.mdp.cancellation.CancellationToken`, and the moment a winner
returns, the rivals' tokens are cancelled -- the losing solver raises
:class:`~repro.exceptions.SolverCancelled` at its next iteration boundary
instead of burning the rest of its iteration budget.  The iterations each
loser had completed when it stopped are harvested into
``MeanPayoffSolution.cancelled_iterations`` so results can account for the
work the cancellation avoided.  The ``deadline`` bounds only how long the
portfolio waits before it stops polling optimistically and simply blocks for
the first backend to complete.

History seeding
---------------
On a sweep grid the same backend tends to win long runs of adjacent probes
(warm-started policy iteration dominates once a chain is established; value
iteration wins the cold starts), so launching both backends cold on every probe
wastes a thread spin-up and a few solver iterations per race.  A
:class:`PortfolioHistory` -- a sliding window of recent race winners, carried in
the sweep engine's per-worker state and the distributed fabric's per-connection
state -- turns that streak into scheduling: when one backend has clearly
dominated the recent window, the portfolio launches it immediately and holds
the rival back for a few milliseconds (:attr:`PortfolioHistory.rival_delay`).
If the favourite finishes inside the grace period the rival is never launched
at all (counted in :attr:`PortfolioHistory.launches_avoided`); if it does not,
the rival starts and the race proceeds exactly as before.  Seeding is pure
scheduling -- any backend's result satisfies the same tolerance -- so certified
bounds are unaffected.

External cancellation
---------------------
``solve``/``solve_batch`` accept an external ``cancel_token`` (e.g. a
distributed worker's shutdown signal).  The per-backend tokens are *linked* to
it (:class:`~repro.mdp.cancellation.CancellationToken` ``parent=``), so an
external cancellation arriving mid-solve stops both racing backends at their
next iteration boundary and re-raises :class:`~repro.exceptions.SolverCancelled`
from the race, instead of being honoured only before the race starts.

Invariant: racing is a *scheduling* choice, not a numerical one.  Whichever
backend wins, the value it returns satisfies the same tolerance, so Algorithm
1's certified ``[beta_low, beta_up]`` stays within ``epsilon`` of the
sequential single-backend search.  Only the timing-dependent metadata (which
backend won, ``solver_iterations``, ``cancelled_iterations``) varies between
runs -- the one deliberate exception to the sweep engine's bit-for-bit
reproducibility guarantee.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    as_completed,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SolverCancelled, SolverError
from .cancellation import CancellationToken, check_cancelled
from .model import MDP
from .strategy import Strategy

#: Backends raced by default (the LP is excluded: it is a cross-check, not a race contender).
PORTFOLIO_BACKENDS: Tuple[str, ...] = ("policy_iteration", "value_iteration")


class PortfolioHistory:
    """Sliding-window race history used to seed the portfolio's scheduling.

    One instance represents "what the recent sweep has learned": a bounded
    window of race winners plus cumulative counters.  The sweep engine keeps
    one per worker process and the distributed fabric one per connection, so
    the history a race consults reflects the points that worker actually
    computed.  Thread-safe -- a distributed worker with ``capacity > 1``
    races several units concurrently against the same history.

    Args:
        window: Number of recent race winners remembered.
        min_streak: Consecutive most-recent wins a backend needs (on top of a
            strict majority of the whole window) before it is declared the
            leader; a single rival win inside the streak demotes it.
        rival_delay: Seconds the rival's launch is delayed once a leader is
            seeded.  A leader finishing inside this grace period avoids the
            rival launch entirely.
    """

    def __init__(
        self,
        *,
        window: int = 50,
        min_streak: int = 3,
        rival_delay: float = 0.004,
    ) -> None:
        if window < 1:
            raise SolverError(f"window must be >= 1, got {window}")
        if min_streak < 1:
            raise SolverError(f"min_streak must be >= 1, got {min_streak}")
        if rival_delay < 0.0:
            raise SolverError(f"rival_delay must be >= 0, got {rival_delay}")
        self.window = window
        self.min_streak = min_streak
        self.rival_delay = rival_delay
        self._winners: Deque[str] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.races = 0
        self.launches_avoided = 0
        self.seeded_races = 0
        self.wins: Dict[str, int] = {}

    def _thread_counts(self) -> Dict[str, int]:
        counts = getattr(self._tls, "counts", None)
        if counts is None:
            counts = self._tls.counts = {"races": 0, "launches_avoided": 0}
        return counts

    def thread_stats(self) -> Dict[str, int]:
        """Races/avoided-launches recorded *by the calling thread* (cumulative).

        A history may be shared by threads racing concurrently (a distributed
        worker with ``capacity > 1``); per-point deltas taken against the
        global counters would then include other threads' races.  Each thread
        races sequentially, so its own counters are exact.
        """
        return dict(self._thread_counts())

    def record_win(self, backend: str) -> None:
        """Record the winner of one race."""
        self._thread_counts()["races"] += 1
        with self._lock:
            self.races += 1
            self._winners.append(backend)
            self.wins[backend] = self.wins.get(backend, 0) + 1

    def record_avoided(self, count: int, *, seeded: bool = True) -> None:
        """Record rival launches a seeded race skipped (and the seeding itself)."""
        self._thread_counts()["launches_avoided"] += count
        with self._lock:
            if seeded:
                self.seeded_races += 1
            self.launches_avoided += count

    def leader(self) -> Optional[str]:
        """The backend dominating the recent window, or ``None`` when contested.

        A backend leads when it won every one of the last ``min_streak`` races
        and holds a strict majority of the whole window -- a single rival win
        inside the streak immediately demotes it, so a genuinely contested
        region of the grid falls back to the plain cold race.
        """
        with self._lock:
            if len(self._winners) < self.min_streak:
                return None
            recent = list(self._winners)
        streak = recent[-self.min_streak :]
        candidate = streak[0]
        if any(winner != candidate for winner in streak):
            return None
        if sum(1 for winner in recent if winner == candidate) * 2 <= len(recent):
            return None
        return candidate

    def stats(self) -> Dict[str, object]:
        """Cumulative counters (races, seeded races, avoided launches, wins)."""
        with self._lock:
            return {
                "races": self.races,
                "seeded_races": self.seeded_races,
                "launches_avoided": self.launches_avoided,
                "wins": dict(self.wins),
            }


@dataclass(frozen=True)
class SolverPortfolio:
    """A deadline-bounded race between mean-payoff solver backends.

    Attributes:
        backends: Backend names raced against each other; each must be a
            non-portfolio backend accepted by
            :func:`repro.mdp.mean_payoff.solve_mean_payoff`.
        deadline: Seconds to wait for the first completion before falling back
            to an unbounded wait (a race cannot return *no* result; the
            deadline only bounds the optimistic polling phase).
        history: Optional :class:`PortfolioHistory` consulted before each race:
            a clearly leading backend is launched immediately and its rivals
            are delayed by ``history.rival_delay`` (skipped outright when the
            leader finishes first).  Race winners and avoided launches are
            recorded back into the same history.
    """

    backends: Tuple[str, ...] = PORTFOLIO_BACKENDS
    deadline: float = 30.0
    history: Optional[PortfolioHistory] = field(default=None, compare=False)

    #: Upper bound (seconds) on waiting for cancelled losers to report their
    #: completed iterations.  Losers stop at their next iteration boundary --
    #: microseconds to low milliseconds at this repo's model sizes -- so this
    #: is normally never hit; a loser stuck inside one long kernel forfeits its
    #: count rather than stalling the winner's result on the critical path.
    LOSER_HARVEST_TIMEOUT = 0.25

    def __post_init__(self) -> None:
        if not self.backends:
            raise SolverError("portfolio needs at least one backend")
        if "portfolio" in self.backends:
            raise SolverError("portfolio cannot race itself")
        if not self.deadline > 0.0:
            raise SolverError(f"deadline must be positive, got {self.deadline}")

    # ------------------------------------------------------------------ racing

    def _race(
        self,
        thunks: Sequence[Tuple[str, Callable[[Optional[CancellationToken]], object]]],
        cancel_token: Optional[CancellationToken] = None,
    ):
        """Run one thunk per backend; return the winner and the losers' savings.

        Each thunk receives its own cancellation token, *linked* to the
        optional external ``cancel_token`` so an external cancellation arriving
        mid-solve stops every backend at its next iteration boundary.  With a
        :attr:`history` whose window names a clear leader, the leader launches
        first and the rivals wait ``history.rival_delay`` seconds -- rivals
        whose launch the leader's finish made unnecessary are never started and
        are counted into ``history.launches_avoided``.  The winner is the first
        backend whose thunk returns without raising; its rivals' tokens are
        cancelled immediately, so they stop at their next iteration boundary,
        and the iterations they completed by then are summed into the returned
        ``cancelled_iterations``.  If every backend raises, the last error is
        re-raised.

        Returns:
            ``(backend, result, cancelled_iterations)``.
        """
        if len(thunks) == 1:
            backend, thunk = thunks[0]
            return backend, thunk(cancel_token), 0
        # One short-lived executor per race, by design: a shared pool would let
        # still-draining losers from earlier races occupy its threads and
        # starve later races behind the deadline, while the two threads spawned
        # here cost microseconds against millisecond-scale solves.
        executor = ThreadPoolExecutor(max_workers=len(thunks), thread_name_prefix="mp-portfolio")
        tokens = {backend: CancellationToken(parent=cancel_token) for backend, _ in thunks}
        leader = self.history.leader() if self.history is not None else None
        last_error: Optional[BaseException] = None
        winner_backend: Optional[str] = None
        winner_result: Optional[object] = None
        try:
            futures: Dict[object, str] = {}
            pending: Dict[object, str] = {}
            delayed = list(thunks)
            if leader is not None and any(backend == leader for backend, _ in thunks):
                # History seeding: launch the recent winner alone and give it
                # a head start.  If it finishes inside the grace period the
                # rivals are never launched at all.
                leader_thunk = next(thunk for backend, thunk in thunks if backend == leader)
                delayed = [(backend, thunk) for backend, thunk in thunks if backend != leader]
                future = executor.submit(leader_thunk, tokens[leader])
                futures[future] = leader
                pending[future] = leader
                done, _ = wait(
                    [future], timeout=self.history.rival_delay, return_when=FIRST_COMPLETED
                )
                if future in done:
                    pending.pop(future, None)
                    try:
                        winner_result = future.result()
                        winner_backend = leader
                        self.history.record_avoided(len(delayed))
                        delayed = []
                    except Exception as exc:  # noqa: BLE001 - rivals take over
                        last_error = exc
                else:
                    self.history.record_avoided(0)
            for backend, thunk in delayed:
                future = executor.submit(thunk, tokens[backend])
                futures[future] = backend
                pending[future] = backend
            for use_deadline in (True, False):
                if winner_backend is not None or not pending:
                    break
                timeout = self.deadline if use_deadline else None
                try:
                    for future in as_completed(list(pending), timeout=timeout):
                        pending.pop(future, None)
                        try:
                            winner_result = future.result()
                            winner_backend = futures[future]
                            break
                        except Exception as exc:  # noqa: BLE001 - rival may still win
                            last_error = exc
                except FuturesTimeoutError:
                    continue
                break
            if winner_backend is None:
                assert last_error is not None
                raise last_error
            # Stop the losers at their next iteration boundary and harvest how
            # many iterations they had completed -- the cancelled remainder of
            # their budget is the portfolio's saving.
            for backend, token in tokens.items():
                if backend != winner_backend:
                    token.cancel()
            cancelled_iterations = 0
            harvest_timeout = min(self.deadline, self.LOSER_HARVEST_TIMEOUT)
            try:
                for future in as_completed(list(pending), timeout=harvest_timeout):
                    pending.pop(future, None)
                    try:
                        future.result()
                    except SolverCancelled as cancelled:
                        cancelled_iterations += cancelled.iterations
                    except Exception:  # noqa: BLE001 - loser errors are irrelevant
                        pass
            except FuturesTimeoutError:  # pragma: no cover - loser stuck in a kernel
                pass
            return winner_backend, winner_result, cancelled_iterations
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # ----------------------------------------------------------------- solving

    def solve(
        self,
        mdp: MDP,
        reward_weights: Sequence[float],
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
        cancel_token: Optional[CancellationToken] = None,
    ):
        """Race one mean-payoff solve across the configured backends.

        Args:
            cancel_token: Optional *external* stop signal.  Checked before the
                race starts *and* linked into the per-backend tokens, so a
                cancellation arriving mid-solve aborts both racing backends at
                their next iteration boundary (the race re-raises
                :class:`~repro.exceptions.SolverCancelled`).

        Returns:
            The winning backend's :class:`~repro.mdp.mean_payoff.MeanPayoffSolution`
            with ``solver`` rewritten to ``"portfolio:<backend>"`` and
            ``cancelled_iterations`` set to the iterations the cancelled losers
            had completed when they stopped.
        """
        from .mean_payoff import solve_mean_payoff  # local import: avoids a cycle

        check_cancelled(cancel_token, solver="portfolio", iterations=0)

        def thunk(backend: str):
            return lambda token: solve_mean_payoff(
                mdp,
                reward_weights,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
                cancel_token=token,
            )

        backend, solution, cancelled_iterations = self._race(
            [(backend, thunk(backend)) for backend in self.backends], cancel_token
        )
        if self.history is not None:
            self.history.record_win(backend)
        return replace(
            solution,
            solver=f"portfolio:{backend}",
            cancelled_iterations=cancelled_iterations,
        )

    def solve_batch(
        self,
        mdp: MDP,
        weight_matrix: np.ndarray,
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
        cancel_token: Optional[CancellationToken] = None,
    ) -> List:
        """Race one *batched* solve (all probes together) across the backends.

        The batch-wide aborted-iteration count of the cancelled losers is
        recorded on the first returned solution (the batch is one race, so the
        saving is a per-race quantity, not a per-probe one).
        """
        from .mean_payoff import solve_mean_payoff_batch  # local import: avoids a cycle

        check_cancelled(cancel_token, solver="portfolio", iterations=0)

        def thunk(backend: str):
            return lambda token: solve_mean_payoff_batch(
                mdp,
                weight_matrix,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
                cancel_token=token,
            )

        backend, solutions, cancelled_iterations = self._race(
            [(backend, thunk(backend)) for backend in self.backends], cancel_token
        )
        if self.history is not None:
            self.history.record_win(backend)
        rewritten = [
            replace(solution, solver=f"portfolio:{backend}") for solution in solutions
        ]
        if rewritten:
            rewritten[0] = replace(rewritten[0], cancelled_iterations=cancelled_iterations)
        return rewritten
