"""Racing solver portfolio for mean-payoff problems.

Policy iteration and value iteration dominate each other on different regions
of the sweep grid: policy iteration converges in a handful of exact linear
solves when a warm-started policy is already near-optimal, while value
iteration's vectorised sweeps win on large models or cold starts where a single
policy evaluation is expensive.  Rather than guessing, the portfolio runs both
backends concurrently on the same probe and returns whichever finishes first,
in the spirit of fault-tolerant redundant orchestration: a backend that stalls
(or raises :class:`~repro.exceptions.ConvergenceError`) never blocks the
analysis as long as its rival completes.

Both backends release the GIL inside their numpy kernels, so a two-thread race
costs little more wall-clock than the winner alone.  Race losers are stopped
*cooperatively*: every backend runs under its own
:class:`~repro.mdp.cancellation.CancellationToken`, and the moment a winner
returns, the rivals' tokens are cancelled -- the losing solver raises
:class:`~repro.exceptions.SolverCancelled` at its next iteration boundary
instead of burning the rest of its iteration budget.  The iterations each
loser had completed when it stopped are harvested into
``MeanPayoffSolution.cancelled_iterations`` so results can account for the
work the cancellation avoided.  The ``deadline`` bounds only how long the
portfolio waits before it stops polling optimistically and simply blocks for
the first backend to complete.

Invariant: racing is a *scheduling* choice, not a numerical one.  Whichever
backend wins, the value it returns satisfies the same tolerance, so Algorithm
1's certified ``[beta_low, beta_up]`` stays within ``epsilon`` of the
sequential single-backend search.  Only the timing-dependent metadata (which
backend won, ``solver_iterations``, ``cancelled_iterations``) varies between
runs -- the one deliberate exception to the sweep engine's bit-for-bit
reproducibility guarantee.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, TimeoutError as FuturesTimeoutError, as_completed
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SolverCancelled, SolverError
from .cancellation import CancellationToken, check_cancelled
from .model import MDP
from .strategy import Strategy

#: Backends raced by default (the LP is excluded: it is a cross-check, not a race contender).
PORTFOLIO_BACKENDS: Tuple[str, ...] = ("policy_iteration", "value_iteration")


@dataclass(frozen=True)
class SolverPortfolio:
    """A deadline-bounded race between mean-payoff solver backends.

    Attributes:
        backends: Backend names raced against each other; each must be a
            non-portfolio backend accepted by
            :func:`repro.mdp.mean_payoff.solve_mean_payoff`.
        deadline: Seconds to wait for the first completion before falling back
            to an unbounded wait (a race cannot return *no* result; the
            deadline only bounds the optimistic polling phase).
    """

    backends: Tuple[str, ...] = PORTFOLIO_BACKENDS
    deadline: float = 30.0

    #: Upper bound (seconds) on waiting for cancelled losers to report their
    #: completed iterations.  Losers stop at their next iteration boundary --
    #: microseconds to low milliseconds at this repo's model sizes -- so this
    #: is normally never hit; a loser stuck inside one long kernel forfeits its
    #: count rather than stalling the winner's result on the critical path.
    LOSER_HARVEST_TIMEOUT = 0.25

    def __post_init__(self) -> None:
        if not self.backends:
            raise SolverError("portfolio needs at least one backend")
        if "portfolio" in self.backends:
            raise SolverError("portfolio cannot race itself")
        if not self.deadline > 0.0:
            raise SolverError(f"deadline must be positive, got {self.deadline}")

    # ------------------------------------------------------------------ racing

    def _race(self, thunks: Sequence[Tuple[str, Callable[[Optional[CancellationToken]], object]]]):
        """Run one thunk per backend; return the winner and the losers' savings.

        Each thunk receives its own cancellation token.  The winner is the
        first backend whose thunk returns without raising; its rivals' tokens
        are cancelled immediately, so they stop at their next iteration
        boundary, and the iterations they completed by then are summed into
        the returned ``cancelled_iterations``.  If every backend raises, the
        last error is re-raised.

        Returns:
            ``(backend, result, cancelled_iterations)``.
        """
        if len(thunks) == 1:
            backend, thunk = thunks[0]
            return backend, thunk(None), 0
        # One short-lived executor per race, by design: a shared pool would let
        # still-draining losers from earlier races occupy its threads and
        # starve later races behind the deadline, while the two threads spawned
        # here cost microseconds against millisecond-scale solves.
        executor = ThreadPoolExecutor(max_workers=len(thunks), thread_name_prefix="mp-portfolio")
        tokens = {backend: CancellationToken() for backend, _ in thunks}
        futures = {
            executor.submit(thunk, tokens[backend]): backend for backend, thunk in thunks
        }
        last_error: Optional[BaseException] = None
        winner_backend: Optional[str] = None
        winner_result: Optional[object] = None
        try:
            pending = dict(futures)
            for use_deadline in (True, False):
                if winner_backend is not None or not pending:
                    break
                timeout = self.deadline if use_deadline else None
                try:
                    for future in as_completed(list(pending), timeout=timeout):
                        pending.pop(future, None)
                        try:
                            winner_result = future.result()
                            winner_backend = futures[future]
                            break
                        except Exception as exc:  # noqa: BLE001 - rival may still win
                            last_error = exc
                except FuturesTimeoutError:
                    continue
                break
            if winner_backend is None:
                assert last_error is not None
                raise last_error
            # Stop the losers at their next iteration boundary and harvest how
            # many iterations they had completed -- the cancelled remainder of
            # their budget is the portfolio's saving.
            for backend, token in tokens.items():
                if backend != winner_backend:
                    token.cancel()
            cancelled_iterations = 0
            harvest_timeout = min(self.deadline, self.LOSER_HARVEST_TIMEOUT)
            try:
                for future in as_completed(list(pending), timeout=harvest_timeout):
                    pending.pop(future, None)
                    try:
                        future.result()
                    except SolverCancelled as cancelled:
                        cancelled_iterations += cancelled.iterations
                    except Exception:  # noqa: BLE001 - loser errors are irrelevant
                        pass
            except FuturesTimeoutError:  # pragma: no cover - loser stuck in a kernel
                pass
            return winner_backend, winner_result, cancelled_iterations
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # ----------------------------------------------------------------- solving

    def solve(
        self,
        mdp: MDP,
        reward_weights: Sequence[float],
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
        cancel_token: Optional[CancellationToken] = None,
    ):
        """Race one mean-payoff solve across the configured backends.

        Args:
            cancel_token: Optional *external* stop signal, honoured at race
                granularity (checked before the race starts); the per-backend
                tokens that stop race losers are managed internally.

        Returns:
            The winning backend's :class:`~repro.mdp.mean_payoff.MeanPayoffSolution`
            with ``solver`` rewritten to ``"portfolio:<backend>"`` and
            ``cancelled_iterations`` set to the iterations the cancelled losers
            had completed when they stopped.
        """
        from .mean_payoff import solve_mean_payoff  # local import: avoids a cycle

        check_cancelled(cancel_token, solver="portfolio", iterations=0)

        def thunk(backend: str):
            return lambda token: solve_mean_payoff(
                mdp,
                reward_weights,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
                cancel_token=token,
            )

        backend, solution, cancelled_iterations = self._race(
            [(backend, thunk(backend)) for backend in self.backends]
        )
        return replace(
            solution,
            solver=f"portfolio:{backend}",
            cancelled_iterations=cancelled_iterations,
        )

    def solve_batch(
        self,
        mdp: MDP,
        weight_matrix: np.ndarray,
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
        cancel_token: Optional[CancellationToken] = None,
    ) -> List:
        """Race one *batched* solve (all probes together) across the backends.

        The batch-wide aborted-iteration count of the cancelled losers is
        recorded on the first returned solution (the batch is one race, so the
        saving is a per-race quantity, not a per-probe one).
        """
        from .mean_payoff import solve_mean_payoff_batch  # local import: avoids a cycle

        check_cancelled(cancel_token, solver="portfolio", iterations=0)

        def thunk(backend: str):
            return lambda token: solve_mean_payoff_batch(
                mdp,
                weight_matrix,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
                cancel_token=token,
            )

        backend, solutions, cancelled_iterations = self._race(
            [(backend, thunk(backend)) for backend in self.backends]
        )
        rewritten = [
            replace(solution, solver=f"portfolio:{backend}") for solution in solutions
        ]
        if rewritten:
            rewritten[0] = replace(rewritten[0], cancelled_iterations=cancelled_iterations)
        return rewritten
