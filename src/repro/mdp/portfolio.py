"""Racing solver portfolio for mean-payoff problems.

Policy iteration and value iteration dominate each other on different regions
of the sweep grid: policy iteration converges in a handful of exact linear
solves when a warm-started policy is already near-optimal, while value
iteration's vectorised sweeps win on large models or cold starts where a single
policy evaluation is expensive.  Rather than guessing, the portfolio runs both
backends concurrently on the same probe and returns whichever finishes first,
in the spirit of fault-tolerant redundant orchestration: a backend that stalls
(or raises :class:`~repro.exceptions.ConvergenceError`) never blocks the
analysis as long as its rival completes.

Both backends release the GIL inside their numpy kernels, so a two-thread race
costs little more wall-clock than the winner alone.  Losing threads cannot be
killed mid-solve; they are cancelled if still queued and otherwise finish in
the background, which is cheap at the model sizes of the paper's grid.  The
``deadline`` bounds only how long the portfolio waits before it stops polling
optimistically and simply blocks for the first backend to complete.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, TimeoutError as FuturesTimeoutError, as_completed
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SolverError
from .model import MDP
from .strategy import Strategy

#: Backends raced by default (the LP is excluded: it is a cross-check, not a race contender).
PORTFOLIO_BACKENDS: Tuple[str, ...] = ("policy_iteration", "value_iteration")


@dataclass(frozen=True)
class SolverPortfolio:
    """A deadline-bounded race between mean-payoff solver backends.

    Attributes:
        backends: Backend names raced against each other; each must be a
            non-portfolio backend accepted by
            :func:`repro.mdp.mean_payoff.solve_mean_payoff`.
        deadline: Seconds to wait for the first completion before falling back
            to an unbounded wait (a race cannot return *no* result; the
            deadline only bounds the optimistic polling phase).
    """

    backends: Tuple[str, ...] = PORTFOLIO_BACKENDS
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if not self.backends:
            raise SolverError("portfolio needs at least one backend")
        if "portfolio" in self.backends:
            raise SolverError("portfolio cannot race itself")
        if not self.deadline > 0.0:
            raise SolverError(f"deadline must be positive, got {self.deadline}")

    # ------------------------------------------------------------------ racing

    def _race(self, thunks):
        """Run one thunk per backend; return ``(backend, result)`` of the winner.

        The winner is the first backend whose thunk returns without raising.
        If every backend raises, the last error is re-raised.
        """
        if len(thunks) == 1:
            backend, thunk = thunks[0]
            return backend, thunk()
        # One short-lived executor per race, by design: a shared pool would let
        # un-cancellable losing solves from earlier races occupy its threads and
        # starve later races behind the deadline, while the two threads spawned
        # here cost microseconds against millisecond-scale solves.  Losers of
        # *this* race at worst finish in the background without blocking anyone.
        executor = ThreadPoolExecutor(max_workers=len(thunks), thread_name_prefix="mp-portfolio")
        futures = {executor.submit(thunk): backend for backend, thunk in thunks}
        last_error: Optional[BaseException] = None
        try:
            pending = dict(futures)
            for use_deadline in (True, False):
                timeout = self.deadline if use_deadline else None
                try:
                    for future in as_completed(list(pending), timeout=timeout):
                        pending.pop(future, None)
                        try:
                            return futures[future], future.result()
                        except Exception as exc:  # noqa: BLE001 - rival may still win
                            last_error = exc
                except FuturesTimeoutError:
                    continue
                break
            assert last_error is not None
            raise last_error
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # ----------------------------------------------------------------- solving

    def solve(
        self,
        mdp: MDP,
        reward_weights: Sequence[float],
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
    ):
        """Race one mean-payoff solve across the configured backends.

        Returns:
            The winning backend's :class:`~repro.mdp.mean_payoff.MeanPayoffSolution`
            with ``solver`` rewritten to ``"portfolio:<backend>"`` so callers can
            record which backend won.
        """
        from .mean_payoff import solve_mean_payoff  # local import: avoids a cycle

        def thunk(backend: str):
            return lambda: solve_mean_payoff(
                mdp,
                reward_weights,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
            )

        backend, solution = self._race([(backend, thunk(backend)) for backend in self.backends])
        return replace(solution, solver=f"portfolio:{backend}")

    def solve_batch(
        self,
        mdp: MDP,
        weight_matrix: np.ndarray,
        *,
        tolerance: float = 1e-9,
        max_iterations: int = 100_000,
        warm_start: Optional[Strategy] = None,
        warm_start_bias: Optional[np.ndarray] = None,
    ) -> List:
        """Race one *batched* solve (all probes together) across the backends."""
        from .mean_payoff import solve_mean_payoff_batch  # local import: avoids a cycle

        def thunk(backend: str):
            return lambda: solve_mean_payoff_batch(
                mdp,
                weight_matrix,
                solver=backend,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
            )

        backend, solutions = self._race([(backend, thunk(backend)) for backend in self.backends])
        return [replace(solution, solver=f"portfolio:{backend}") for solution in solutions]
