"""Unified front-end for the mean-payoff solvers.

Algorithm 1 only needs a single entry point that, given an MDP and reward
weights, returns the optimal gain together with an optimal (or epsilon-optimal)
strategy.  :func:`solve_mean_payoff` dispatches to the configured backend and
normalises the result into a :class:`MeanPayoffSolution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import SolverError
from .linear_program import solve_mean_payoff_lp
from .model import MDP
from .policy_iteration import policy_iteration
from .strategy import Strategy
from .value_iteration import relative_value_iteration

#: Names of the available solver backends.
SOLVER_BACKENDS = ("policy_iteration", "value_iteration", "linear_program")


@dataclass
class MeanPayoffSolution:
    """Solver-independent mean-payoff result.

    Attributes:
        gain: Best estimate of the optimal mean payoff.
        lower_bound: Certified (or numerically exact) lower bound on the gain.
        upper_bound: Certified (or numerically exact) upper bound on the gain.
        strategy: Optimal (or epsilon-optimal) positional strategy.
        bias: Bias vector associated with the solution.
        solver: Name of the backend that produced the result.
        iterations: Iterations used by the backend (0 for the LP).
    """

    gain: float
    lower_bound: float
    upper_bound: float
    strategy: Strategy
    bias: np.ndarray
    solver: str
    iterations: int


def solve_mean_payoff(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    solver: str = "policy_iteration",
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    warm_start: Optional[Strategy] = None,
    warm_start_bias: Optional[np.ndarray] = None,
) -> MeanPayoffSolution:
    """Compute the optimal mean payoff and an optimal strategy.

    Args:
        mdp: The model to solve (assumed unichain under every strategy, which
            holds for the paper's selfish-mining MDP).
        reward_weights: Weights combining the model's reward components.
        solver: One of ``"policy_iteration"`` (default; exact), ``"value_iteration"``
            (certified bounds) or ``"linear_program"`` (independent cross-check).
        tolerance: Numerical tolerance of the backend.
        max_iterations: Iteration budget of the backend.
        warm_start: Optional strategy to warm-start iterative backends with
            (used by policy iteration as the initial policy).
        warm_start_bias: Optional bias vector to warm-start value iteration with
            (e.g. the bias of the previous binary-search iterate); silently
            ignored when its shape does not match ``mdp.num_states`` so that
            callers can pass vectors carried across structurally different
            models without checking.

    Raises:
        SolverError: If ``solver`` is not a known backend.
    """
    if warm_start_bias is not None:
        warm_start_bias = np.asarray(warm_start_bias, dtype=float)
        if warm_start_bias.shape != (mdp.num_states,):
            warm_start_bias = None
    if solver == "policy_iteration":
        result = policy_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=max(100, min(max_iterations, 10_000)),
            initial_strategy=warm_start,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.gain - tolerance,
            upper_bound=result.gain + tolerance,
            strategy=result.strategy,
            bias=result.bias,
            solver=solver,
            iterations=result.iterations,
        )
    if solver == "value_iteration":
        result = relative_value_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_bias=warm_start_bias,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.lower_bound,
            upper_bound=result.upper_bound,
            strategy=result.strategy,
            bias=result.bias,
            solver=solver,
            iterations=result.iterations,
        )
    if solver == "linear_program":
        result = solve_mean_payoff_lp(mdp, reward_weights)
        # The LP's optimal value is the optimal gain, but the bias of an optimal
        # basic solution is not unique, so a greedy strategy extracted from it
        # can be sub-optimal.  A policy-iteration refinement warm-started from
        # the LP strategy fixes the strategy without changing the (LP) value.
        refinement = policy_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=1_000,
            initial_strategy=result.strategy,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.gain - tolerance,
            upper_bound=result.gain + tolerance,
            strategy=refinement.strategy,
            bias=result.bias,
            solver=solver,
            iterations=refinement.iterations,
        )
    raise SolverError(f"unknown mean-payoff solver {solver!r}; choose from {SOLVER_BACKENDS}")
