"""Unified front-end for the mean-payoff solvers.

Algorithm 1 only needs a single entry point that, given an MDP and reward
weights, returns the optimal gain together with an optimal (or epsilon-optimal)
strategy.  :func:`solve_mean_payoff` dispatches to the configured backend and
normalises the result into a :class:`MeanPayoffSolution`.

Two scaling extensions share this front-end:

* :func:`solve_mean_payoff_batch` solves several reward weightings over the
  *same* model in one call (the batched beta probes of Algorithm 1), hitting
  the vectorised batched backends where they exist.
* The ``"portfolio"`` backend races policy iteration against value iteration
  per probe and returns the first finisher
  (:class:`~repro.mdp.portfolio.SolverPortfolio`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..exceptions import SolverError
from .cancellation import CancellationToken
from .linear_program import solve_mean_payoff_lp
from .model import MDP
from .policy_iteration import batched_policy_iteration, policy_iteration
from .strategy import Strategy
from .value_iteration import batched_relative_value_iteration, relative_value_iteration

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .portfolio import PortfolioHistory

#: Names of the available solver backends.
SOLVER_BACKENDS = ("policy_iteration", "value_iteration", "linear_program", "portfolio")


@dataclass
class MeanPayoffSolution:
    """Solver-independent mean-payoff result.

    Attributes:
        gain: Best estimate of the optimal mean payoff.
        lower_bound: Certified (or numerically exact) lower bound on the gain.
        upper_bound: Certified (or numerically exact) upper bound on the gain.
        strategy: Optimal (or epsilon-optimal) positional strategy.
        bias: Bias vector associated with the solution.
        solver: Name of the backend that produced the result.
        iterations: Iterations used by the backend (0 for the LP).
        cancelled_iterations: For portfolio solves, the iterations the losing
            backends were cooperatively cancelled out of -- the solver work the
            race avoided burning (0 outside portfolio runs).
    """

    gain: float
    lower_bound: float
    upper_bound: float
    strategy: Strategy
    bias: np.ndarray
    solver: str
    iterations: int
    cancelled_iterations: int = 0


def solve_mean_payoff(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    solver: str = "policy_iteration",
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    warm_start: Optional[Strategy] = None,
    warm_start_bias: Optional[np.ndarray] = None,
    portfolio_deadline: float = 30.0,
    portfolio_history: Optional["PortfolioHistory"] = None,
    cancel_token: Optional[CancellationToken] = None,
) -> MeanPayoffSolution:
    """Compute the optimal mean payoff and an optimal strategy.

    Args:
        mdp: The model to solve (assumed unichain under every strategy, which
            holds for the paper's selfish-mining MDP).
        reward_weights: Weights combining the model's reward components.
        solver: One of ``"policy_iteration"`` (default; exact), ``"value_iteration"``
            (certified bounds), ``"linear_program"`` (independent cross-check) or
            ``"portfolio"`` (policy vs value iteration raced per probe; the
            winner's name is recorded as ``"portfolio:<backend>"``).
        tolerance: Numerical tolerance of the backend.
        max_iterations: Iteration budget of the backend.
        warm_start: Optional strategy to warm-start iterative backends with
            (used by policy iteration as the initial policy).
        warm_start_bias: Optional bias vector to warm-start value iteration with
            (e.g. the bias of the previous binary-search iterate); silently
            ignored when its shape does not match ``mdp.num_states`` so that
            callers can pass vectors carried across structurally different
            models without checking.
        portfolio_deadline: Seconds the ``"portfolio"`` backend waits for the
            first finisher before blocking unconditionally; ignored otherwise.
        portfolio_history: Optional :class:`~repro.mdp.portfolio.
            PortfolioHistory` seeding the ``"portfolio"`` race from recent
            winners (the dominant backend launches first, rivals are delayed
            or skipped); ignored by the other backends.
        cancel_token: Optional cooperative stop signal polled at iteration
            boundaries by the iterative backends (the portfolio additionally
            creates per-backend tokens internally, linked to this one, to stop
            race losers).

    Raises:
        SolverError: If ``solver`` is not a known backend.
        SolverCancelled: If ``cancel_token`` was cancelled before completion.
    """
    if warm_start_bias is not None:
        warm_start_bias = np.asarray(warm_start_bias, dtype=float)
        if warm_start_bias.shape != (mdp.num_states,):
            warm_start_bias = None
    if solver == "portfolio":
        from .portfolio import SolverPortfolio  # local import: avoids a cycle

        return SolverPortfolio(deadline=portfolio_deadline, history=portfolio_history).solve(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=max_iterations,
            warm_start=warm_start,
            warm_start_bias=warm_start_bias,
            cancel_token=cancel_token,
        )
    if solver == "policy_iteration":
        result = policy_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=max(100, min(max_iterations, 10_000)),
            initial_strategy=warm_start,
            cancel_token=cancel_token,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.gain - tolerance,
            upper_bound=result.gain + tolerance,
            strategy=result.strategy,
            bias=result.bias,
            solver=solver,
            iterations=result.iterations,
        )
    if solver == "value_iteration":
        result = relative_value_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_bias=warm_start_bias,
            cancel_token=cancel_token,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.lower_bound,
            upper_bound=result.upper_bound,
            strategy=result.strategy,
            bias=result.bias,
            solver=solver,
            iterations=result.iterations,
        )
    if solver == "linear_program":
        result = solve_mean_payoff_lp(mdp, reward_weights)
        # The LP's optimal value is the optimal gain, but the bias of an optimal
        # basic solution is not unique, so a greedy strategy extracted from it
        # can be sub-optimal.  A policy-iteration refinement warm-started from
        # the LP strategy fixes the strategy without changing the (LP) value.
        refinement = policy_iteration(
            mdp,
            reward_weights,
            tolerance=tolerance,
            max_iterations=1_000,
            initial_strategy=result.strategy,
        )
        return MeanPayoffSolution(
            gain=result.gain,
            lower_bound=result.gain - tolerance,
            upper_bound=result.gain + tolerance,
            strategy=refinement.strategy,
            bias=result.bias,
            solver=solver,
            iterations=refinement.iterations,
        )
    raise SolverError(f"unknown mean-payoff solver {solver!r}; choose from {SOLVER_BACKENDS}")


def solve_mean_payoff_batch(
    mdp: MDP,
    weight_matrix: np.ndarray,
    *,
    solver: str = "policy_iteration",
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    warm_start: Optional[Strategy] = None,
    warm_start_bias: Optional[np.ndarray] = None,
    portfolio_deadline: float = 30.0,
    portfolio_history: Optional["PortfolioHistory"] = None,
    cancel_token: Optional[CancellationToken] = None,
) -> List[MeanPayoffSolution]:
    """Solve several reward weightings of the *same* model in one call.

    This is the batched entry point behind Algorithm 1's ``batch_probes`` mode:
    ``k`` reward vectors (one per row of ``weight_matrix``) are stacked against
    one shared transition structure and dispatched to the vectorised batched
    backend -- a single joint value-iteration run, a reward-assembly-sharing
    policy-iteration chain, or a portfolio race between the two.  The
    ``"linear_program"`` backend has no batched formulation and falls back to
    sequential solves.

    Args:
        mdp: The model to solve.
        weight_matrix: Reward-weight matrix of shape ``(k, num_reward_components)``.
        solver: Backend name, as for :func:`solve_mean_payoff`.
        tolerance: Numerical tolerance of the backend.
        max_iterations: Iteration budget of the backend (per column for value
            iteration, per probe for policy iteration).
        warm_start: Optional strategy seeding the first probe (policy iteration
            chains subsequent probes from their predecessor's optimum).
        warm_start_bias: Optional bias warm start for value iteration: either
            one vector of shape ``(num_states,)`` broadcast to every column, or
            a per-column matrix of shape ``(num_states, k)``; silently ignored
            on shape mismatch.
        portfolio_deadline: Deadline of the ``"portfolio"`` race; ignored otherwise.
        portfolio_history: Optional race history seeding the ``"portfolio"``
            backend, as for :func:`solve_mean_payoff`; ignored otherwise.
        cancel_token: Optional cooperative stop signal polled at iteration
            boundaries by the iterative backends.

    Returns:
        One :class:`MeanPayoffSolution` per row of ``weight_matrix``, in order.

    Raises:
        SolverError: If ``solver`` is not a known backend.
        SolverCancelled: If ``cancel_token`` was cancelled before completion.
    """
    weight_matrix = np.asarray(weight_matrix, dtype=float)
    if weight_matrix.ndim != 2 or weight_matrix.shape[1] != mdp.num_reward_components:
        raise SolverError(
            f"weight_matrix must have shape (k, {mdp.num_reward_components}), "
            f"got {weight_matrix.shape}"
        )
    num_probes = weight_matrix.shape[0]
    if num_probes == 0:
        return []
    if warm_start_bias is not None:
        warm_start_bias = np.asarray(warm_start_bias, dtype=float)
        if warm_start_bias.shape not in ((mdp.num_states,), (mdp.num_states, num_probes)):
            warm_start_bias = None
    if solver == "portfolio":
        from .portfolio import SolverPortfolio  # local import: avoids a cycle

        return SolverPortfolio(deadline=portfolio_deadline, history=portfolio_history).solve_batch(
            mdp,
            weight_matrix,
            tolerance=tolerance,
            max_iterations=max_iterations,
            warm_start=warm_start,
            warm_start_bias=warm_start_bias,
            cancel_token=cancel_token,
        )
    if solver == "policy_iteration":
        results = batched_policy_iteration(
            mdp,
            weight_matrix,
            tolerance=tolerance,
            max_iterations=max(100, min(max_iterations, 10_000)),
            initial_strategy=warm_start,
            cancel_token=cancel_token,
        )
        return [
            MeanPayoffSolution(
                gain=result.gain,
                lower_bound=result.gain - tolerance,
                upper_bound=result.gain + tolerance,
                strategy=result.strategy,
                bias=result.bias,
                solver=solver,
                iterations=result.iterations,
            )
            for result in results
        ]
    if solver == "value_iteration":
        results = batched_relative_value_iteration(
            mdp,
            weight_matrix,
            tolerance=tolerance,
            max_iterations=max_iterations,
            initial_bias=warm_start_bias,
            cancel_token=cancel_token,
        )
        return [
            MeanPayoffSolution(
                gain=result.gain,
                lower_bound=result.lower_bound,
                upper_bound=result.upper_bound,
                strategy=result.strategy,
                bias=result.bias,
                solver=solver,
                iterations=result.iterations,
            )
            for result in results
        ]
    if solver == "linear_program":
        return [
            solve_mean_payoff(
                mdp,
                weight_matrix[j],
                solver=solver,
                tolerance=tolerance,
                max_iterations=max_iterations,
                warm_start=warm_start,
                warm_start_bias=warm_start_bias,
            )
            for j in range(weight_matrix.shape[0])
        ]
    raise SolverError(f"unknown mean-payoff solver {solver!r}; choose from {SOLVER_BACKENDS}")
