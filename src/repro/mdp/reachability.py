"""Structural (graph) analysis of MDPs.

Provides reachability, maximal end component decomposition and a unichain check.
The unichain property is what justifies using the average-reward solvers in
:mod:`repro.mdp`: the paper argues (Appendix C) that every strategy of its
selfish-mining MDP induces an ergodic chain, and these utilities let the test
suite verify that claim mechanically on constructed models.
"""

from __future__ import annotations

from typing import List, Set

import networkx as nx
import numpy as np

from .model import MDP
from .strategy import Strategy


def underlying_digraph(mdp: MDP) -> nx.DiGraph:
    """Return the directed graph with an edge for every positive-probability move."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(mdp.num_states))
    for row in range(mdp.num_rows):
        state = int(mdp.row_state[row])
        start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
        for t in range(start, end):
            graph.add_edge(state, int(mdp.trans_succ[t]))
    return graph


def reachable_states(mdp: MDP, from_state: int | None = None) -> Set[int]:
    """Return the set of states reachable from ``from_state`` (default: initial)."""
    source = mdp.initial_state if from_state is None else from_state
    graph = underlying_digraph(mdp)
    return {source} | set(nx.descendants(graph, source))


def strategy_digraph(mdp: MDP, strategy: Strategy) -> nx.DiGraph:
    """Return the directed graph of the Markov chain induced by ``strategy``."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(mdp.num_states))
    for state in range(mdp.num_states):
        row = strategy.row(state)
        start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
        for t in range(start, end):
            graph.add_edge(state, int(mdp.trans_succ[t]))
    return graph


def recurrent_classes(mdp: MDP, strategy: Strategy) -> List[Set[int]]:
    """Return the recurrent classes (bottom SCCs) of the induced Markov chain."""
    graph = strategy_digraph(mdp, strategy)
    condensation = nx.condensation(graph)
    classes: List[Set[int]] = []
    for node in condensation.nodes:
        if condensation.out_degree(node) == 0:
            classes.append(set(condensation.nodes[node]["members"]))
    return classes


def is_unichain(mdp: MDP, strategies: List[Strategy] | None = None, samples: int = 20, seed: int = 0) -> bool:
    """Heuristically check the unichain property.

    A model is unichain if every positional strategy induces a chain with a single
    recurrent class.  Enumerating all strategies is exponential, so this check
    verifies the given ``strategies`` plus ``samples`` random strategies; it is
    intended for tests on small models, not as a proof.
    """
    rng = np.random.default_rng(seed)
    candidates = list(strategies or [])
    candidates.append(Strategy.first_action(mdp))
    for _ in range(samples):
        rows = np.empty(mdp.num_states, dtype=np.int64)
        for state in range(mdp.num_states):
            start, end = int(mdp.state_row_offsets[state]), int(mdp.state_row_offsets[state + 1])
            rows[state] = rng.integers(start, end)
        candidates.append(Strategy(mdp, rows))
    return all(len(recurrent_classes(mdp, strategy)) == 1 for strategy in candidates)


def end_components(mdp: MDP) -> List[Set[int]]:
    """Return the maximal end components (MECs) of the MDP.

    Implementation: iteratively decompose into SCCs of the underlying graph and
    remove state-action pairs that can leave their SCC, until a fixed point.
    """
    # Start with every state keeping every action row.
    remaining_rows = {row for row in range(mdp.num_rows)}
    states = set(range(mdp.num_states))
    while True:
        graph = nx.DiGraph()
        graph.add_nodes_from(states)
        for row in remaining_rows:
            state = int(mdp.row_state[row])
            start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
            for t in range(start, end):
                graph.add_edge(state, int(mdp.trans_succ[t]))
        component_of = {}
        components = list(nx.strongly_connected_components(graph))
        for index, component in enumerate(components):
            for node in component:
                component_of[node] = index
        removed_any = False
        for row in list(remaining_rows):
            state = int(mdp.row_state[row])
            start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
            for t in range(start, end):
                succ = int(mdp.trans_succ[t])
                if component_of.get(succ) != component_of.get(state):
                    remaining_rows.discard(row)
                    removed_any = True
                    break
        if not removed_any:
            break
    states_with_rows = {int(mdp.row_state[row]) for row in remaining_rows}
    graph = nx.DiGraph()
    graph.add_nodes_from(states_with_rows)
    for row in remaining_rows:
        state = int(mdp.row_state[row])
        start, end = int(mdp.row_trans_offsets[row]), int(mdp.row_trans_offsets[row + 1])
        for t in range(start, end):
            succ = int(mdp.trans_succ[t])
            if succ in states_with_rows:
                graph.add_edge(state, succ)
    return [set(component) for component in nx.strongly_connected_components(graph) if component]
