"""Relative value iteration for mean-payoff (average-reward) MDPs.

For unichain MDPs the optimal gain is constant across states and relative value
iteration converges to it; the span of the Bellman residual gives certified lower
and upper bounds on the optimal gain at every iteration (Puterman 1994, Section
8.5.5), which is the formal guarantee the analysis relies on.

An aperiodicity transformation (damping) is applied so that convergence does not
depend on the periodicity of the underlying graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .model import MDP
from .strategy import Strategy


@dataclass
class RelativeValueIterationResult:
    """Result of relative value iteration.

    Attributes:
        gain: Estimated optimal mean payoff (midpoint of the certified bounds).
        lower_bound: Certified lower bound on the optimal gain.
        upper_bound: Certified upper bound on the optimal gain.
        bias: Relative value (bias) vector at termination.
        strategy: A greedy strategy with respect to the final bias vector.
        iterations: Number of iterations performed.
        converged: Whether the span criterion was met within the budget.
    """

    gain: float
    lower_bound: float
    upper_bound: float
    bias: np.ndarray
    strategy: Strategy
    iterations: int
    converged: bool

    @property
    def bound_width(self) -> float:
        """Width of the certified gain interval."""
        return self.upper_bound - self.lower_bound


def _bellman_backup(
    mdp: MDP, row_rewards: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return per-state optimal backup values and the arg-max rows."""
    continuation = mdp.trans_prob * values[mdp.trans_succ]
    row_values = row_rewards + np.add.reduceat(continuation, mdp.row_trans_offsets[:-1])
    state_values = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1])
    # Recover an arg-max row per state: first row attaining the maximum.
    is_best = row_values >= state_values[mdp.row_state] - 1e-12
    row_indices = np.arange(mdp.num_rows)
    # For every state pick the smallest row index marked best.
    best_rows = np.full(mdp.num_states, -1, dtype=np.int64)
    candidate_rows = row_indices[is_best]
    candidate_states = mdp.row_state[is_best]
    # Reverse order so that the final assignment per state is the smallest row.
    best_rows[candidate_states[::-1]] = candidate_rows[::-1]
    return state_values, best_rows


def relative_value_iteration(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    initial_bias: Optional[np.ndarray] = None,
    raise_on_divergence: bool = True,
) -> RelativeValueIterationResult:
    """Solve the mean-payoff MDP with relative value iteration.

    Args:
        mdp: The model to solve.
        reward_weights: Weights combining the model's reward components into the
            scalar reward being maximised.
        tolerance: Termination threshold on the span of the Bellman residual;
            the certified gain interval has at most this width at termination.
        max_iterations: Iteration budget.
        damping: Aperiodicity-transformation parameter in (0, 1]; the update is
            ``h <- (1 - damping) * h + damping * T h``.  The reported gain is
            rescaled back to the original model.
        initial_bias: Optional warm-start bias vector.
        raise_on_divergence: If true, exceeding the budget raises
            :class:`~repro.exceptions.ConvergenceError`; otherwise the best
            available bounds are returned with ``converged=False``.

    Returns:
        A :class:`RelativeValueIterationResult` with certified gain bounds and a
        greedy strategy.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    row_rewards = mdp.expected_row_rewards(reward_weights)
    if initial_bias is not None:
        initial_bias = np.asarray(initial_bias, dtype=float)
        if initial_bias.shape != (mdp.num_states,):
            raise ValueError(
                f"initial_bias must have shape ({mdp.num_states},), "
                f"got {initial_bias.shape}"
            )
    values = np.zeros(mdp.num_states) if initial_bias is None else initial_bias.copy()
    reference = mdp.initial_state
    lower = -np.inf
    upper = np.inf
    best_rows = mdp.uniform_random_row_choice()
    iterations = 0
    converged = False

    for iterations in range(1, max_iterations + 1):
        backup, best_rows = _bellman_backup(mdp, row_rewards, values)
        # Damped update keeps the iteration aperiodic:  T_damp h = (1-d) h + d T h.
        residual = backup - values
        lower = float(np.min(residual))
        upper = float(np.max(residual))
        if upper - lower < tolerance:
            converged = True
            break
        values = (1.0 - damping) * values + damping * backup
        values = values - values[reference]

    if not converged and raise_on_divergence:
        raise ConvergenceError(
            f"relative value iteration did not converge within {max_iterations} iterations "
            f"(residual span {upper - lower:.3e})"
        )

    # The residual of the damped operator relates to the original gain by 1/damping.
    # We compute the final (undamped) residual bounds explicitly for the certificate.
    backup, best_rows = _bellman_backup(mdp, row_rewards, values)
    residual = backup - values
    lower = float(np.min(residual))
    upper = float(np.max(residual))
    gain = 0.5 * (lower + upper)
    return RelativeValueIterationResult(
        gain=gain,
        lower_bound=lower,
        upper_bound=upper,
        bias=values - values[reference],
        strategy=Strategy(mdp, best_rows),
        iterations=iterations,
        converged=converged,
    )
