"""Relative value iteration for mean-payoff (average-reward) MDPs.

For unichain MDPs the optimal gain is constant across states and relative value
iteration converges to it; the span of the Bellman residual gives certified lower
and upper bounds on the optimal gain at every iteration (Puterman 1994, Section
8.5.5), which is the formal guarantee the analysis relies on.

An aperiodicity transformation (damping) is applied so that convergence does not
depend on the periodicity of the underlying graph.

Both entry points accept an optional
:class:`~repro.mdp.cancellation.CancellationToken` and poll it once per sweep,
raising :class:`~repro.exceptions.SolverCancelled` at the next iteration
boundary when it is set -- this is how portfolio losers stop early instead of
running out their full budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .cancellation import CancellationToken, check_cancelled
from .model import MDP
from .strategy import Strategy


@dataclass
class RelativeValueIterationResult:
    """Result of relative value iteration.

    Attributes:
        gain: Estimated optimal mean payoff (midpoint of the certified bounds).
        lower_bound: Certified lower bound on the optimal gain.
        upper_bound: Certified upper bound on the optimal gain.
        bias: Relative value (bias) vector at termination.
        strategy: A greedy strategy with respect to the final bias vector.
        iterations: Number of iterations performed.
        converged: Whether the span criterion was met within the budget.
    """

    gain: float
    lower_bound: float
    upper_bound: float
    bias: np.ndarray
    strategy: Strategy
    iterations: int
    converged: bool

    @property
    def bound_width(self) -> float:
        """Width of the certified gain interval."""
        return self.upper_bound - self.lower_bound


def _first_best_rows(mdp: MDP, row_values: np.ndarray, state_values: np.ndarray) -> np.ndarray:
    """Return, per state, the smallest row index attaining the state's maximum."""
    is_best = row_values >= state_values[mdp.row_state] - 1e-12
    row_indices = np.arange(mdp.num_rows)
    best_rows = np.full(mdp.num_states, -1, dtype=np.int64)
    candidate_rows = row_indices[is_best]
    candidate_states = mdp.row_state[is_best]
    # Reverse order so that the final assignment per state is the smallest row.
    best_rows[candidate_states[::-1]] = candidate_rows[::-1]
    return best_rows


def _bellman_backup(
    mdp: MDP, row_rewards: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return per-state optimal backup values and the arg-max rows."""
    continuation = mdp.trans_prob * values[mdp.trans_succ]
    row_values = row_rewards + np.add.reduceat(continuation, mdp.row_trans_offsets[:-1])
    state_values = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1])
    return state_values, _first_best_rows(mdp, row_values, state_values)


def _batched_bellman_backup(
    mdp: MDP, row_rewards: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised backup over ``k`` reward columns at once.

    Args:
        mdp: The model being solved.
        row_rewards: Expected immediate rewards, shape ``(num_rows, k)``.
        values: Current value estimates, shape ``(num_states, k)``.

    Returns:
        ``(state_values, row_values)`` of shapes ``(num_states, k)`` and
        ``(num_rows, k)``; the arg-max rows are extracted per column only when
        needed (at termination) since they are not used inside the iteration.
    """
    continuation = mdp.trans_prob[:, None] * values[mdp.trans_succ]
    row_values = row_rewards + np.add.reduceat(continuation, mdp.row_trans_offsets[:-1], axis=0)
    state_values = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1], axis=0)
    return state_values, row_values


def relative_value_iteration(
    mdp: MDP,
    reward_weights: Sequence[float],
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    initial_bias: Optional[np.ndarray] = None,
    raise_on_divergence: bool = True,
    cancel_token: Optional[CancellationToken] = None,
) -> RelativeValueIterationResult:
    """Solve the mean-payoff MDP with relative value iteration.

    Args:
        mdp: The model to solve.
        reward_weights: Weights combining the model's reward components into the
            scalar reward being maximised.
        tolerance: Termination threshold on the span of the Bellman residual;
            the certified gain interval has at most this width at termination.
        max_iterations: Iteration budget.
        damping: Aperiodicity-transformation parameter in (0, 1]; the update is
            ``h <- (1 - damping) * h + damping * T h``.  The reported gain is
            rescaled back to the original model.
        initial_bias: Optional warm-start bias vector.
        raise_on_divergence: If true, exceeding the budget raises
            :class:`~repro.exceptions.ConvergenceError`; otherwise the best
            available bounds are returned with ``converged=False``.
        cancel_token: Optional cooperative stop signal, polled once per sweep.

    Returns:
        A :class:`RelativeValueIterationResult` with certified gain bounds and a
        greedy strategy.

    Raises:
        SolverCancelled: If ``cancel_token`` was cancelled before convergence.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    row_rewards = mdp.expected_row_rewards(reward_weights)
    if initial_bias is not None:
        initial_bias = np.asarray(initial_bias, dtype=float)
        if initial_bias.shape != (mdp.num_states,):
            raise ValueError(
                f"initial_bias must have shape ({mdp.num_states},), "
                f"got {initial_bias.shape}"
            )
    values = np.zeros(mdp.num_states) if initial_bias is None else initial_bias.copy()
    reference = mdp.initial_state
    lower = -np.inf
    upper = np.inf
    best_rows = mdp.uniform_random_row_choice()
    iterations = 0
    converged = False

    for iterations in range(1, max_iterations + 1):
        check_cancelled(cancel_token, solver="relative value iteration", iterations=iterations - 1)
        backup, best_rows = _bellman_backup(mdp, row_rewards, values)
        # Damped update keeps the iteration aperiodic:  T_damp h = (1-d) h + d T h.
        residual = backup - values
        lower = float(np.min(residual))
        upper = float(np.max(residual))
        if upper - lower < tolerance:
            converged = True
            break
        values = (1.0 - damping) * values + damping * backup
        values = values - values[reference]

    if not converged and raise_on_divergence:
        raise ConvergenceError(
            f"relative value iteration did not converge within {max_iterations} iterations "
            f"(residual span {upper - lower:.3e})"
        )

    # The residual of the damped operator relates to the original gain by 1/damping.
    # We compute the final (undamped) residual bounds explicitly for the certificate.
    backup, best_rows = _bellman_backup(mdp, row_rewards, values)
    residual = backup - values
    lower = float(np.min(residual))
    upper = float(np.max(residual))
    gain = 0.5 * (lower + upper)
    return RelativeValueIterationResult(
        gain=gain,
        lower_bound=lower,
        upper_bound=upper,
        bias=values - values[reference],
        strategy=Strategy(mdp, best_rows),
        iterations=iterations,
        converged=converged,
    )


def batched_relative_value_iteration(
    mdp: MDP,
    weight_matrix: np.ndarray,
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
    damping: float = 0.5,
    initial_bias: Optional[np.ndarray] = None,
    raise_on_divergence: bool = True,
    cancel_token: Optional[CancellationToken] = None,
) -> List[RelativeValueIterationResult]:
    """Solve ``k`` mean-payoff problems over one model in a single vectorised run.

    All problems share the MDP's transition structure and differ only in the
    reward weights (one row of ``weight_matrix`` per problem), which is exactly
    the shape of Algorithm 1's batched beta probes: the expensive gather
    ``values[trans_succ]`` and both ``reduceat`` passes are performed once per
    iteration for all ``k`` columns instead of ``k`` times.

    Args:
        mdp: The model to solve.
        weight_matrix: Reward-weight matrix of shape ``(k, num_reward_components)``;
            column ``j`` of the internal value matrix solves the problem with
            weights ``weight_matrix[j]``.
        tolerance: Per-column termination threshold on the Bellman-residual span.
        max_iterations: Iteration budget shared by all columns.
        damping: Aperiodicity-transformation parameter in (0, 1].
        initial_bias: Optional warm-start bias, either one vector of shape
            ``(num_states,)`` (broadcast to every column) or a matrix of shape
            ``(num_states, k)``.
        raise_on_divergence: If true, any column exceeding the budget raises
            :class:`~repro.exceptions.ConvergenceError`.
        cancel_token: Optional cooperative stop signal, polled once per joint
            sweep; cancellation aborts all columns at the same boundary.

    Returns:
        One :class:`RelativeValueIterationResult` per row of ``weight_matrix``,
        in order.  Per-column ``iterations`` records the sweep at which that
        column's span first dropped below ``tolerance``; the certified bounds
        are recomputed from the final (joint) iterate, so columns that converged
        early can only have tightened further.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    weight_matrix = np.asarray(weight_matrix, dtype=float)
    if weight_matrix.ndim != 2 or weight_matrix.shape[1] != mdp.num_reward_components:
        raise ValueError(
            f"weight_matrix must have shape (k, {mdp.num_reward_components}), "
            f"got {weight_matrix.shape}"
        )
    num_probes = weight_matrix.shape[0]
    if num_probes == 0:
        return []
    row_rewards = mdp.expected_row_reward_components() @ weight_matrix.T

    values = np.zeros((mdp.num_states, num_probes))
    if initial_bias is not None:
        initial_bias = np.asarray(initial_bias, dtype=float)
        if initial_bias.shape == (mdp.num_states,):
            values = np.repeat(initial_bias[:, None], num_probes, axis=1)
        elif initial_bias.shape == (mdp.num_states, num_probes):
            values = initial_bias.copy()
        else:
            raise ValueError(
                f"initial_bias must have shape ({mdp.num_states},) or "
                f"({mdp.num_states}, {num_probes}), got {initial_bias.shape}"
            )
    reference = mdp.initial_state
    converged_at = np.zeros(num_probes, dtype=np.int64)

    for iteration in range(1, max_iterations + 1):
        check_cancelled(
            cancel_token, solver="batched relative value iteration", iterations=iteration - 1
        )
        backup, _ = _batched_bellman_backup(mdp, row_rewards, values)
        residual = backup - values
        span = residual.max(axis=0) - residual.min(axis=0)
        newly = (span < tolerance) & (converged_at == 0)
        converged_at[newly] = iteration
        if np.all(converged_at > 0):
            break
        values = (1.0 - damping) * values + damping * backup
        values = values - values[reference]

    if not np.all(converged_at > 0) and raise_on_divergence:
        stuck = int(np.sum(converged_at == 0))
        raise ConvergenceError(
            f"batched relative value iteration: {stuck} of {num_probes} columns did not "
            f"converge within {max_iterations} iterations"
        )

    backup, row_values = _batched_bellman_backup(mdp, row_rewards, values)
    residual = backup - values
    results: List[RelativeValueIterationResult] = []
    for j in range(num_probes):
        lower = float(np.min(residual[:, j]))
        upper = float(np.max(residual[:, j]))
        state_values = np.maximum.reduceat(row_values[:, j], mdp.state_row_offsets[:-1])
        best_rows = _first_best_rows(mdp, row_values[:, j], state_values)
        results.append(
            RelativeValueIterationResult(
                gain=0.5 * (lower + upper),
                lower_bound=lower,
                upper_bound=upper,
                bias=values[:, j] - values[reference, j],
                strategy=Strategy(mdp, best_rows),
                iterations=int(converged_at[j]) if converged_at[j] > 0 else max_iterations,
                converged=bool(converged_at[j] > 0),
            )
        )
    return results
