"""Linear-programming formulation of the unichain mean-payoff MDP problem.

The primal LP (Puterman 1994, Section 9.3) over variables ``g`` (gain) and
``h`` (bias) is::

    minimise    g
    subject to  g + h(s) - sum_{s'} P(s'|s,a) h(s')  >=  r(s, a)     for all (s, a)

For unichain MDPs its optimal value equals the optimal mean payoff.  The LP is
solved with scipy's HiGHS backend.  This solver is mainly used as an independent
cross-check of value / policy iteration on small and medium models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from ..exceptions import SolverError
from .model import MDP
from .strategy import Strategy


@dataclass
class LinearProgramResult:
    """Result of the LP-based mean-payoff solver.

    Attributes:
        gain: Optimal mean payoff (the LP optimum).
        bias: Bias vector from the LP solution.
        strategy: Greedy strategy extracted from the bias vector.
        status: Solver status string reported by scipy.
    """

    gain: float
    bias: np.ndarray
    strategy: Strategy
    status: str


def solve_mean_payoff_lp(mdp: MDP, reward_weights: Sequence[float]) -> LinearProgramResult:
    """Solve the mean-payoff MDP via linear programming.

    Args:
        mdp: The model to solve (assumed unichain under every strategy).
        reward_weights: Weights combining reward components into the scalar
            reward being maximised.

    Raises:
        SolverError: If the LP solver does not report success.
    """
    num_states = mdp.num_states
    num_rows = mdp.num_rows
    row_rewards = mdp.expected_row_rewards(reward_weights)

    # Variables: x = [g, h_0, ..., h_{n-1}].
    # Constraint per row: -g - h(s) + sum P h(s') <= -r(s, a).
    gain_column = -np.ones((num_rows, 1))
    owner = sp.csr_matrix(
        (np.ones(num_rows), (np.arange(num_rows), mdp.row_state)),
        shape=(num_rows, num_states),
    )
    trans_rows = np.repeat(
        np.arange(num_rows), np.diff(mdp.row_trans_offsets)
    )
    successor = sp.csr_matrix(
        (mdp.trans_prob, (trans_rows, mdp.trans_succ)), shape=(num_rows, num_states)
    )
    a_ub = sp.hstack([sp.csr_matrix(gain_column), successor - owner], format="csr")
    b_ub = -row_rewards

    cost = np.zeros(num_states + 1)
    cost[0] = 1.0  # minimise the gain variable
    bounds = [(None, None)] * (num_states + 1)

    result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise SolverError(f"mean-payoff LP failed: {result.message}")

    gain = float(result.x[0])
    bias = np.asarray(result.x[1:], dtype=float)

    # Extract a greedy strategy with respect to the LP bias vector.
    continuation = mdp.trans_prob * bias[mdp.trans_succ]
    row_values = row_rewards + np.add.reduceat(continuation, mdp.row_trans_offsets[:-1])
    state_best = np.maximum.reduceat(row_values, mdp.state_row_offsets[:-1])
    is_best = row_values >= state_best[mdp.row_state] - 1e-9
    best_rows = np.full(num_states, -1, dtype=np.int64)
    row_indices = np.arange(num_rows)
    candidate_rows = row_indices[is_best]
    candidate_states = mdp.row_state[is_best]
    best_rows[candidate_states[::-1]] = candidate_rows[::-1]

    return LinearProgramResult(
        gain=gain,
        bias=bias,
        strategy=Strategy(mdp, best_rows),
        status=str(result.message),
    )
