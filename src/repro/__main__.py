"""Allow ``python -m repro`` as an alias for the ``repro`` console script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
