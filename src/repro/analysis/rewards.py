"""The paper's reward-function family ``r_beta``.

The selfish-mining MDP attaches a two-component reward vector ``(r_A, r_H)`` to
every transition: the number of adversarial and honest blocks finalised by the
transition.  Section 3.3 of the paper defines, for ``beta`` in ``[0, 1]``,

    r_beta  =  (1 - beta) * r_A  -  beta * r_H  =  r_A - beta * (r_A + r_H),

whose optimal mean payoff is monotonically decreasing in ``beta`` and crosses
zero exactly at the optimal expected relative revenue (Theorem 3.1).  Because
rewards are stored as vectors, evaluating a new ``beta`` only changes the weight
vector; the MDP itself is never rebuilt.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._validation import check_probability
from ..attacks.fork_state import REWARD_ADVERSARY_INDEX, REWARD_HONEST_INDEX

#: Weights selecting the adversarial-blocks component ``r_A``.
ADVERSARY_WEIGHTS: Tuple[float, float] = (1.0, 0.0)

#: Weights selecting the honest-blocks component ``r_H``.
HONEST_WEIGHTS: Tuple[float, float] = (0.0, 1.0)

#: Weights selecting the total number of finalised blocks ``r_A + r_H``.
TOTAL_WEIGHTS: Tuple[float, float] = (1.0, 1.0)


def beta_reward_weights(beta: float) -> Tuple[float, float]:
    """Return the weight vector realising ``r_beta = r_A - beta * (r_A + r_H)``.

    Args:
        beta: The reward-shift parameter in ``[0, 1]``.

    Returns:
        A weight tuple ``w`` such that ``w[0] * r_A + w[1] * r_H = r_beta``.
    """
    beta = check_probability(beta, "beta")
    weights = [0.0, 0.0]
    weights[REWARD_ADVERSARY_INDEX] = 1.0 - beta
    weights[REWARD_HONEST_INDEX] = -beta
    return (weights[0], weights[1])


def reward_monotonicity_gap(beta_low: float, beta_high: float, total_rate: float) -> float:
    """Lower bound on how much the optimal mean payoff drops from one beta to a larger one.

    Because ``r_beta - r_beta' = (beta' - beta) * (r_A + r_H)`` and the long-run
    rate of finalised blocks is at least ``total_rate`` under every strategy, the
    optimal mean payoff decreases by at least ``(beta_high - beta_low) * total_rate``.
    Used by the certificate checks.
    """
    if beta_high < beta_low:
        raise ValueError("beta_high must be >= beta_low")
    return (beta_high - beta_low) * max(total_rate, 0.0)


def minimum_total_block_rate(p: float, d: int, f: int) -> float:
    """The paper's lower bound ``delta = (1 - p) / (1 - p + p * d * f)``.

    Appendix C shows that under every strategy the long-run rate at which blocks
    are finalised is at least ``delta``, which makes the expected relative
    revenue well defined and the binary search sound.
    """
    p = check_probability(p, "p")
    if p == 1.0:
        return 0.0
    return (1.0 - p) / (1.0 - p + p * d * f)


def combine_components(r_adversary: np.ndarray, r_honest: np.ndarray, beta: float) -> np.ndarray:
    """Apply ``r_beta`` to explicit per-transition component arrays (helper for tests)."""
    return r_adversary - beta * (r_adversary + r_honest)
