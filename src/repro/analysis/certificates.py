"""Certificates validating the premises of Theorem 3.1 on a constructed model.

The correctness of Algorithm 1 rests on structural facts about the selfish-mining
MDP that the paper proves on paper (Appendix C):

1. every strategy induces a chain with a single recurrent class containing the
   initial state (ergodicity / unichain),
2. the long-run rate of finalised blocks is strictly positive (at least
   ``delta = (1-p) / (1-p + p*d*f)``), and
3. the optimal mean payoff ``MP*_beta`` is monotonically decreasing in ``beta``.

These checks give a mechanical, per-model confirmation of those premises
(sampling strategies for 1, evaluating the honest and optimal strategies for 2,
probing a beta grid for 3).  They are exercised by the test suite and exposed to
users who modify the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..config import AnalysisConfig
from ..mdp import MDP, Strategy, induced_markov_chain, is_unichain, solve_mean_payoff
from .rewards import TOTAL_WEIGHTS, beta_reward_weights


@dataclass
class CertificateReport:
    """Outcome of :func:`check_theorem_premises`.

    Attributes:
        unichain: Whether all sampled strategies induced a single recurrent class.
        min_total_block_rate: Smallest long-run finalised-block rate observed.
        monotone: Whether the probed optimal mean payoffs were non-increasing in beta.
        probed_betas: The beta grid probed for monotonicity.
        probed_gains: The corresponding optimal mean payoffs.
        problems: Human-readable list of violations (empty when all premises hold).
    """

    unichain: bool
    min_total_block_rate: float
    monotone: bool
    probed_betas: List[float] = field(default_factory=list)
    probed_gains: List[float] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        """Whether every probed premise holds."""
        return not self.problems


def check_theorem_premises(
    mdp: MDP,
    *,
    config: Optional[AnalysisConfig] = None,
    betas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    strategy_samples: int = 10,
    monotonicity_tolerance: float = 1e-7,
    seed: int = 0,
) -> CertificateReport:
    """Mechanically check the premises of Theorem 3.1 on a constructed MDP.

    Args:
        mdp: The selfish-mining MDP to check.
        config: Solver configuration for the monotonicity probe.
        betas: Beta grid probed for monotonicity of the optimal mean payoff.
        strategy_samples: Number of random strategies sampled for the unichain check.
        monotonicity_tolerance: Allowed numerical violation of monotonicity.
        seed: Seed of the random strategy sampler.
    """
    config = config or AnalysisConfig()
    problems: List[str] = []

    # Premise 1: unichain under sampled strategies.
    unichain = is_unichain(mdp, samples=strategy_samples, seed=seed)
    if not unichain:
        problems.append("a sampled strategy induced more than one recurrent class")

    # Premise 2: positive long-run finalised-block rate under representative strategies.
    min_rate = float("inf")
    for strategy in (Strategy.first_action(mdp),):
        chain = induced_markov_chain(mdp, strategy)
        rate = float(chain.long_run_reward() @ TOTAL_WEIGHTS)
        min_rate = min(min_rate, rate)
    if min_rate <= 0.0:
        problems.append(f"long-run finalised-block rate {min_rate} is not positive")

    # Premise 3: MP*_beta non-increasing in beta.
    gains: List[float] = []
    for beta in betas:
        solution = solve_mean_payoff(
            mdp,
            beta_reward_weights(beta),
            solver=config.solver,
            tolerance=config.solver_tolerance,
            max_iterations=config.max_solver_iterations,
        )
        gains.append(solution.gain)
    monotone = all(
        gains[index + 1] <= gains[index] + monotonicity_tolerance
        for index in range(len(gains) - 1)
    )
    if not monotone:
        problems.append("optimal mean payoff is not monotonically decreasing in beta")

    return CertificateReport(
        unichain=unichain,
        min_total_block_rate=min_rate,
        monotone=monotone,
        probed_betas=list(betas),
        probed_gains=gains,
        problems=problems,
    )
