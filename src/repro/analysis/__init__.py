"""Formal analysis of the selfish-mining MDP.

Implements the paper's Algorithm 1 (binary search over the reward parameter
beta, each step solving a mean-payoff MDP) together with supporting machinery:
the ``r_beta`` reward family, exact evaluation of fixed strategies (stationary
ratio of adversarial to total finalised blocks), a faster Dinkelbach-style ratio
optimiser used for cross-checks, and certificates validating Theorem 3.1's
premises on constructed models.
"""

from .rewards import (
    ADVERSARY_WEIGHTS,
    HONEST_WEIGHTS,
    TOTAL_WEIGHTS,
    beta_reward_weights,
)
from .errev import evaluate_strategy_errev, honest_reference_errev
from .algorithm1 import AdaptiveProbeScheduler, FormalAnalysisResult, formal_analysis
from .dinkelbach import DinkelbachResult, dinkelbach_analysis
from .certificates import CertificateReport, check_theorem_premises

__all__ = [
    "ADVERSARY_WEIGHTS",
    "HONEST_WEIGHTS",
    "TOTAL_WEIGHTS",
    "beta_reward_weights",
    "evaluate_strategy_errev",
    "honest_reference_errev",
    "AdaptiveProbeScheduler",
    "FormalAnalysisResult",
    "formal_analysis",
    "DinkelbachResult",
    "dinkelbach_analysis",
    "CertificateReport",
    "check_theorem_premises",
]
