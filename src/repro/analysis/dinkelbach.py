"""Dinkelbach-style ratio optimisation of the expected relative revenue.

Algorithm 1 bisects on ``beta``; Dinkelbach's classic scheme for fractional
objectives replaces the bisection update with ``beta <- ERRev(sigma_beta)``,
where ``sigma_beta`` is the mean-payoff-optimal strategy for ``r_beta``.  The
sequence of betas is monotonically non-decreasing and converges to the optimal
ratio, typically in a handful of iterations.  The library ships it as

* a faster alternative to Algorithm 1 for large models, and
* an independent cross-check: both procedures must agree up to their precision,
  which the test suite verifies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..config import AnalysisConfig
from ..exceptions import ConvergenceError
from ..mdp import MDP, Strategy, solve_mean_payoff
from .errev import evaluate_strategy_errev
from .rewards import beta_reward_weights


@dataclass
class DinkelbachIteration:
    """Record of a single Dinkelbach iteration.

    Attributes:
        beta: The ratio estimate the mean-payoff MDP was solved at.
        optimal_mean_payoff: Optimal mean payoff of ``r_beta``.
        next_beta: Exact ERRev of the extracted strategy (the next estimate).
    """

    beta: float
    optimal_mean_payoff: float
    next_beta: float


@dataclass
class DinkelbachResult:
    """Output of the Dinkelbach ratio optimisation.

    Attributes:
        errev: Converged expected relative revenue estimate.
        strategy: Strategy achieving ``errev``.
        iterations: Per-iteration log.
        total_seconds: Wall-clock time of the whole procedure.
    """

    errev: float
    strategy: Strategy
    iterations: List[DinkelbachIteration] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def num_iterations(self) -> int:
        """Number of mean-payoff solves performed."""
        return len(self.iterations)


def dinkelbach_analysis(
    mdp: MDP,
    config: Optional[AnalysisConfig] = None,
    *,
    initial_beta: float = 0.0,
    max_iterations: int = 50,
) -> DinkelbachResult:
    """Compute the optimal ERRev by Dinkelbach iteration.

    Args:
        mdp: Selfish-mining MDP with reward components ``(r_A, r_H)``.
        config: Analysis configuration; ``epsilon`` is used as the convergence
            threshold on successive ratio estimates.
        initial_beta: Starting ratio estimate (0, or e.g. the honest value ``p``).
        max_iterations: Safety budget on the number of mean-payoff solves.

    Raises:
        ConvergenceError: If the ratio estimates do not stabilise in time.
    """
    config = config or AnalysisConfig()
    start_time = time.perf_counter()
    beta = float(initial_beta)
    iterations: List[DinkelbachIteration] = []
    strategy: Optional[Strategy] = None

    for _ in range(max_iterations):
        solution = solve_mean_payoff(
            mdp,
            beta_reward_weights(beta),
            solver=config.solver,
            tolerance=config.solver_tolerance,
            max_iterations=config.max_solver_iterations,
            warm_start=strategy,
        )
        strategy = solution.strategy
        next_beta = evaluate_strategy_errev(mdp, strategy)
        iterations.append(
            DinkelbachIteration(
                beta=beta, optimal_mean_payoff=solution.gain, next_beta=next_beta
            )
        )
        if abs(next_beta - beta) < config.epsilon:
            return DinkelbachResult(
                errev=next_beta,
                strategy=strategy,
                iterations=iterations,
                total_seconds=time.perf_counter() - start_time,
            )
        beta = next_beta

    raise ConvergenceError(
        f"Dinkelbach iteration did not converge within {max_iterations} solves"
    )
