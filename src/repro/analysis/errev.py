"""Exact evaluation of the expected relative revenue of a fixed strategy.

For a positional strategy the induced Markov chain is ergodic (the paper's
Appendix C), so by the strong law of large numbers the expected relative revenue
equals the ratio of the stationary long-run rates of adversarial and total
finalised blocks.  This gives the *exact* ERRev guaranteed by a strategy, used

* to report the value achieved by the strategy returned by Algorithm 1,
* as the update rule of the Dinkelbach iteration, and
* to evaluate the honest baseline inside the MDP (which must equal ``p``).
"""

from __future__ import annotations

from ..exceptions import SolverError
from ..mdp import MDP, Strategy, induced_markov_chain
from .rewards import ADVERSARY_WEIGHTS, TOTAL_WEIGHTS


def evaluate_strategy_errev(mdp: MDP, strategy: Strategy) -> float:
    """Exact expected relative revenue of ``strategy`` in the selfish-mining MDP.

    Args:
        mdp: A selfish-mining MDP with reward components ``(r_A, r_H)``.
        strategy: The positional strategy to evaluate.

    Returns:
        ``E[r_A] / E[r_A + r_H]`` under the strategy's stationary distribution.

    Raises:
        SolverError: If the long-run total block rate is zero (which cannot
            happen for ``p < 1`` in well-formed models).
    """
    chain = induced_markov_chain(mdp, strategy)
    averages = chain.long_run_reward()
    adversary_rate = float(averages @ ADVERSARY_WEIGHTS)
    total_rate = float(averages @ TOTAL_WEIGHTS)
    if total_rate <= 0.0:
        raise SolverError(
            "the strategy finalises no blocks in the long run; ERRev is undefined"
        )
    value = adversary_rate / total_rate
    # Guard against tiny negative values introduced by the linear algebra.
    return min(max(value, 0.0), 1.0)


def honest_reference_errev(mdp: MDP) -> float:
    """ERRev of the immediate-release (honest-emulating) strategy inside the MDP.

    For ``d = f = 1`` this equals the adversary's resource fraction ``p``
    exactly, which the test suite uses as an end-to-end check of the transition
    kernel and the stationary analysis.  For larger ``d`` and ``f`` the value
    differs from ``p`` because the model's adversary always mines on every fork
    target; the closed-form honest baseline is
    :func:`repro.attacks.honest.honest_errev`.
    """
    from ..attacks.honest import immediate_release_strategy

    return evaluate_strategy_errev(mdp, immediate_release_strategy(mdp))
