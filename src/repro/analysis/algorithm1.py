"""Algorithm 1: the paper's fully automated formal analysis procedure.

Given the selfish-mining MDP and a precision ``epsilon``, the procedure performs
a binary search over ``beta`` in ``[0, 1]``.  Every iteration solves the
mean-payoff MDP under the reward ``r_beta``; the sign of the optimal mean payoff
decides the half in which the optimal expected relative revenue ``ERRev*`` lies
(Theorem 3.1: the optimal mean payoff is monotonically decreasing in ``beta``
and crosses zero exactly at ``ERRev*``).  On termination ``beta_low`` is an
``epsilon``-tight lower bound on ``ERRev*`` and the strategy that is optimal for
``r_{beta_low}`` achieves an ERRev within ``[ERRev* - epsilon, ERRev*]``.

With ``AnalysisConfig.batch_probes = k > 1`` every round instead places ``k``
evenly spaced probes inside the current interval and solves all of them in one
vectorised batched call against the shared model structure
(:func:`repro.mdp.solve_mean_payoff_batch`).  By Theorem 3.1 the probe gains
are decreasing in beta, so the zero crossing lies between the last non-negative
and the first negative probe: the interval shrinks by a factor of ``k + 1`` per
round while the per-round cost grows far slower than ``k`` because the
expensive solver passes are amortised over all probes.  The certified bounds
are the same as the sequential search's up to ``epsilon``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import AnalysisConfig
from ..exceptions import ModelError
from ..mdp import MDP, MeanPayoffSolution, Strategy, solve_mean_payoff, solve_mean_payoff_batch
from .errev import evaluate_strategy_errev
from .rewards import beta_reward_weights


@dataclass
class BinarySearchIteration:
    """Record of a single binary-search iteration (for reporting and tests).

    Attributes:
        beta: The beta value probed in this iteration.
        optimal_mean_payoff: The optimal mean payoff under ``r_beta``.
        beta_low: Lower end of the beta interval after the update.
        beta_up: Upper end of the beta interval after the update.
        solve_seconds: Wall-clock time of the mean-payoff solve.
        solver_iterations: Iterations the mean-payoff backend needed (policy
            improvement rounds or value-iteration sweeps; 0 for the LP).
    """

    beta: float
    optimal_mean_payoff: float
    beta_low: float
    beta_up: float
    solve_seconds: float
    solver_iterations: int = 0


@dataclass
class FormalAnalysisResult:
    """Output of Algorithm 1.

    Attributes:
        errev_lower_bound: The epsilon-tight lower bound on the optimal ERRev
            (the final ``beta_low``).
        beta_low: Final lower end of the binary-search interval.
        beta_up: Final upper end of the binary-search interval (an upper bound on
            the optimal ERRev within the MDP's strategy class).
        epsilon: The precision the search was run with.
        strategy: A strategy optimal for ``r_{beta_low}``; by Theorem 3.1 its
            ERRev lies in ``[ERRev* - epsilon, ERRev*]``.
        strategy_errev: Exact ERRev of ``strategy`` (stationary evaluation), or
            ``None`` if evaluation was disabled.
        iterations: Per-iteration log of the binary search.
        total_seconds: Total wall-clock time of the analysis.
        solver: Mean-payoff solver backend used.
        total_solver_iterations: Sum of backend iterations over every solve of
            the analysis (including the final strategy-extraction solve) -- the
            primary measure of warm-starting effectiveness.
        final_bias: Bias vector of the final solve, reusable as a warm start
            for an adjacent parameter point (``None`` for the LP backend only
            when no bias was produced).
        backend_wins: For the ``"portfolio"`` solver, how many solves each
            backend won (e.g. ``{"policy_iteration": 9, "value_iteration": 2}``);
            empty for the non-racing backends.
    """

    errev_lower_bound: float
    beta_low: float
    beta_up: float
    epsilon: float
    strategy: Strategy
    strategy_errev: Optional[float]
    iterations: List[BinarySearchIteration] = field(default_factory=list)
    total_seconds: float = 0.0
    solver: str = "policy_iteration"
    total_solver_iterations: int = 0
    final_bias: Optional[np.ndarray] = None
    backend_wins: Dict[str, int] = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        """Number of mean-payoff solves performed by the binary search."""
        return len(self.iterations)

    @property
    def interval_width(self) -> float:
        """Width of the final beta interval (less than ``epsilon`` on success)."""
        return self.beta_up - self.beta_low

    @property
    def winning_solver(self) -> Optional[str]:
        """The portfolio backend that won the most solves, ``None`` outside portfolio runs."""
        if not self.backend_wins:
            return None
        return max(self.backend_wins, key=lambda backend: self.backend_wins[backend])


def formal_analysis(
    mdp: MDP,
    config: Optional[AnalysisConfig] = None,
    *,
    beta_low: float = 0.0,
    beta_up: float = 1.0,
    initial_strategy_rows: Optional[np.ndarray] = None,
    initial_bias: Optional[np.ndarray] = None,
) -> FormalAnalysisResult:
    """Run the paper's Algorithm 1 on a selfish-mining MDP.

    Args:
        mdp: The MDP produced by :func:`repro.attacks.build_selfish_forks_mdp`
            (reward components ``(r_A, r_H)``).
        config: Analysis configuration (precision, solver backend, tolerances).
        beta_low: Initial lower end of the search interval (0 in the paper;
            callers may tighten it, e.g. to ``p``, since ERRev* >= p).
        beta_up: Initial upper end of the search interval.
        initial_strategy_rows: Optional warm-start row choices for the first
            solve, typically ``result.strategy.rows`` of an adjacent parameter
            point over a structurally identical MDP.  Silently ignored when
            incompatible with ``mdp`` (wrong length or rows not belonging to
            their states) or when ``config.warm_start`` is false.
        initial_bias: Optional warm-start bias vector for the first solve
            (``result.final_bias`` of an adjacent point); ignored under the
            same conditions, and dropped (cold start) when its shape does not
            match ``mdp.num_states`` or it contains non-finite entries, so that
            vectors carried across structurally different sweep points can
            never crash an analysis mid-sweep.

    Returns:
        A :class:`FormalAnalysisResult` with the epsilon-tight lower bound, the
        extracted strategy and the full iteration log.
    """
    config = config or AnalysisConfig()
    if not 0.0 <= beta_low <= beta_up <= 1.0:
        raise ValueError(f"invalid initial interval [{beta_low}, {beta_up}]")

    start_time = time.perf_counter()
    iterations: List[BinarySearchIteration] = []
    backend_wins: Dict[str, int] = {}
    warm_strategy: Optional[Strategy] = None
    warm_bias: Optional[np.ndarray] = None
    if config.warm_start:
        warm_strategy = _strategy_from_rows(mdp, initial_strategy_rows)
        warm_bias = _bias_from_vector(mdp, initial_bias)
    total_solver_iterations = 0

    while beta_up - beta_low >= config.epsilon:
        if config.batch_probes > 1:
            beta_low, beta_up, solutions, anchor = _batched_round(
                mdp, beta_low, beta_up, config, warm_strategy, warm_bias, iterations
            )
        else:
            beta = 0.5 * (beta_low + beta_up)
            solve_start = time.perf_counter()
            solution = _solve(mdp, beta, config, warm_strategy, warm_bias)
            solve_seconds = time.perf_counter() - solve_start
            if solution.gain < 0.0:
                beta_up = beta
            else:
                beta_low = beta
            iterations.append(
                BinarySearchIteration(
                    beta=beta,
                    optimal_mean_payoff=solution.gain,
                    beta_low=beta_low,
                    beta_up=beta_up,
                    solve_seconds=solve_seconds,
                    solver_iterations=solution.iterations,
                )
            )
            solutions, anchor = [solution], 0
        for solution in solutions:
            total_solver_iterations += solution.iterations
            _record_backend_win(solution, backend_wins)
        if config.warm_start:
            # The probe adjacent to the surviving interval seeds the next round.
            warm_strategy = solutions[anchor].strategy
            warm_bias = solutions[anchor].bias

    # Final solve at beta_low to extract the certified strategy.
    final_solution = _solve(mdp, beta_low, config, warm_strategy, warm_bias)
    total_solver_iterations += final_solution.iterations
    _record_backend_win(final_solution, backend_wins)
    strategy = final_solution.strategy
    strategy_errev = (
        evaluate_strategy_errev(mdp, strategy) if config.evaluate_strategy else None
    )

    return FormalAnalysisResult(
        errev_lower_bound=beta_low,
        beta_low=beta_low,
        beta_up=beta_up,
        epsilon=config.epsilon,
        strategy=strategy,
        strategy_errev=strategy_errev,
        iterations=iterations,
        total_seconds=time.perf_counter() - start_time,
        solver=config.solver,
        total_solver_iterations=total_solver_iterations,
        final_bias=final_solution.bias,
        backend_wins=backend_wins,
    )


def _bias_from_vector(mdp: MDP, bias) -> Optional[np.ndarray]:
    """Build a warm-start bias vector from caller input, or ``None`` if invalid.

    Like strategy rows, bias vectors carried across sweep grid points are
    advisory: anything that is not a finite 1-D float vector of length
    ``mdp.num_states`` (wrong length, ragged nested lists, NaNs from a failed
    donor solve) silently falls back to a cold start instead of crashing the
    analysis mid-sweep.
    """
    if bias is None:
        return None
    try:
        bias = np.asarray(bias, dtype=float)
    except (TypeError, ValueError):
        return None
    if bias.shape != (mdp.num_states,) or not np.all(np.isfinite(bias)):
        return None
    return bias


def _record_backend_win(solution: MeanPayoffSolution, wins: Dict[str, int]) -> None:
    """Tally which backend produced ``solution`` when the portfolio raced."""
    if solution.solver.startswith("portfolio:"):
        backend = solution.solver.split(":", 1)[1]
        wins[backend] = wins.get(backend, 0) + 1


def _batched_round(
    mdp: MDP,
    beta_low: float,
    beta_up: float,
    config: AnalysisConfig,
    warm_strategy: Optional[Strategy],
    warm_bias: Optional[np.ndarray],
    iterations: List[BinarySearchIteration],
) -> Tuple[float, float, List[MeanPayoffSolution], int]:
    """One batched binary-search round with ``k = config.batch_probes`` probes.

    Places ``k`` evenly spaced probes strictly inside ``(beta_low, beta_up)``,
    solves them in a single vectorised batched call, and shrinks the interval
    to the segment between the last probe with a non-negative gain and the
    first with a negative one (Theorem 3.1: the gains are decreasing in beta).

    Returns:
        ``(new_low, new_up, solutions, anchor)`` with ``solutions`` in probe
        order and ``anchor`` the index of the probe adjacent to the new
        interval (the best warm start for the next round).
    """
    k = config.batch_probes
    width = beta_up - beta_low
    betas = [beta_low + (j + 1) * width / (k + 1) for j in range(k)]
    weight_matrix = np.array([beta_reward_weights(beta) for beta in betas])
    solve_start = time.perf_counter()
    solutions = solve_mean_payoff_batch(
        mdp,
        weight_matrix,
        solver=config.solver,
        tolerance=config.solver_tolerance,
        max_iterations=config.max_solver_iterations,
        warm_start=warm_strategy if config.warm_start else None,
        warm_start_bias=warm_bias if config.warm_start else None,
        portfolio_deadline=config.portfolio_deadline,
    )
    round_seconds = time.perf_counter() - solve_start

    first_negative = next(
        (j for j, solution in enumerate(solutions) if solution.gain < 0.0), None
    )
    if first_negative is None:
        new_low, new_up = betas[-1], beta_up
        anchor = k - 1
    elif first_negative == 0:
        new_low, new_up = beta_low, betas[0]
        anchor = 0
    else:
        new_low, new_up = betas[first_negative - 1], betas[first_negative]
        anchor = first_negative - 1
    for beta, solution in zip(betas, solutions):
        iterations.append(
            BinarySearchIteration(
                beta=beta,
                optimal_mean_payoff=solution.gain,
                beta_low=new_low,
                beta_up=new_up,
                solve_seconds=round_seconds / k,
                solver_iterations=solution.iterations,
            )
        )
    return new_low, new_up, solutions, anchor


def _strategy_from_rows(mdp: MDP, rows: Optional[np.ndarray]) -> Optional[Strategy]:
    """Build a warm-start strategy from raw row choices, or ``None`` if invalid.

    Warm starts carried across sweep grid points are advisory: when the rows do
    not fit this MDP (e.g. the adjacent point has a different support signature
    and hence a different state space) they are simply dropped.
    """
    if rows is None:
        return None
    rows = np.asarray(rows)
    if rows.shape != (mdp.num_states,):
        return None
    try:
        return Strategy(mdp, rows)
    except (ModelError, IndexError):
        # IndexError: row indices out of range for this MDP (donor model had
        # the same state count but more action rows).
        return None


def _solve(
    mdp: MDP,
    beta: float,
    config: AnalysisConfig,
    warm_start: Optional[Strategy],
    warm_start_bias: Optional[np.ndarray],
) -> MeanPayoffSolution:
    """Solve the mean-payoff MDP under ``r_beta`` with the configured backend."""
    return solve_mean_payoff(
        mdp,
        beta_reward_weights(beta),
        solver=config.solver,
        tolerance=config.solver_tolerance,
        max_iterations=config.max_solver_iterations,
        warm_start=warm_start,
        warm_start_bias=warm_start_bias,
        portfolio_deadline=config.portfolio_deadline,
    )
