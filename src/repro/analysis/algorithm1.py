"""Algorithm 1: the paper's fully automated formal analysis procedure.

Given the selfish-mining MDP and a precision ``epsilon``, the procedure performs
a binary search over ``beta`` in ``[0, 1]``.  Every iteration solves the
mean-payoff MDP under the reward ``r_beta``; the sign of the optimal mean payoff
decides the half in which the optimal expected relative revenue ``ERRev*`` lies
(Theorem 3.1: the optimal mean payoff is monotonically decreasing in ``beta``
and crosses zero exactly at ``ERRev*``).  On termination ``beta_low`` is an
``epsilon``-tight lower bound on ``ERRev*`` and the strategy that is optimal for
``r_{beta_low}`` achieves an ERRev within ``[ERRev* - epsilon, ERRev*]``.

With ``AnalysisConfig.batch_probes = k > 1`` every round instead places ``k``
evenly spaced probes inside the current interval and solves all of them in one
vectorised batched call against the shared model structure
(:func:`repro.mdp.solve_mean_payoff_batch`).  By Theorem 3.1 the probe gains
are decreasing in beta, so the zero crossing lies between the last non-negative
and the first negative probe: the interval shrinks by a factor of ``k + 1`` per
round while the per-round cost grows far slower than ``k`` because the
expensive solver passes are amortised over all probes.  The certified bounds
are the same as the sequential search's up to ``epsilon``.

With ``AnalysisConfig.batch_probes = "auto"`` the probe count is chosen
*adaptively* per round: an :class:`AdaptiveProbeScheduler` fits the affine cost
model ``seconds(k) = a + b*k`` to the observed round timings and picks the
``k`` maximising the interval-shrink rate ``log(k + 1) / seconds(k)``.  Models
whose batched solves are nearly free (small ``b``) converge to wide rounds;
models where every extra probe costs as much as a fresh solve stay close to
classic bisection.  Only the probe placement adapts -- every round still brackets
the zero crossing, so the certified bounds are unchanged.

Invariant: **certified-bound reproducibility**.  For a fixed probe schedule the
final ``[beta_low, beta_up]`` interval is a deterministic function of the model
and ``epsilon`` -- identical bit-for-bit across processes and hosts (the sweep
engine asserts this for its serial, pooled and distributed backends) -- and
every schedule's interval has width below ``epsilon`` with
``beta_low <= ERRev* <= beta_up`` within the MDP's strategy class.  Warm starts
(``AnalysisConfig.warm_start``) change solver iteration counts, never the
certified interval beyond solver tolerance.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..config import AnalysisConfig
from ..exceptions import ModelError
from ..mdp import MDP, MeanPayoffSolution, Strategy, solve_mean_payoff, solve_mean_payoff_batch
from .errev import evaluate_strategy_errev
from .rewards import beta_reward_weights

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..mdp.portfolio import PortfolioHistory


@dataclass
class BinarySearchIteration:
    """Record of a single binary-search iteration (for reporting and tests).

    Attributes:
        beta: The beta value probed in this iteration.
        optimal_mean_payoff: The optimal mean payoff under ``r_beta``.
        beta_low: Lower end of the beta interval after the update.
        beta_up: Upper end of the beta interval after the update.
        solve_seconds: Wall-clock time of the mean-payoff solve.
        solver_iterations: Iterations the mean-payoff backend needed (policy
            improvement rounds or value-iteration sweeps; 0 for the LP).
    """

    beta: float
    optimal_mean_payoff: float
    beta_low: float
    beta_up: float
    solve_seconds: float
    solver_iterations: int = 0


@dataclass
class FormalAnalysisResult:
    """Output of Algorithm 1.

    Attributes:
        errev_lower_bound: The epsilon-tight lower bound on the optimal ERRev
            (the final ``beta_low``).
        beta_low: Final lower end of the binary-search interval.
        beta_up: Final upper end of the binary-search interval (an upper bound on
            the optimal ERRev within the MDP's strategy class).
        epsilon: The precision the search was run with.
        strategy: A strategy optimal for ``r_{beta_low}``; by Theorem 3.1 its
            ERRev lies in ``[ERRev* - epsilon, ERRev*]``.
        strategy_errev: Exact ERRev of ``strategy`` (stationary evaluation), or
            ``None`` if evaluation was disabled.
        iterations: Per-iteration log of the binary search.
        total_seconds: Total wall-clock time of the analysis.
        solver: Mean-payoff solver backend used.
        total_solver_iterations: Sum of backend iterations over every solve of
            the analysis (including the final strategy-extraction solve) -- the
            primary measure of warm-starting effectiveness.
        cancelled_solver_iterations: For the ``"portfolio"`` solver, the sum of
            iterations the cooperatively cancelled race losers had completed
            when they stopped; 0 for the non-racing backends.  Together with
            ``total_solver_iterations`` this quantifies how much work the
            cancellation avoided relative to losers running their full budget.
        final_bias: Bias vector of the final solve, reusable as a warm start
            for an adjacent parameter point (``None`` for the LP backend only
            when no bias was produced).
        backend_wins: For the ``"portfolio"`` solver, how many solves each
            backend won (e.g. ``{"policy_iteration": 9, "value_iteration": 2}``);
            empty for the non-racing backends.
    """

    errev_lower_bound: float
    beta_low: float
    beta_up: float
    epsilon: float
    strategy: Strategy
    strategy_errev: Optional[float]
    iterations: List[BinarySearchIteration] = field(default_factory=list)
    total_seconds: float = 0.0
    solver: str = "policy_iteration"
    total_solver_iterations: int = 0
    final_bias: Optional[np.ndarray] = None
    backend_wins: Dict[str, int] = field(default_factory=dict)
    cancelled_solver_iterations: int = 0

    @property
    def num_iterations(self) -> int:
        """Number of mean-payoff solves performed by the binary search."""
        return len(self.iterations)

    @property
    def interval_width(self) -> float:
        """Width of the final beta interval (less than ``epsilon`` on success)."""
        return self.beta_up - self.beta_low

    @property
    def winning_solver(self) -> Optional[str]:
        """The portfolio backend that won the most solves, ``None`` outside portfolio runs."""
        if not self.backend_wins:
            return None
        return max(self.backend_wins, key=lambda backend: self.backend_wins[backend])


class AdaptiveProbeScheduler:
    """Pick the probe count of each batched round from observed solve costs.

    The scheduler maintains the affine per-round cost model ``seconds(k) = a +
    b*k`` (fixed round overhead ``a`` plus marginal per-probe cost ``b``),
    refitted by least squares after every observed round, and proposes the
    ``k`` maximising the interval-shrink rate ``log(k + 1) / seconds(k)``.
    The first two rounds seed the model deterministically: a classic bisection
    round (``k = 1``) measures the single-solve cost, a small batched round
    measures the marginal probe cost.  The proposal is additionally capped at
    the number of probes that would already finish the search in one round, so
    the last round never solves probes the certificate cannot use.

    Attributes:
        max_probes: Hard ceiling on the probes of one round (memory of the
            batched value matrix grows linearly in ``k``).
        seed_probes: Probe count of the second (seeding) round.
    """

    def __init__(self, *, max_probes: int = 16, seed_probes: int = 4) -> None:
        if max_probes < 1:
            raise ValueError(f"max_probes must be >= 1, got {max_probes}")
        self.max_probes = max_probes
        self.seed_probes = max(2, min(seed_probes, max_probes))
        self._observations: List[Tuple[int, float]] = []

    def record(self, probes: int, seconds: float) -> None:
        """Record one finished round (``probes`` solved jointly in ``seconds``)."""
        self._observations.append((probes, max(seconds, 1e-9)))

    def _fit_cost_model(self) -> Tuple[float, float]:
        """Least-squares fit of ``seconds(k) = a + b*k``, clamped non-negative."""
        ks = np.array([probes for probes, _ in self._observations], dtype=float)
        secs = np.array([seconds for _, seconds in self._observations], dtype=float)
        if np.ptp(ks) == 0.0:
            # All rounds used the same k: no slope information, attribute the
            # mean cost to the marginal term (pessimistic about batching).
            return 0.0, float(np.mean(secs) / max(ks[0], 1.0))
        design = np.stack([np.ones_like(ks), ks], axis=1)
        (a, b), *_ = np.linalg.lstsq(design, secs, rcond=None)
        return max(float(a), 0.0), max(float(b), 0.0)

    def next_probes(self, width: float, epsilon: float) -> int:
        """Probe count for the next round over interval ``width`` at ``epsilon``.

        Returns 1 (classic bisection) while the cost model has no data, the
        seeding batch size while it has a single observation, and the
        rate-optimal ``k`` afterwards.
        """
        # k probes shrink width to width / (k + 1); k = finishing_probes ends
        # the search this round.
        if width / (self.max_probes + 1) >= epsilon:
            finishing_probes = self.max_probes
        else:
            finishing_probes = max(1, math.ceil(width / epsilon) - 1)
        cap = min(self.max_probes, finishing_probes)
        if not self._observations:
            return 1
        if len(self._observations) == 1:
            return min(self.seed_probes, cap)
        a, b = self._fit_cost_model()
        best_k, best_rate = 1, 0.0
        for k in range(1, cap + 1):
            cost = max(a + b * k, 1e-9)
            rate = math.log(k + 1) / cost
            if rate > best_rate:
                best_k, best_rate = k, rate
        return best_k


def formal_analysis(
    mdp: MDP,
    config: Optional[AnalysisConfig] = None,
    *,
    beta_low: float = 0.0,
    beta_up: float = 1.0,
    initial_strategy_rows: Optional[np.ndarray] = None,
    initial_bias: Optional[np.ndarray] = None,
    portfolio_history: Optional["PortfolioHistory"] = None,
) -> FormalAnalysisResult:
    """Run the paper's Algorithm 1 on a selfish-mining MDP.

    Args:
        mdp: The MDP produced by :func:`repro.attacks.build_selfish_forks_mdp`
            (reward components ``(r_A, r_H)``).
        config: Analysis configuration (precision, solver backend, tolerances).
        beta_low: Initial lower end of the search interval (0 in the paper;
            callers may tighten it, e.g. to ``p``, since ERRev* >= p).
        beta_up: Initial upper end of the search interval.
        initial_strategy_rows: Optional warm-start row choices for the first
            solve, typically ``result.strategy.rows`` of an adjacent parameter
            point over a structurally identical MDP.  Silently ignored when
            incompatible with ``mdp`` (wrong length or rows not belonging to
            their states) or when ``config.warm_start`` is false.
        initial_bias: Optional warm-start bias vector for the first solve
            (``result.final_bias`` of an adjacent point); ignored under the
            same conditions, and dropped (cold start) when its shape does not
            match ``mdp.num_states`` or it contains non-finite entries, so that
            vectors carried across structurally different sweep points can
            never crash an analysis mid-sweep.
        portfolio_history: Optional :class:`~repro.mdp.portfolio.
            PortfolioHistory` shared across analyses (e.g. one per sweep
            worker): every ``"portfolio"`` race consults it to launch the
            recently dominant backend first and records its winner back.
            Ignored by the non-portfolio solvers.

    Returns:
        A :class:`FormalAnalysisResult` with the epsilon-tight lower bound, the
        extracted strategy and the full iteration log.
    """
    config = config or AnalysisConfig()
    if not 0.0 <= beta_low <= beta_up <= 1.0:
        raise ValueError(f"invalid initial interval [{beta_low}, {beta_up}]")

    start_time = time.perf_counter()
    iterations: List[BinarySearchIteration] = []
    backend_wins: Dict[str, int] = {}
    warm_strategy: Optional[Strategy] = None
    warm_bias: Optional[np.ndarray] = None
    if config.warm_start:
        warm_strategy = _strategy_from_rows(mdp, initial_strategy_rows)
        warm_bias = _bias_from_vector(mdp, initial_bias)
    total_solver_iterations = 0
    cancelled_solver_iterations = 0
    scheduler = AdaptiveProbeScheduler() if config.batch_probes == "auto" else None

    while beta_up - beta_low >= config.epsilon:
        if scheduler is not None:
            probes = scheduler.next_probes(beta_up - beta_low, config.epsilon)
        else:
            probes = int(config.batch_probes)
        round_start = time.perf_counter()
        if probes > 1:
            beta_low, beta_up, solutions, anchor = _batched_round(
                mdp,
                beta_low,
                beta_up,
                probes,
                config,
                warm_strategy,
                warm_bias,
                iterations,
                portfolio_history,
            )
        else:
            beta = 0.5 * (beta_low + beta_up)
            solution = _solve(mdp, beta, config, warm_strategy, warm_bias, portfolio_history)
            solve_seconds = time.perf_counter() - round_start
            if solution.gain < 0.0:
                beta_up = beta
            else:
                beta_low = beta
            iterations.append(
                BinarySearchIteration(
                    beta=beta,
                    optimal_mean_payoff=solution.gain,
                    beta_low=beta_low,
                    beta_up=beta_up,
                    solve_seconds=solve_seconds,
                    solver_iterations=solution.iterations,
                )
            )
            solutions, anchor = [solution], 0
        if scheduler is not None:
            scheduler.record(probes, time.perf_counter() - round_start)
        for solution in solutions:
            total_solver_iterations += solution.iterations
            cancelled_solver_iterations += solution.cancelled_iterations
            _record_backend_win(solution, backend_wins)
        if config.warm_start:
            # The probe adjacent to the surviving interval seeds the next round.
            warm_strategy = solutions[anchor].strategy
            warm_bias = solutions[anchor].bias

    # Final solve at beta_low to extract the certified strategy.
    final_solution = _solve(mdp, beta_low, config, warm_strategy, warm_bias, portfolio_history)
    total_solver_iterations += final_solution.iterations
    cancelled_solver_iterations += final_solution.cancelled_iterations
    _record_backend_win(final_solution, backend_wins)
    strategy = final_solution.strategy
    strategy_errev = (
        evaluate_strategy_errev(mdp, strategy) if config.evaluate_strategy else None
    )

    return FormalAnalysisResult(
        errev_lower_bound=beta_low,
        beta_low=beta_low,
        beta_up=beta_up,
        epsilon=config.epsilon,
        strategy=strategy,
        strategy_errev=strategy_errev,
        iterations=iterations,
        total_seconds=time.perf_counter() - start_time,
        solver=config.solver,
        total_solver_iterations=total_solver_iterations,
        final_bias=final_solution.bias,
        backend_wins=backend_wins,
        cancelled_solver_iterations=cancelled_solver_iterations,
    )


def _bias_from_vector(mdp: MDP, bias) -> Optional[np.ndarray]:
    """Build a warm-start bias vector from caller input, or ``None`` if invalid.

    Like strategy rows, bias vectors carried across sweep grid points are
    advisory: anything that is not a finite 1-D float vector of length
    ``mdp.num_states`` (wrong length, ragged nested lists, NaNs from a failed
    donor solve) silently falls back to a cold start instead of crashing the
    analysis mid-sweep.
    """
    if bias is None:
        return None
    try:
        bias = np.asarray(bias, dtype=float)
    except (TypeError, ValueError):
        return None
    if bias.shape != (mdp.num_states,) or not np.all(np.isfinite(bias)):
        return None
    return bias


def _record_backend_win(solution: MeanPayoffSolution, wins: Dict[str, int]) -> None:
    """Tally which backend produced ``solution`` when the portfolio raced."""
    if solution.solver.startswith("portfolio:"):
        backend = solution.solver.split(":", 1)[1]
        wins[backend] = wins.get(backend, 0) + 1


def _batched_round(
    mdp: MDP,
    beta_low: float,
    beta_up: float,
    k: int,
    config: AnalysisConfig,
    warm_strategy: Optional[Strategy],
    warm_bias: Optional[np.ndarray],
    iterations: List[BinarySearchIteration],
    portfolio_history: Optional["PortfolioHistory"] = None,
) -> Tuple[float, float, List[MeanPayoffSolution], int]:
    """One batched binary-search round with ``k`` probes.

    Places ``k`` evenly spaced probes strictly inside ``(beta_low, beta_up)``,
    solves them in a single vectorised batched call, and shrinks the interval
    to the segment between the last probe with a non-negative gain and the
    first with a negative one (Theorem 3.1: the gains are decreasing in beta).
    ``k`` is either the fixed ``config.batch_probes`` or, in ``"auto"`` mode,
    the round's pick of the :class:`AdaptiveProbeScheduler`.

    Returns:
        ``(new_low, new_up, solutions, anchor)`` with ``solutions`` in probe
        order and ``anchor`` the index of the probe adjacent to the new
        interval (the best warm start for the next round).
    """
    width = beta_up - beta_low
    betas = [beta_low + (j + 1) * width / (k + 1) for j in range(k)]
    weight_matrix = np.array([beta_reward_weights(beta) for beta in betas])
    solve_start = time.perf_counter()
    solutions = solve_mean_payoff_batch(
        mdp,
        weight_matrix,
        solver=config.solver,
        tolerance=config.solver_tolerance,
        max_iterations=config.max_solver_iterations,
        warm_start=warm_strategy if config.warm_start else None,
        warm_start_bias=warm_bias if config.warm_start else None,
        portfolio_deadline=config.portfolio_deadline,
        portfolio_history=portfolio_history,
    )
    round_seconds = time.perf_counter() - solve_start

    first_negative = next(
        (j for j, solution in enumerate(solutions) if solution.gain < 0.0), None
    )
    if first_negative is None:
        new_low, new_up = betas[-1], beta_up
        anchor = k - 1
    elif first_negative == 0:
        new_low, new_up = beta_low, betas[0]
        anchor = 0
    else:
        new_low, new_up = betas[first_negative - 1], betas[first_negative]
        anchor = first_negative - 1
    for beta, solution in zip(betas, solutions):
        iterations.append(
            BinarySearchIteration(
                beta=beta,
                optimal_mean_payoff=solution.gain,
                beta_low=new_low,
                beta_up=new_up,
                solve_seconds=round_seconds / k,
                solver_iterations=solution.iterations,
            )
        )
    return new_low, new_up, solutions, anchor


def _strategy_from_rows(mdp: MDP, rows: Optional[np.ndarray]) -> Optional[Strategy]:
    """Build a warm-start strategy from raw row choices, or ``None`` if invalid.

    Warm starts carried across sweep grid points are advisory: when the rows do
    not fit this MDP (e.g. the adjacent point has a different support signature
    and hence a different state space) they are simply dropped.
    """
    if rows is None:
        return None
    rows = np.asarray(rows)
    if rows.shape != (mdp.num_states,):
        return None
    try:
        return Strategy(mdp, rows)
    except (ModelError, IndexError):
        # IndexError: row indices out of range for this MDP (donor model had
        # the same state count but more action rows).
        return None


def _solve(
    mdp: MDP,
    beta: float,
    config: AnalysisConfig,
    warm_start: Optional[Strategy],
    warm_start_bias: Optional[np.ndarray],
    portfolio_history: Optional["PortfolioHistory"] = None,
) -> MeanPayoffSolution:
    """Solve the mean-payoff MDP under ``r_beta`` with the configured backend."""
    return solve_mean_payoff(
        mdp,
        beta_reward_weights(beta),
        solver=config.solver,
        tolerance=config.solver_tolerance,
        max_iterations=config.max_solver_iterations,
        warm_start=warm_start,
        warm_start_bias=warm_start_bias,
        portfolio_deadline=config.portfolio_deadline,
        portfolio_history=portfolio_history,
    )
