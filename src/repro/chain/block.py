"""Block objects of the discrete-time blockchain substrate.

Blocks are immutable records linked by parent identifiers.  The substrate does
not model transactions or cryptographic hashes -- only what the selfish-mining
analysis needs: ownership, height and parent structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

#: Identifier of the genesis block.
GENESIS_ID = 0

_block_counter = itertools.count(1)


def _next_block_id() -> int:
    """Return a process-unique block identifier."""
    return next(_block_counter)


@dataclass(frozen=True)
class Block:
    """A block of the simulated chain.

    Attributes:
        block_id: Unique identifier of the block.
        parent_id: Identifier of the parent block (``None`` only for genesis).
        owner: ``"honest"`` or ``"adversary"``.
        height: Number of ancestors (genesis has height 0).
        timestep: Discrete time step at which the block was mined.
    """

    block_id: int
    parent_id: Optional[int]
    owner: str
    height: int
    timestep: int = 0

    VALID_OWNERS = ("honest", "adversary")

    def __post_init__(self) -> None:
        if self.owner not in self.VALID_OWNERS:
            raise ValueError(f"owner must be one of {self.VALID_OWNERS}, got {self.owner!r}")
        if self.height < 0:
            raise ValueError(f"height must be non-negative, got {self.height}")

    @property
    def is_genesis(self) -> bool:
        """Whether this is the genesis block."""
        return self.parent_id is None

    @property
    def is_adversarial(self) -> bool:
        """Whether the block was mined by the adversarial coalition."""
        return self.owner == "adversary"

    def child(self, owner: str, timestep: int = 0) -> "Block":
        """Create a new block extending this one."""
        return Block(
            block_id=_next_block_id(),
            parent_id=self.block_id,
            owner=owner,
            height=self.height + 1,
            timestep=timestep,
        )


def genesis_block() -> Block:
    """Return a fresh genesis block (owned by honest miners by convention)."""
    return Block(block_id=GENESIS_ID, parent_id=None, owner="honest", height=0, timestep=0)
