"""Chain-quality and revenue metrics.

The paper's objective is the expected relative revenue (ERRev) of the adversary,
which equals one minus the chain quality.  These helpers compute both from block
ownership sequences and provide a Wilson confidence interval for Monte-Carlo
estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ChainQualityReport:
    """Summary of the composition of a (segment of a) chain.

    Attributes:
        adversarial_blocks: Number of adversarial blocks in the segment.
        honest_blocks: Number of honest blocks in the segment.
        relative_revenue: Fraction of adversarial blocks (ERRev estimate).
        chain_quality: Fraction of honest blocks (1 - relative revenue).
        confidence_low: Lower end of the 95% Wilson interval for the relative revenue.
        confidence_high: Upper end of the 95% Wilson interval.
    """

    adversarial_blocks: int
    honest_blocks: int
    relative_revenue: float
    chain_quality: float
    confidence_low: float
    confidence_high: float

    @property
    def total_blocks(self) -> int:
        """Total number of blocks in the segment."""
        return self.adversarial_blocks + self.honest_blocks


def relative_revenue(owners: Sequence[str]) -> float:
    """Fraction of adversarial blocks in an ownership sequence (0 for empty)."""
    if not owners:
        return 0.0
    adversarial = sum(1 for owner in owners if owner == "adversary")
    return adversarial / len(owners)


def chain_quality(owners: Sequence[str]) -> float:
    """Fraction of honest blocks in an ownership sequence (1 for empty)."""
    return 1.0 - relative_revenue(owners)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Args:
        successes: Number of successes observed.
        trials: Number of trials (0 yields the trivial interval [0, 1]).
        z: Normal quantile (1.96 for a 95% interval).
    """
    if trials <= 0:
        return 0.0, 1.0
    if not 0 <= successes <= trials:
        raise ValueError(f"successes={successes} must lie in [0, trials={trials}]")
    proportion = successes / trials
    denominator = 1.0 + z * z / trials
    centre = proportion + z * z / (2.0 * trials)
    margin = z * math.sqrt(
        proportion * (1.0 - proportion) / trials + z * z / (4.0 * trials * trials)
    )
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    return max(0.0, low), min(1.0, high)


def quality_report(owners: Sequence[str]) -> ChainQualityReport:
    """Build a :class:`ChainQualityReport` from an ownership sequence."""
    adversarial = sum(1 for owner in owners if owner == "adversary")
    honest = len(owners) - adversarial
    revenue = relative_revenue(owners)
    low, high = wilson_interval(adversarial, len(owners))
    return ChainQualityReport(
        adversarial_blocks=adversarial,
        honest_blocks=honest,
        relative_revenue=revenue,
        chain_quality=1.0 - revenue,
        confidence_low=low,
        confidence_high=high,
    )


def satisfies_chain_quality(owners: Sequence[str], mu: float, segment_length: int) -> bool:
    """Check the paper's ``(mu, l)``-chain-quality property on every segment.

    A chain satisfies ``(mu, l)``-chain quality if every window of
    ``segment_length`` consecutive blocks contains at least a ``mu`` fraction of
    honest blocks.
    """
    if segment_length < 1:
        raise ValueError("segment_length must be >= 1")
    if len(owners) < segment_length:
        return chain_quality(owners) >= mu if owners else True
    for start in range(0, len(owners) - segment_length + 1):
        window = owners[start : start + segment_length]
        if chain_quality(window) < mu:
            return False
    return True
