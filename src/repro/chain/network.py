"""Broadcast / tie-breaking model.

When the adversary reveals a private chain of exactly the same length as the
public chain, honest miners adopt it with the switching probability ``gamma``
(they keep their own chain otherwise).  Strictly longer revealed chains are
always adopted.  This is the entire network model of the paper -- propagation
delays are abstracted into ``gamma``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_probability


class TieBreaker:
    """Resolves races between equally long public and adversarial chains."""

    def __init__(
        self, gamma: float, rng: Optional[np.random.Generator] = None, seed: int = 0
    ) -> None:
        self.gamma = check_probability(gamma, "gamma")
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def adopts_adversarial_chain(self, published_length: int, public_length: int) -> bool:
        """Decide whether honest miners adopt a just-published adversarial chain.

        Args:
            published_length: Height advantage of the revealed chain relative to
                the fork point.
            public_length: Height advantage of the public chain relative to the
                same fork point.
        """
        if published_length > public_length:
            return True
        if published_length < public_length:
            return False
        return bool(self._rng.random() < self.gamma)

    def race_probability(self) -> float:
        """Probability that the adversary wins an equal-length race."""
        return self.gamma
