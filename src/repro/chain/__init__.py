"""Discrete-time blockchain substrate.

Concrete blocks, chains and forks together with the paper's system model
(``(p, k)``-mining in discrete time steps, gamma tie-breaking) and a simulator
that replays adversarial policies against honest miners.  The simulator provides
Monte-Carlo estimates of the expected relative revenue that are *independent* of
the MDP's reward bookkeeping, and is used to validate strategies computed by the
formal analysis.
"""

from .block import Block, GENESIS_ID
from .blockchain import Blockchain
from .fork import PrivateFork
from .mining import MiningEvent, MiningModel
from .network import TieBreaker
from .metrics import ChainQualityReport, chain_quality, relative_revenue, wilson_interval
from .simulator import SelfishMiningSimulator, SimulationResult

__all__ = [
    "Block",
    "GENESIS_ID",
    "Blockchain",
    "PrivateFork",
    "MiningEvent",
    "MiningModel",
    "TieBreaker",
    "ChainQualityReport",
    "chain_quality",
    "relative_revenue",
    "wilson_interval",
    "SelfishMiningSimulator",
    "SimulationResult",
]
