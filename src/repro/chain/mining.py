"""The paper's discrete-time ``(p, k)``-mining process.

At every time step exactly one block is found.  If the adversary concurrently
mines on ``sigma`` blocks while owning a ``p`` fraction of the resource, each of
its targets succeeds with probability ``p / (1 - p + p * sigma)`` and the honest
miners (who always mine on the public tip) succeed with probability
``(1 - p) / (1 - p + p * sigma)``.  This normalisation is exactly the transition
probability used in the MDP (Section 3.2) and reflects the nothing-at-stake
amplification of efficient proof systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import check_non_negative_int, check_probability
from ..exceptions import SimulationError


@dataclass(frozen=True)
class MiningEvent:
    """Outcome of one discrete mining step.

    Attributes:
        winner: ``"honest"`` or ``"adversary"``.
        target_index: Index of the adversarial mining target that succeeded
            (``None`` for honest wins).
    """

    winner: str
    target_index: Optional[int] = None

    @property
    def is_adversarial(self) -> bool:
        """Whether the adversary found the block."""
        return self.winner == "adversary"


class MiningModel:
    """Samples discrete-time mining events under the ``(p, k)``-mining model."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None, seed: int = 0) -> None:
        self.p = check_probability(p, "p")
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def probabilities(self, num_adversary_targets: int) -> tuple[float, float]:
        """Return ``(per-target adversarial probability, honest probability)``."""
        sigma = check_non_negative_int(num_adversary_targets, "num_adversary_targets")
        denominator = (1.0 - self.p) + self.p * sigma
        if denominator <= 0.0:
            raise SimulationError(
                "degenerate mining step: p = 1 with no adversarial mining targets"
            )
        per_target = self.p / denominator if sigma else 0.0
        honest = (1.0 - self.p) / denominator
        return per_target, honest

    def sample(self, num_adversary_targets: int) -> MiningEvent:
        """Sample the winner of one time step.

        Args:
            num_adversary_targets: Number of blocks the adversary mines on
                (``sigma`` in the paper).
        """
        per_target, honest = self.probabilities(num_adversary_targets)
        draw = self._rng.random()
        threshold = 0.0
        for index in range(num_adversary_targets):
            threshold += per_target
            if draw < threshold:
                return MiningEvent(winner="adversary", target_index=index)
        return MiningEvent(winner="honest")

    def expected_adversarial_share(self, num_adversary_targets: int) -> float:
        """Probability that the next block is adversarial given ``sigma`` targets."""
        per_target, _ = self.probabilities(num_adversary_targets)
        return per_target * num_adversary_targets
