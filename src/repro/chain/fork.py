"""Private forks maintained by the adversary in the simulator.

A private fork is a chain of withheld adversarial blocks rooted at a main-chain
block.  The simulator keeps one :class:`PrivateFork` per ``(depth, slot)`` pair
of the attack's ``d x f`` grid and keeps the block objects so that published
blocks carry correct parent links and heights when they reorganise the public
chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..exceptions import SimulationError
from .block import Block


@dataclass
class PrivateFork:
    """A withheld adversarial fork rooted at a public block.

    Attributes:
        base: The public main-chain block the fork extends.
        blocks: The withheld adversarial blocks, oldest first.
    """

    base: Block
    blocks: List[Block] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Number of withheld blocks in the fork."""
        return len(self.blocks)

    @property
    def tip(self) -> Block:
        """The most recent block of the fork (the base if the fork is empty)."""
        return self.blocks[-1] if self.blocks else self.base

    def extend(self, timestep: int = 0) -> Block:
        """Mine one more private block on top of the fork."""
        block = self.tip.child(owner="adversary", timestep=timestep)
        self.blocks.append(block)
        return block

    def truncate(self, length: int) -> None:
        """Drop blocks so that at most ``length`` remain (model's cap ``l``)."""
        if length < 0:
            raise SimulationError("fork length cannot be negative")
        del self.blocks[length:]

    def publish_prefix(self, count: int) -> List[Block]:
        """Remove and return the first ``count`` blocks (the published prefix).

        The remaining blocks stay withheld; after a successful release the caller
        re-roots them at the new tip (the last published block).
        """
        if count < 1 or count > len(self.blocks):
            raise SimulationError(
                f"cannot publish {count} blocks of a fork of length {len(self.blocks)}"
            )
        published = self.blocks[:count]
        self.blocks = self.blocks[count:]
        return published

    def reroot(self, new_base: Block) -> "PrivateFork":
        """Return a fork with the same *lengths* rooted at ``new_base``.

        Re-rooting is used when the unpublished remainder of a released fork
        becomes a fork on the new tip: the withheld blocks are re-created as
        children of the new base so that parent links stay consistent.
        """
        fork = PrivateFork(base=new_base)
        for _ in self.blocks:
            fork.extend()
        return fork

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrivateFork(base_height={self.base.height}, length={self.length})"
