"""Discrete-time selfish-mining simulator.

The simulator replays the paper's system model with concrete block objects: at
every time step one block is found (honest on the public tip, or adversarial on
one of the adversary's private-fork targets), after which the adversarial policy
may publish a prefix of one of its forks, possibly reorganising the public
chain.  The long-run fraction of adversarial blocks in the resulting main chain
is an ERRev estimate that is *independent* of the MDP's incremental reward
bookkeeping, and is used to validate strategies computed by the formal analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..attacks.base import MiningPolicy
from ..attacks.fork_state import (
    ADVERSARY,
    HONEST,
    TYPE_ADVERSARY,
    TYPE_HONEST,
    ForkState,
    ReleaseAction,
    adversary_mining_targets,
)
from ..config import AttackParams, ProtocolParams
from ..exceptions import SimulationError
from .blockchain import Blockchain
from .fork import PrivateFork
from .metrics import quality_report, ChainQualityReport
from .mining import MiningModel
from .network import TieBreaker


@dataclass
class SimulationResult:
    """Outcome of a simulation run.

    Attributes:
        steps: Number of simulated time steps.
        report: Chain-quality report of the final main chain (warm-up and the
            non-final suffix excluded).
        relative_revenue: Convenience copy of the ERRev estimate.
        orphaned_blocks: Number of public blocks orphaned by reorganisations.
        releases_accepted: Number of fork publications adopted by honest miners.
        releases_rejected: Number of equal-length races lost by the adversary.
        policy_name: Name of the adversarial policy that was simulated.
    """

    steps: int
    report: ChainQualityReport
    relative_revenue: float
    orphaned_blocks: int
    releases_accepted: int
    releases_rejected: int
    policy_name: str


class SelfishMiningSimulator:
    """Replays an adversarial policy against honest miners in discrete time."""

    def __init__(
        self,
        protocol: ProtocolParams,
        attack: AttackParams,
        policy: MiningPolicy,
        *,
        seed: int = 0,
    ) -> None:
        self.protocol = protocol
        self.attack = attack
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self._mining = MiningModel(protocol.p, rng=self._rng)
        self._tie_breaker = TieBreaker(protocol.gamma, rng=self._rng)
        self._reset()

    # ------------------------------------------------------------------ lifecycle

    def _reset(self) -> None:
        self.chain = Blockchain()
        # Warm-up: the MDP's initial state assumes a main chain of d honest
        # blocks within the attack window; create them so depths are well defined.
        for _ in range(self.attack.depth):
            self.chain.append("honest")
        self._warmup_length = self.chain.length
        self.forks: Dict[Tuple[int, int], PrivateFork] = {}
        self.orphaned_blocks = 0
        self.releases_accepted = 0
        self.releases_rejected = 0
        self.policy.reset()

    # ---------------------------------------------------------------- abstraction

    def _fork_matrix(self) -> Tuple[Tuple[int, ...], ...]:
        d, f = self.attack.depth, self.attack.forks
        rows = [[0] * f for _ in range(d)]
        for (depth, slot), fork in self.forks.items():
            rows[depth - 1][slot - 1] = fork.length
        return tuple(tuple(row) for row in rows)

    def _ownership(self) -> Tuple[int, ...]:
        owners = []
        for depth in range(1, self.attack.depth):
            block = self.chain.block_at_depth(depth)
            owners.append(ADVERSARY if block.is_adversarial else HONEST)
        return tuple(owners)

    def _abstract_state(self, state_type: int) -> ForkState:
        return (self._fork_matrix(), self._ownership(), state_type)

    # ------------------------------------------------------------------- stepping

    def _shift_forks_after_public_block(self) -> None:
        """Re-key forks after the main chain grew by one honest block."""
        updated: Dict[Tuple[int, int], PrivateFork] = {}
        for (depth, slot), fork in self.forks.items():
            new_depth = depth + 1
            if new_depth <= self.attack.depth:
                updated[(new_depth, slot)] = fork
        self.forks = updated

    def _rekey_forks_after_release(self, shift: int, consumed: Tuple[int, int]) -> None:
        """Re-key forks after a successful release moved the window by ``shift``."""
        updated: Dict[Tuple[int, int], PrivateFork] = {}
        tip_height = self.chain.tip.height
        for (depth, slot), fork in self.forks.items():
            if (depth, slot) == consumed:
                continue
            base_depth = tip_height - fork.base.height + 1
            if not 1 <= base_depth <= self.attack.depth:
                continue
            # Forks whose base was orphaned are no longer on the main chain.
            if self.chain.block_at_depth(base_depth).block_id != fork.base.block_id:
                continue
            updated[(base_depth, slot)] = fork
        self.forks = updated

    def _apply_release(self, action: ReleaseAction, state_type: int) -> bool:
        """Apply a release decision; return whether the fork was adopted.

        The competing public length above the fork base is ``depth - 1``
        confirmed blocks, plus the pending honest block in a ``TYPE_HONEST``
        state (which is orphaned -- i.e. never appended -- when the adversary
        wins).
        """
        key = (action.depth, action.fork)
        fork = self.forks.get(key)
        if fork is None or fork.length < action.blocks or action.blocks < 1:
            raise SimulationError(f"policy requested an impossible release {action!r}")
        pending = 1 if state_type == TYPE_HONEST else 0
        public_length = action.depth - 1 + pending
        if action.blocks < public_length:
            raise SimulationError(
                f"release {action!r} is shorter than the public chain and cannot win"
            )
        if action.blocks == public_length and state_type != TYPE_HONEST:
            raise SimulationError(
                f"equal-length release {action!r} is only meaningful against a pending honest block"
            )
        accepted = self._tie_breaker.adopts_adversarial_chain(action.blocks, public_length)
        if not accepted:
            self.releases_rejected += 1
            return False
        self.releases_accepted += 1
        published = fork.publish_prefix(action.blocks)
        orphaned = self.chain.reorganise(action.depth, published)
        self.orphaned_blocks += len(orphaned) + pending
        shift = action.blocks - (action.depth - 1)
        self._rekey_forks_after_release(shift, consumed=key)
        if fork.length > 0:
            remainder = fork.reroot(self.chain.tip)
            remainder.truncate(self.attack.max_fork_length)
            self.forks[(1, 1)] = remainder
        return True

    def _incorporate_pending_honest_block(self, timestep: int) -> None:
        """Append the pending honest block and shift the adversary's fork window."""
        self.chain.append("honest", timestep=timestep)
        self._shift_forks_after_public_block()

    def step(self, timestep: int) -> None:
        """Advance the simulation by one block event and one adversary decision."""
        c_matrix = self._fork_matrix()
        targets = adversary_mining_targets(c_matrix)
        event = self._mining.sample(len(targets))

        if event.is_adversarial:
            depth, slot, is_new = targets[event.target_index]
            if is_new:
                base = self.chain.block_at_depth(depth)
                fork = PrivateFork(base=base)
                fork.extend(timestep=timestep)
                self.forks[(depth, slot)] = fork
            else:
                fork = self.forks[(depth, slot)]
                if fork.length < self.attack.max_fork_length:
                    fork.extend(timestep=timestep)
            decision = self.policy.decide(self._abstract_state(TYPE_ADVERSARY))
            if decision.is_release:
                self._apply_release(decision.release, TYPE_ADVERSARY)
        else:
            # The honest block is pending: the adversary reacts before it is
            # incorporated, exactly as in the MDP's TYPE_HONEST decision states.
            decision = self.policy.decide(self._abstract_state(TYPE_HONEST))
            adopted = False
            if decision.is_release:
                adopted = self._apply_release(decision.release, TYPE_HONEST)
            if not adopted:
                self._incorporate_pending_honest_block(timestep)

    def run(self, num_steps: int, *, reset: bool = True) -> SimulationResult:
        """Run the simulation for ``num_steps`` block events.

        Args:
            num_steps: Number of discrete time steps (one block found per step).
            reset: Whether to restart from a fresh chain first.
        """
        if num_steps < 1:
            raise SimulationError("num_steps must be >= 1")
        if reset:
            self._reset()
        for timestep in range(num_steps):
            self.step(timestep)
        owners = self.chain.owners(exclude_suffix=self.attack.depth)[self._warmup_length - 1 :]
        report = quality_report(owners)
        return SimulationResult(
            steps=num_steps,
            report=report,
            relative_revenue=report.relative_revenue,
            orphaned_blocks=self.orphaned_blocks,
            releases_accepted=self.releases_accepted,
            releases_rejected=self.releases_rejected,
            policy_name=self.policy.name,
        )
