"""The public main chain with reorganisation support.

The main chain is the longest chain known to honest miners.  The adversary can
trigger a reorganisation by publishing a private fork: the blocks above the
fork's base are orphaned and replaced by the published adversarial blocks.
"""

from __future__ import annotations

from typing import Iterable, List

from ..exceptions import SimulationError
from .block import Block, genesis_block


class Blockchain:
    """The public main chain of the simulated protocol.

    The chain is stored as a list from genesis to tip; orphaned blocks are kept
    for reporting (orphan-rate statistics) but are not part of the main chain.
    """

    def __init__(self) -> None:
        self._chain: List[Block] = [genesis_block()]
        self._orphans: List[Block] = []

    # ------------------------------------------------------------------- queries

    @property
    def tip(self) -> Block:
        """The most recent block of the main chain."""
        return self._chain[-1]

    @property
    def height(self) -> int:
        """Height of the tip (genesis has height 0)."""
        return self.tip.height

    @property
    def length(self) -> int:
        """Number of blocks including genesis."""
        return len(self._chain)

    @property
    def blocks(self) -> List[Block]:
        """The main-chain blocks from genesis to tip (copy)."""
        return list(self._chain)

    @property
    def orphans(self) -> List[Block]:
        """Blocks that were orphaned by reorganisations (copy)."""
        return list(self._orphans)

    def block_at_depth(self, depth: int) -> Block:
        """Return the block at ``depth`` (1 = tip, 2 = its parent, ...)."""
        if depth < 1 or depth > len(self._chain):
            raise SimulationError(f"depth {depth} out of range for chain of length {len(self._chain)}")
        return self._chain[-depth]

    def owners(self, exclude_suffix: int = 0, exclude_genesis: bool = True) -> List[str]:
        """Return the owners of main-chain blocks.

        Args:
            exclude_suffix: Drop this many most-recent blocks (e.g. the not-yet
                final window of the attack model).
            exclude_genesis: Whether to drop the genesis block from the count.
        """
        start = 1 if exclude_genesis else 0
        end = len(self._chain) - exclude_suffix
        if end <= start:
            return []
        return [block.owner for block in self._chain[start:end]]

    # ----------------------------------------------------------------- mutations

    def append(self, owner: str, timestep: int = 0) -> Block:
        """Append a new block on the tip and return it."""
        block = self.tip.child(owner=owner, timestep=timestep)
        self._chain.append(block)
        return block

    def reorganise(self, base_depth: int, new_blocks: Iterable[Block]) -> List[Block]:
        """Replace the blocks above the block at ``base_depth`` with ``new_blocks``.

        Args:
            base_depth: Depth (1 = tip) of the block the new sub-chain attaches to.
            new_blocks: Blocks forming the new suffix, ordered oldest first; the
                first one must reference the base block as parent.

        Returns:
            The list of orphaned blocks.

        Raises:
            SimulationError: If the new suffix does not correctly attach to the
                base block or has inconsistent heights/parents.
        """
        new_blocks = list(new_blocks)
        base = self.block_at_depth(base_depth)
        orphaned = self._chain[len(self._chain) - (base_depth - 1):] if base_depth > 1 else []
        expected_parent = base
        for block in new_blocks:
            if block.parent_id != expected_parent.block_id:
                raise SimulationError(
                    f"block {block.block_id} does not attach to {expected_parent.block_id}"
                )
            if block.height != expected_parent.height + 1:
                raise SimulationError(
                    f"block {block.block_id} has height {block.height}, "
                    f"expected {expected_parent.height + 1}"
                )
            expected_parent = block
        self._orphans.extend(orphaned)
        self._chain = self._chain[: len(self._chain) - (base_depth - 1)] if base_depth > 1 else list(self._chain)
        self._chain.extend(new_blocks)
        return orphaned

    def __len__(self) -> int:
        return len(self._chain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Blockchain(height={self.height}, orphans={len(self._orphans)})"
