"""repro-lint: AST-based invariant checker for the package's own source.

The engine's correctness rests on cross-cutting invariants that no single
test file owns -- shared-memory segments must be lifecycle-paired with their
release backstops, workers must never rebuild skeletons, certified-bound
kernels must stay bit-for-bit deterministic, the coordinator and the workers
must agree on the wire schema, and every registered attack scenario must
honour the structure contract.  ``repro lint`` codifies those invariants as
static rules over the package's abstract syntax trees, so they are enforced
by a tool instead of reviewer memory:

========  ==============================================================
RL001     shm-lifecycle: ``SharedMemory`` stays inside the substrate
          modules, and every segment creation is paired with try/atexit
          release machinery.
RL002     fork/async safety: no blocking calls inside coroutines, no
          unguarded module-global mutation on worker call paths, no bare
          ``lock.acquire()`` statements.
RL003     determinism: no unseeded RNGs, wall-clock reads or set-order
          iteration in the certified solver paths (``attacks/``,
          ``mdp/``, ``analysis/``).
RL004     wire-schema agreement: every frame-header key and frame type
          consumed in ``core/distributed.py`` is produced there too (and
          vice versa for frame types), and ``PROTOCOL_VERSION`` guards
          both sides.
RL005     scenario contract: every ``@register_attack`` class declares
          ``BUFFER_KEYS`` and overrides the required engine hooks.
========  ==============================================================

Run it as ``repro lint [PATHS]`` or ``python -m repro.lint [PATHS]``; with no
paths it lints the installed ``repro`` package itself.  A violation can be
waived on one line with ``# repro-lint: disable=RL002`` (comma-separated ids,
or ``all``) and for a whole file with ``# repro-lint: disable-file=RL004``.
The exit status is 0 iff no violations were reported.
"""

from .engine import (
    LintViolation,
    ModuleInfo,
    Rule,
    lint_paths,
    main,
    render_json,
    render_text,
)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "LintViolation",
    "ModuleInfo",
    "Rule",
    "lint_paths",
    "main",
    "render_json",
    "render_text",
]
