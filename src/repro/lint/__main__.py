"""``python -m repro.lint`` -- run the invariant checker."""

from .engine import main

if __name__ == "__main__":
    raise SystemExit(main())
