"""Rule engine of ``repro lint``: file discovery, suppressions, reporters.

The engine is deliberately dependency-free (stdlib ``ast`` + ``argparse``):
it parses every target file once, hands the tree to each applicable rule
(:class:`Rule` subclasses from :mod:`repro.lint.rules`), filters the returned
:class:`LintViolation` records through ``# repro-lint: disable=...``
suppression comments, and renders the survivors as text or JSON.

Path scoping
------------
Rules may restrict themselves to package-relative path prefixes (e.g. the
determinism rule only watches ``attacks/``, ``mdp/`` and ``analysis/``).  The
engine therefore normalises every file to a *package-relative* posix path:
ancestors up to (and including) a ``repro`` package directory or a leading
``src`` component are stripped, so ``src/repro/core/engine.py``, an installed
``site-packages/repro/core/engine.py`` and a test fixture ``<tmp>/core/bad.py``
all normalise to ``core/...`` and are scoped identically.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Comment syntax waiving rules for one line / a whole file.  ``all`` (or
#: ``*``) waives every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)=(?P<ids>[A-Za-z0-9_*,\s]+)"
)

#: Pseudo rule id reported for files the engine cannot parse at all.
PARSE_ERROR_RULE = "RL000"


@dataclass(frozen=True)
class LintViolation:
    """One reported invariant violation.

    Attributes:
        rule_id: Identifier of the violated rule (``RL001`` .. ``RL005``, or
            :data:`PARSE_ERROR_RULE` for unparseable files).
        path: Path of the offending file as given on the command line.
        line: 1-based source line of the violation.
        column: 0-based source column of the violation.
        message: What invariant is violated, and how.
        fix_hint: Actionable per-rule fix-it message.
    """

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    fix_hint: str = ""


@dataclass
class ModuleInfo:
    """One parsed target file, as handed to every rule.

    Attributes:
        path: Filesystem path of the file.
        relpath: Package-relative posix path used for rule scoping
            (``core/engine.py``, ``attacks/structure.py``, ...).
        source: Raw file contents.
        tree: Parsed abstract syntax tree.
        line_suppressions: ``line -> rule ids`` waived on that line.
        file_suppressions: Rule ids waived for the entire file.
    """

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, Set[str]]
    file_suppressions: Set[str]

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is waived at ``line`` (or file-wide)."""
        waived = self.file_suppressions | self.line_suppressions.get(line, set())
        return rule_id in waived or "all" in waived or "*" in waived


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`rule_id` / :attr:`title` / :attr:`invariant` /
    :attr:`fix_hint`, optionally narrow :attr:`scopes` to package-relative
    path prefixes, and implement :meth:`check`.
    """

    #: Stable identifier (``RLxxx``), used in reports and suppressions.
    rule_id: str = ""
    #: One-line rule name.
    title: str = ""
    #: The repo invariant this rule guards (shown by ``--list-rules``).
    invariant: str = ""
    #: Default fix-it message attached to this rule's violations.
    fix_hint: str = ""
    #: Package-relative path prefixes this rule watches (``None`` = all files).
    scopes: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether ``module`` falls inside this rule's path scope."""
        if self.scopes is None:
            return True
        return any(
            module.relpath == scope or module.relpath.startswith(scope)
            for scope in self.scopes
        )

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield every violation of this rule in ``module``."""
        raise NotImplementedError(f"{type(self).__name__} does not implement check()")

    def violation(
        self, module: ModuleInfo, node: ast.AST, message: str, *, fix_hint: str = ""
    ) -> LintViolation:
        """Build a violation of this rule anchored at ``node``."""
        return LintViolation(
            rule_id=self.rule_id,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=fix_hint or self.fix_hint,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ------------------------------------------------------------- file discovery


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract line-level and file-level suppression comments from ``source``."""
    line_level: Dict[int, Set[str]] = {}
    file_level: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        if match.group("kind") == "disable-file":
            file_level |= ids
        else:
            line_level.setdefault(lineno, set()).update(ids)
    return line_level, file_level


def package_relpath(path: Path, root: Optional[Path] = None) -> str:
    """Normalise ``path`` to the package-relative posix path used for scoping.

    Preference order: relative to the nearest ancestor directory that *is* the
    ``repro`` package (named ``repro`` with an ``__init__.py``); else relative
    to ``root``; else the bare file name.  Leading ``src``/``repro`` wrapper
    components are stripped in every case.
    """
    resolved = path.resolve()
    relative: Optional[Path] = None
    for ancestor in resolved.parents:
        if ancestor.name == "repro" and (ancestor / "__init__.py").exists():
            relative = resolved.relative_to(ancestor)
            break
    if relative is None and root is not None:
        try:
            relative = resolved.relative_to(root.resolve())
        except ValueError:
            relative = None
    if relative is None:
        relative = Path(resolved.name)
    parts = list(relative.parts)
    while parts and parts[0] in ("src", "repro"):
        parts = parts[1:]
    return "/".join(parts) or resolved.name


def iter_python_files(target: Path) -> Iterator[Path]:
    """Yield the python files under ``target`` (itself, if it is a file)."""
    if target.is_file():
        yield target
        return
    for path in sorted(target.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def load_module(path: Path, root: Optional[Path] = None) -> ModuleInfo:
    """Read and parse one target file into a :class:`ModuleInfo`.

    Raises:
        SyntaxError: If the file does not parse; callers report it as a
            :data:`PARSE_ERROR_RULE` violation.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    line_suppressions, file_suppressions = _parse_suppressions(source)
    return ModuleInfo(
        path=path,
        relpath=package_relpath(path, root),
        source=source,
        tree=tree,
        line_suppressions=line_suppressions,
        file_suppressions=file_suppressions,
    )


# ------------------------------------------------------------------ execution


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[LintViolation], int]:
    """Run ``rules`` over every python file under ``paths``.

    Args:
        paths: Files or directories to lint.
        rules: Rule instances to apply; defaults to the full built-in ruleset.

    Returns:
        ``(violations, files_checked)``; the violations are ordered by file,
        line and rule id, already filtered through suppression comments.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    violations: List[LintViolation] = []
    files_checked = 0
    for target in paths:
        root = target if target.is_dir() else target.parent
        for path in iter_python_files(target):
            files_checked += 1
            try:
                module = load_module(path, root)
            except SyntaxError as exc:
                violations.append(
                    LintViolation(
                        rule_id=PARSE_ERROR_RULE,
                        path=str(path),
                        line=exc.lineno or 1,
                        column=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                        fix_hint="fix the syntax error; unparseable files cannot be linted",
                    )
                )
                continue
            for rule in rules:
                if not rule.applies_to(module):
                    continue
                for violation in rule.check(module):
                    if not module.suppressed(violation.rule_id, violation.line):
                        violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
    return violations, files_checked


# ------------------------------------------------------------------ reporters


def render_text(violations: Sequence[LintViolation], files_checked: int) -> str:
    """Human-readable report: one location line plus a fix hint per violation."""
    lines: List[str] = []
    for violation in violations:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.column}: "
            f"{violation.rule_id} {violation.message}"
        )
        if violation.fix_hint:
            lines.append(f"    fix: {violation.fix_hint}")
    noun = "file" if files_checked == 1 else "files"
    if violations:
        lines.append(f"{len(violations)} violation(s) in {files_checked} {noun}")
    else:
        lines.append(f"clean: {files_checked} {noun}, 0 violations")
    return "\n".join(lines)


def render_json(violations: Sequence[LintViolation], files_checked: int) -> str:
    """Machine-readable report (stable keys, one object per violation)."""
    return json.dumps(
        {
            "files_checked": files_checked,
            "violations": [asdict(violation) for violation in violations],
        },
        indent=2,
        sort_keys=True,
    )


# ------------------------------------------------------------------------ CLI


def default_target() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    return Path(__file__).resolve().parents[1]


def _select_rules(select: Optional[str]) -> List[Rule]:
    """Resolve a ``--select`` value into rule instances.

    Raises:
        SystemExit: Via ``argparse``-style error text when an id is unknown.
    """
    from .rules import ALL_RULES

    if not select:
        return list(ALL_RULES)
    wanted = {part.strip().upper() for part in select.split(",") if part.strip()}
    known = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = wanted - set(known)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule id(s) {sorted(unknown)} "
            f"(known: {sorted(known)})"
        )
    return [known[rule_id] for rule_id in sorted(wanted)]


def run(
    paths: Sequence[str],
    *,
    output_format: str = "text",
    select: Optional[str] = None,
    list_rules: bool = False,
) -> int:
    """Shared entry point of ``repro lint`` and ``python -m repro.lint``.

    Returns:
        Process exit code: 0 when no violations were reported, 1 otherwise.
    """
    from .rules import ALL_RULES

    if list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"       invariant: {rule.invariant}")
            if rule.scopes:
                print(f"       scope: {', '.join(rule.scopes)}")
        return 0
    targets = [Path(path) for path in paths] if paths else [default_target()]
    missing = [target for target in targets if not target.exists()]
    if missing:
        print(
            f"repro lint: no such file or directory: "
            f"{', '.join(str(path) for path in missing)}",
            file=sys.stderr,
        )
        return 2
    rules = _select_rules(select)
    violations, files_checked = lint_paths(targets, rules)
    renderer = render_json if output_format == "json" else render_text
    print(renderer(violations, files_checked))
    return 1 if violations else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags on ``parser`` (shared with the ``repro`` CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with the invariant it guards, then exit",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro package",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run(
        args.paths,
        output_format=args.format,
        select=args.select,
        list_rules=args.list_rules,
    )


__all__ = [
    "PARSE_ERROR_RULE",
    "LintViolation",
    "ModuleInfo",
    "Rule",
    "add_lint_arguments",
    "default_target",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "load_module",
    "main",
    "package_relpath",
    "render_json",
    "render_text",
    "run",
]
