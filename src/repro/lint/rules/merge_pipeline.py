"""RL007: point-outcome merging flows through the execution plane's MergeSink.

The execution plane (:mod:`repro.core.execution`) owns the single merge
pipeline of every sweep backend: the :class:`~repro.core.execution.MergeSink`
is the one place that appends outcomes to the durable journal, maintains the
transport channel counters in ``SweepResult.metadata`` and calls the
assembler.  That is what makes serial, pool and distributed sweeps bit-for-bit
identical -- and what keeps the crash-safety story auditable: a point is
journaled exactly when the sink merged it, never elsewhere.

Three drift modes would quietly fork the pipeline:

* **Direct assembly** -- a backend calling ``assemble_sweep_result`` itself
  would bypass the sink's merge (first-result-wins, fewer-errors-wins,
  synthesized failures) and resume filtering.
* **Side-channel journaling** -- ``journal.record(...)`` outside the sink
  desynchronises the journal from the merged outcome map, so a resumed sweep
  replays points the merge never saw (or misses points it did).
* **Ad-hoc metadata counters** -- mutating ``result.metadata[...]`` outside
  the plane forks the results-plane / journal / fabric accounting that the
  conformance suite asserts on.

This rule pins all three to ``core/execution.py`` (plus the body of the
assembler itself, which builds the portfolio/recovery summaries it owns).
Backends report outcomes by yielding events or pushing into the sink; they
contribute backend-specific metadata via ``ExecutionBackend.metadata``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Modules that *are* the merge pipeline: the sink/backends themselves.
PIPELINE_MODULES: Tuple[str, ...] = ("core/execution.py",)

#: Functions whose bodies are part of the pipeline wherever they live
#: (the assembler builds its own portfolio/recovery metadata).
PIPELINE_FUNCTIONS: Tuple[str, ...] = ("assemble_sweep_result",)


def _pipeline_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """Line spans of :data:`PIPELINE_FUNCTIONS` definitions in ``tree``."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in PIPELINE_FUNCTIONS:
                spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


class MergePipelineRule(Rule):
    """Outcome merging, journaling and result metadata stay in MergeSink."""

    rule_id = "RL007"
    title = "merge pipeline: outcomes flow through core/execution.MergeSink"
    invariant = (
        "only core/execution.py (and assemble_sweep_result itself) appends to "
        "a sweep journal, mutates SweepResult.metadata or calls the assembler"
    )
    fix_hint = (
        "report outcomes through the MergeSink (accept / accept_unit / "
        "synthesize_missing) and contribute backend metadata via "
        "ExecutionBackend.metadata(plan, sink)"
    )
    scopes = None  # the whole package: a forked pipeline may hide anywhere

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield a violation per merge-pipeline bypass outside the plane."""
        if module.relpath in PIPELINE_MODULES:
            return
        spans = _pipeline_spans(module.tree)

        def in_pipeline(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(start <= line <= end for start, end in spans)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if not name or in_pipeline(node):
                    continue
                parts = name.split(".")
                if parts[-1] == "assemble_sweep_result":
                    yield self.violation(
                        module,
                        node,
                        "assemble_sweep_result called outside the execution "
                        "plane; assembly must run once, in MergeSink.assemble, "
                        "after every backend outcome has merged",
                    )
                elif (
                    parts[-1] == "record"
                    and len(parts) > 1
                    and "journal" in parts[-2].lower()
                ):
                    yield self.violation(
                        module,
                        node,
                        f"journal append {name!r} outside the execution plane; "
                        "only MergeSink.accept/accept_unit journal outcomes, "
                        "keeping the journal in lockstep with the merge",
                    )
                elif (
                    len(parts) >= 2
                    and parts[-1] == "update"
                    and parts[-2] == "metadata"
                ):
                    yield self.violation(
                        module,
                        node,
                        f"sweep metadata mutated via {name!r} outside the "
                        "execution plane; backends contribute metadata through "
                        "ExecutionBackend.metadata(plan, sink)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                if in_pipeline(node):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    name = dotted_name(target.value)
                    if name and name.split(".")[-1] == "metadata":
                        yield self.violation(
                            module,
                            node,
                            f"sweep metadata key assigned on {name!r} outside "
                            "the execution plane; backends contribute metadata "
                            "through ExecutionBackend.metadata(plan, sink)",
                        )


__all__ = ["MergePipelineRule", "PIPELINE_FUNCTIONS", "PIPELINE_MODULES"]
