"""RL003: the certified solver paths stay bit-for-bit deterministic.

The paper's claims are *certified* bounds: the value-iteration residuals and
the exact-chain stationary analysis must reproduce exactly across runs and
machines, or the certificates mean nothing.  Three classic leaks break that:

* **Unseeded / global-state RNGs** -- stdlib :mod:`random` and the legacy
  ``numpy.random.*`` module functions draw from hidden global state; only
  explicitly seeded ``numpy.random.default_rng(seed)`` generators are
  reproducible by construction.
* **Wall-clock reads** -- ``time.time()`` / ``datetime.now()`` smuggle the
  current time into results.  (Monotonic timers for *measuring* durations,
  ``time.perf_counter`` / ``time.monotonic``, are fine: they never feed model
  construction.)
* **Set-order iteration** -- iterating a ``set`` directly hands model
  construction a hash-seed-dependent order; sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Wall-clock reads (non-deterministic across runs).  Monotonic timers used
#: for duration measurement are deliberately absent.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Legacy ``numpy.random`` attributes that are allowed (explicitly seeded
#: generator constructors, not global-state draws).
_NUMPY_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


def _is_legacy_numpy_random(name: str) -> bool:
    """Whether ``name`` is a global-state ``numpy.random`` draw (``np.random.rand``...)."""
    for prefix in ("np.random.", "numpy.random."):
        if name.startswith(prefix):
            return name[len(prefix):].split(".")[0] not in _NUMPY_RANDOM_ALLOWED
    return False


def _set_iteration_target(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if iterating it leaks hash order (else ``None``)."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
    return None


class CertifiedPathDeterminismRule(Rule):
    """No hidden RNG state, wall clocks or hash order in certified paths."""

    rule_id = "RL003"
    title = "determinism: certified solver paths must reproduce bit-for-bit"
    invariant = (
        "attacks/, mdp/ and analysis/ use only seeded generators, no wall-clock "
        "reads, and never iterate raw sets"
    )
    fix_hint = "see the per-violation hint"
    scopes = ("attacks/", "mdp/", "analysis/")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield RNG, wall-clock and set-order violations in ``module``."""
        for node in ast.walk(module.tree):
            yield from self._check_imports(module, node)
            yield from self._check_calls(module, node)
            yield from self._check_set_iteration(module, node)

    def _check_imports(self, module: ModuleInfo, node: ast.AST) -> Iterator[LintViolation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self._rng_violation(module, node, "import random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield self._rng_violation(module, node, "from random import ...")

    def _check_calls(self, module: ModuleInfo, node: ast.AST) -> Iterator[LintViolation]:
        if not isinstance(node, ast.Call):
            return
        name = dotted_name(node.func)
        if not name:
            return
        if name.startswith("random."):
            yield self._rng_violation(module, node, f"{name}()")
        elif _is_legacy_numpy_random(name):
            yield self._rng_violation(module, node, f"{name}()")
        elif name in WALL_CLOCK_CALLS:
            yield self.violation(
                module,
                node,
                f"wall-clock read {name}() in a certified path; results would "
                "depend on when they were computed",
                fix_hint=(
                    "pass timestamps in from the caller; use time.perf_counter() "
                    "only for duration measurement"
                ),
            )

    def _rng_violation(self, module: ModuleInfo, node: ast.AST, what: str) -> LintViolation:
        return self.violation(
            module,
            node,
            f"{what} draws from hidden global RNG state in a certified path",
            fix_hint="thread an explicitly seeded numpy.random.default_rng(seed) through",
        )

    def _check_set_iteration(
        self, module: ModuleInfo, node: ast.AST
    ) -> Iterator[LintViolation]:
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for target in iters:
            described = _set_iteration_target(target)
            if described:
                yield self.violation(
                    module,
                    target,
                    f"iterating {described} feeds hash-seed-dependent order into a "
                    "certified path",
                    fix_hint="iterate sorted(...) of the set so the order is canonical",
                )


__all__ = ["WALL_CLOCK_CALLS", "CertifiedPathDeterminismRule"]
