"""RL006: every fault-injection site is registered and statically resolvable.

The deterministic fault harness (:mod:`repro.core.faults`) only works if a
plan like ``REPRO_FAULTS=distributed.result_drop:2`` can name every site that
exists in the code.  Two drift modes would silently break that contract:

* **Unregistered sites** -- a ``maybe_fail("new.site")`` call whose name is
  missing from :data:`repro.core.faults.FAULT_SITES` can never fire (the
  harness rejects unknown names at plan-parse time, so the new site would be
  untestable) and, worse, ``maybe_fail`` itself raises on unregistered names
  at runtime -- on the hot path, in production.
* **Dynamic site names** -- ``maybe_fail(some_variable)`` cannot be checked
  against the registry statically, so the chaos suite cannot enumerate the
  sites it must cover.

This rule pins both: every ``maybe_fail`` call must pass a string literal
that is a key of ``FAULT_SITES``.  The registry itself stays the single
source of truth -- registering a new site there and calling it is all a new
fault point needs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name


class FaultSiteRegistrationRule(Rule):
    """Every ``maybe_fail`` call names a registered fault site, statically."""

    rule_id = "RL006"
    title = "fault sites: every maybe_fail call is registered and literal"
    invariant = (
        "maybe_fail(...) is always called with a string literal that is a key "
        "of repro.core.faults.FAULT_SITES"
    )
    fix_hint = (
        "register the site in FAULT_SITES (core/faults.py) and pass its name "
        "as a string literal"
    )
    scopes = None  # the whole package: fault sites may live anywhere

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield a violation per unregistered or non-literal fault site."""
        # Deferred so importing the ruleset never imports the runtime package.
        from repro.core.faults import FAULT_SITES

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name or name.split(".")[-1] != "maybe_fail":
                continue
            if not node.args:
                yield self.violation(
                    module,
                    node,
                    "maybe_fail() called without a site name",
                )
                continue
            site = node.args[0]
            if not (isinstance(site, ast.Constant) and isinstance(site.value, str)):
                yield self.violation(
                    module,
                    node,
                    "maybe_fail site is not a string literal, so it cannot be "
                    "statically checked against FAULT_SITES",
                )
                continue
            if site.value not in FAULT_SITES:
                yield self.violation(
                    module,
                    node,
                    f"maybe_fail site {site.value!r} is not registered in "
                    "repro.core.faults.FAULT_SITES; a fault plan can never "
                    "name it and maybe_fail would raise at runtime",
                )


__all__ = ["FaultSiteRegistrationRule"]
