"""RL005: every registered attack scenario honours the structure contract.

The scenario registry (:mod:`repro.attacks.registry`) promises that *every*
engine feature -- shared-structure planes, sweep workers, the distributed
coordinator, reporting -- works on *any* registered scenario.  That promise
holds only if each ``@register_attack`` class implements the full contract:

* an explicit ``BUFFER_KEYS`` declaration (the shm plane layout is part of
  the wire/worker contract, so inheriting it silently hides mismatches);
* the nine engine hooks the registry documents (``explore``, ``to_buffers``,
  ``from_buffers``, ``series_name``, ``grid_configs``, ``build_model``,
  ``make_policy``, ``simulate``, ``honest_strategy``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Hooks every registered scenario class must define (or inherit *explicitly*
#: by redeclaring -- the lint demands a definition in the class body).
REQUIRED_HOOKS = (
    "explore",
    "to_buffers",
    "from_buffers",
    "series_name",
    "grid_configs",
    "build_model",
    "make_policy",
    "simulate",
    "honest_strategy",
)


def _is_register_attack_decorator(node: ast.expr) -> bool:
    """Whether ``node`` is a ``@register_attack(...)`` (or bare) decorator."""
    target = node.func if isinstance(node, ast.Call) else node
    name = dotted_name(target)
    return bool(name) and name.split(".")[-1] == "register_attack"


def _class_definitions(node: ast.ClassDef) -> Set[str]:
    """Names bound directly in the class body (methods and assignments)."""
    defined: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            defined.add(stmt.target.id)
    return defined


class ScenarioContractRule(Rule):
    """``@register_attack`` classes declare ``BUFFER_KEYS`` and all hooks."""

    rule_id = "RL005"
    title = "scenario contract completeness for registered attacks"
    invariant = (
        "every @register_attack class declares BUFFER_KEYS and defines all "
        f"{len(REQUIRED_HOOKS)} engine hooks in its own body"
    )
    fix_hint = (
        "declare BUFFER_KEYS explicitly (e.g. ScenarioStructure.BUFFER_KEYS) and "
        "define every missing hook"
    )
    scopes = None  # registration can happen anywhere

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield contract gaps in every registered scenario class."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_is_register_attack_decorator(d) for d in node.decorator_list):
                continue
            defined = _class_definitions(node)
            if "BUFFER_KEYS" not in defined:
                yield self.violation(
                    module,
                    node,
                    f"registered scenario {node.name!r} does not declare "
                    "BUFFER_KEYS in its own body; the plane layout must be an "
                    "explicit part of the contract",
                    fix_hint=(
                        "add `BUFFER_KEYS = ScenarioStructure.BUFFER_KEYS` (or the "
                        "extended tuple) to the class body"
                    ),
                )
            missing = [hook for hook in REQUIRED_HOOKS if hook not in defined]
            if missing:
                yield self.violation(
                    module,
                    node,
                    f"registered scenario {node.name!r} is missing required "
                    f"hook(s): {', '.join(missing)}",
                    fix_hint="define the missing hooks so every engine feature works",
                )


__all__ = ["REQUIRED_HOOKS", "ScenarioContractRule"]
