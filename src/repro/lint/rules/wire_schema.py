"""RL004: coordinator and workers agree on the frame wire schema.

:mod:`repro.core.distributed` speaks a length-prefixed JSON frame protocol
between one coordinator and many workers.  Both directions live in the same
file, so schema drift -- a consumer reading a header key no producer writes,
or a frame ``type`` nobody dispatches on -- is statically visible:

* every header key *consumed* (``header.get("K")`` / ``header["K"]``) must be
  *produced* by some frame dict literal;
* the set of frame *types* produced (``{"type": "hello", ...}``) must equal
  the set dispatched on (``kind == "hello"``) -- an unproduced dispatch arm is
  dead protocol, an undispatched frame is silently dropped;
* ``PROTOCOL_VERSION`` must appear on both sides: embedded in a produced
  frame and compared against on receipt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Names whose ``.get("K")`` / ``["K"]`` accesses count as header consumption.
_HEADER_NAMES = ("header", "frame", "message")

#: Names whose string comparisons count as frame-type dispatch.
_KIND_NAMES = ("kind", "frame_type", "msg_type")


def _is_header_expr(node: ast.expr) -> bool:
    """Whether ``node`` names a received frame header."""
    name = dotted_name(node)
    return bool(name) and name.split(".")[-1] in _HEADER_NAMES


def _produced_frames(tree: ast.Module) -> Tuple[Set[str], Set[str], List[ast.Dict]]:
    """Constant keys and ``type`` values of every frame dict literal produced."""
    keys: Set[str] = set()
    types: Set[str] = set()
    frames: List[ast.Dict] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        constant_keys = {
            key.value
            for key in node.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if "type" not in constant_keys:
            continue
        frames.append(node)
        keys |= constant_keys
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                types.add(value.value)
    return keys, types, frames


def _consumed_accesses(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """Every header key consumed, with the consuming node."""
    consumed: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and _is_header_expr(func.value)
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                consumed.append((node.args[0].value, node))
        elif isinstance(node, ast.Subscript):
            if (
                _is_header_expr(node.value)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                consumed.append((node.slice.value, node))
    return consumed


def _dispatched_types(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """Every frame ``type`` string dispatched on, with the comparing node."""
    dispatched: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        names_kind = any(
            (dotted_name(side) or "").split(".")[-1] in _KIND_NAMES
            or (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Attribute)
                and side.func.attr == "get"
                and _is_header_expr(side.func.value)
                and side.args
                and isinstance(side.args[0], ast.Constant)
                and side.args[0].value == "type"
            )
            for side in sides
        )
        if not names_kind:
            continue
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                dispatched.append((side.value, node))
            elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                for elt in side.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        dispatched.append((elt.value, node))
    return dispatched


def _protocol_version_sides(tree: ast.Module) -> Tuple[bool, bool]:
    """Whether ``PROTOCOL_VERSION`` is (produced in a frame, compared on receipt)."""
    produced = False
    compared = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None and "PROTOCOL_VERSION" in [
                    part
                    for sub in ast.walk(value)
                    if isinstance(sub, ast.Name)
                    for part in [sub.id]
                ]:
                    produced = True
        elif isinstance(node, ast.Compare):
            for side in [node.left, *node.comparators]:
                name = dotted_name(side)
                if name and name.split(".")[-1] == "PROTOCOL_VERSION":
                    compared = True
    return produced, compared


class WireSchemaAgreementRule(Rule):
    """Consumed header keys / dispatched types match produced frames."""

    rule_id = "RL004"
    title = "wire-schema agreement between coordinator and workers"
    invariant = (
        "every consumed frame-header key is produced, produced and dispatched "
        "frame types coincide, and PROTOCOL_VERSION guards both sides"
    )
    fix_hint = "keep producer dict literals and consumer header accesses in sync"
    scopes = ("core/distributed.py",)

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield schema-drift violations between producers and consumers."""
        produced_keys, produced_types, frames = _produced_frames(module.tree)
        if not frames:
            # Not a protocol module (e.g. a minimal fixture): nothing to match.
            return
        for key, node in _consumed_accesses(module.tree):
            if key not in produced_keys:
                yield self.violation(
                    module,
                    node,
                    f"header key {key!r} is consumed but no produced frame "
                    "carries it",
                    fix_hint="add the key to the producing frame or drop the read",
                )
        dispatched = _dispatched_types(module.tree)
        dispatched_types = {value for value, _ in dispatched}
        for value, node in dispatched:
            if value not in produced_types:
                yield self.violation(
                    module,
                    node,
                    f"frame type {value!r} is dispatched on but never produced",
                    fix_hint="produce the frame or delete the dead dispatch arm",
                )
        for value in sorted(produced_types - dispatched_types):
            yield self.violation(
                module,
                module.tree,
                f"frame type {value!r} is produced but never dispatched on; "
                "receivers drop it silently",
                fix_hint="add a dispatch arm (or an explicit ignore) for the type",
            )
        produced_pv, compared_pv = _protocol_version_sides(module.tree)
        if produced_pv and not compared_pv:
            yield self.violation(
                module,
                module.tree,
                "PROTOCOL_VERSION is sent but never checked on receipt",
                fix_hint="reject frames whose protocol differs from PROTOCOL_VERSION",
            )
        elif compared_pv and not produced_pv:
            yield self.violation(
                module,
                module.tree,
                "PROTOCOL_VERSION is checked on receipt but never sent",
                fix_hint="embed PROTOCOL_VERSION in the handshake frame",
            )


__all__ = ["WireSchemaAgreementRule"]
