"""RL002: fork/async safety on the engine's concurrency paths.

The engine mixes three concurrency regimes -- an asyncio coordinator
(:mod:`repro.core.distributed`), forked worker pools with module-global
caches (:mod:`repro.core.engine`), and thread-shared registries
(:mod:`repro.attacks.registry`).  Three hazards recur at their seams:

* **Blocking calls in coroutines** -- a ``time.sleep`` or ``subprocess.run``
  inside ``async def`` stalls the whole event loop, silently serialising the
  coordinator.
* **Unguarded module-global rebinding** -- worker initialisers and lazy
  caches rebind module globals; without a lock, two threads racing through
  the lazy path each build (and half-install) the value.
* **Bare ``lock.acquire()`` statements** -- an acquire without ``with``
  leaks the lock on any exception before the matching ``release``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Calls that block the event loop when issued from a coroutine.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "input",
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _with_mentions_lock(node: ast.With) -> bool:
    """Whether any context manager of ``node`` names something lock-like."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = dotted_name(expr)
        if name and "lock" in name.lower():
            return True
    return False


def _global_names(function: ast.AST) -> Set[str]:
    """Names declared ``global`` directly inside ``function`` (not nested defs)."""
    names: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                continue
            if isinstance(child, ast.Global):
                names.update(child.names)
            visit(child)

    visit(function)
    return names


def _assigned_names(node: ast.stmt) -> List[ast.Name]:
    """Plain-``Name`` targets rebound by an assignment statement."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    names: List[ast.Name] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(e for e in target.elts if isinstance(e, ast.Name))
    return names


class ForkAsyncSafetyRule(Rule):
    """Coroutines stay non-blocking; global rebinding stays lock-guarded."""

    rule_id = "RL002"
    title = "fork/async safety: blocking coroutines, unguarded globals, bare acquire"
    invariant = (
        "coroutines never issue blocking calls, module globals are rebound only "
        "under a lock, and locks are held via with-blocks"
    )
    fix_hint = "see the per-violation hint"
    #: Global-rebinding checks are confined to the engine-facing trees; the
    #: coroutine and acquire checks run wherever the rule applies.
    scopes = ("core/", "attacks/", "mdp/", "analysis/")

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield blocking-coroutine, unguarded-global and bare-acquire violations."""
        yield from self._check_blocking_calls(module)
        yield from self._check_global_rebinding(module)
        yield from self._check_bare_acquire(module)

    # -- blocking calls inside ``async def`` --------------------------------

    def _check_blocking_calls(self, module: ModuleInfo) -> Iterator[LintViolation]:
        violations: List[LintViolation] = []

        def visit(node: ast.AST, in_async: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_async = in_async
                if isinstance(child, _FUNCTION_NODES):
                    # The *innermost* function decides: a sync helper nested
                    # inside a coroutine runs wherever it is called from.
                    child_async = isinstance(child, ast.AsyncFunctionDef)
                elif isinstance(child, ast.Call) and in_async:
                    name = dotted_name(child.func)
                    if name in BLOCKING_CALLS:
                        violations.append(
                            self.violation(
                                module,
                                child,
                                f"blocking call {name}() inside a coroutine stalls "
                                "the event loop",
                                fix_hint=(
                                    "await the asyncio equivalent (e.g. asyncio.sleep, "
                                    "loop.run_in_executor) instead"
                                ),
                            )
                        )
                visit(child, child_async)

        visit(module.tree, False)
        yield from violations

    # -- module-global rebinding without a lock -----------------------------

    def _check_global_rebinding(self, module: ModuleInfo) -> Iterator[LintViolation]:
        violations: List[LintViolation] = []

        def check_function(function: ast.AST) -> None:
            globals_here = _global_names(function)

            def visit(node: ast.AST, lock_depth: int) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, _FUNCTION_NODES):
                        check_function(child)
                        continue
                    child_depth = lock_depth
                    if isinstance(child, ast.With) and _with_mentions_lock(child):
                        child_depth += 1
                    if globals_here and lock_depth == 0:
                        for name in _assigned_names(child) if isinstance(child, ast.stmt) else []:
                            if name.id in globals_here:
                                violations.append(
                                    self.violation(
                                        module,
                                        child,
                                        f"module global {name.id!r} is rebound without "
                                        "holding a lock; concurrent callers race on the "
                                        "lazy initialisation",
                                        fix_hint=(
                                            "wrap the rebinding in `with <module>_LOCK:` "
                                            "(double-checked if the fast path matters)"
                                        ),
                                    )
                                )
                    visit(child, child_depth)

            visit(function, 0)

        def find_functions(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNCTION_NODES):
                    check_function(child)
                else:
                    find_functions(child)

        find_functions(module.tree)
        yield from violations

    # -- bare ``lock.acquire()`` statements ---------------------------------

    def _check_bare_acquire(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                yield self.violation(
                    module,
                    node,
                    "bare .acquire() statement; an exception before the matching "
                    "release() leaks the lock",
                    fix_hint="hold the lock with a `with` block instead",
                )


__all__ = ["BLOCKING_CALLS", "ForkAsyncSafetyRule"]
