"""Built-in ruleset of ``repro lint``: one module per invariant family.

``ALL_RULES`` is the canonical registry consumed by the engine, the CLI and
the tests; rules run in id order.
"""

from typing import Tuple

from ..engine import Rule
from .async_safety import ForkAsyncSafetyRule
from .determinism import CertifiedPathDeterminismRule
from .fault_sites import FaultSiteRegistrationRule
from .merge_pipeline import MergePipelineRule
from .scenario_contract import ScenarioContractRule
from .shm_lifecycle import SharedMemoryLifecycleRule
from .wire_schema import WireSchemaAgreementRule

#: Every built-in rule, in id order.
ALL_RULES: Tuple[Rule, ...] = (
    SharedMemoryLifecycleRule(),
    ForkAsyncSafetyRule(),
    CertifiedPathDeterminismRule(),
    WireSchemaAgreementRule(),
    ScenarioContractRule(),
    FaultSiteRegistrationRule(),
    MergePipelineRule(),
)

__all__ = [
    "ALL_RULES",
    "CertifiedPathDeterminismRule",
    "FaultSiteRegistrationRule",
    "ForkAsyncSafetyRule",
    "MergePipelineRule",
    "ScenarioContractRule",
    "SharedMemoryLifecycleRule",
    "WireSchemaAgreementRule",
]
