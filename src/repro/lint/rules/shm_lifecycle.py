"""RL001: shared-memory segments live in the substrate and are release-paired.

Shared-memory segments are kernel objects that outlive processes; leaking one
is the failure mode the whole plane design engineers against (see
:mod:`repro.core.shm`).  Two invariants keep that manageable:

* **Containment** -- only the substrate module (``core/shm.py``) may touch
  ``multiprocessing.shared_memory`` at all.  Every plane -- the model plane
  (``core/shared_structures.py``), the results plane
  (``core/results_plane.py``) and any future plane -- goes through the
  substrate's segment API, which carries the refcounts, the creator-unlink
  discipline and the fork-inheritance hygiene exactly once.
* **Release pairing** -- inside the substrate, every ``SharedMemory(...,
  create=True)`` must be wrapped in a ``try`` (allocation and first-write
  failures must clean up), its enclosing function must reference the release
  machinery (``close``/``unlink``/``release`` or a ``*register*`` call that
  hands the segment to the atexit-backstopped registry), and the module must
  install an ``atexit`` backstop for segments still open at interpreter exit.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..engine import LintViolation, ModuleInfo, Rule, dotted_name

#: Modules allowed to construct / attach SharedMemory segments directly.
#: Exactly one: the substrate.  The planes built on it (shared_structures,
#: results_plane) are deliberately *not* exempt -- they must go through the
#: substrate's create/attach API like everyone else.
ALLOWED_MODULES = ("core/shm.py",)

#: Call / attribute names whose presence counts as release machinery.
_RELEASE_NAMES = ("close", "unlink", "release")


def _is_shared_memory_import(node: ast.AST) -> bool:
    """Whether ``node`` imports ``multiprocessing.shared_memory`` (any form)."""
    if isinstance(node, ast.Import):
        return any(alias.name.startswith("multiprocessing.shared_memory") for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        if node.module == "multiprocessing":
            return any(alias.name == "shared_memory" for alias in node.names)
        return bool(node.module and node.module.startswith("multiprocessing.shared_memory"))
    return False


def _is_shared_memory_call(node: ast.Call) -> bool:
    """Whether ``node`` constructs a ``SharedMemory`` object."""
    name = dotted_name(node.func)
    return bool(name) and name.split(".")[-1] == "SharedMemory"


def _creates_segment(node: ast.Call) -> bool:
    """Whether the ``SharedMemory`` call allocates (``create=True``)."""
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _module_has_atexit_backstop(tree: ast.Module) -> bool:
    """Whether the module references ``atexit.register`` anywhere (incl. decorators)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "register":
            if dotted_name(node) == "atexit.register":
                return True
    return False


def _function_has_release_machinery(function: ast.AST) -> bool:
    """Whether ``function`` references close/unlink/release or a ``*register*`` call."""
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute) and node.attr in _RELEASE_NAMES:
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and "register" in name.split(".")[-1].lower():
                return True
    return False


class SharedMemoryLifecycleRule(Rule):
    """``SharedMemory`` stays in the substrate; every create is release-paired."""

    rule_id = "RL001"
    title = "shm-lifecycle: SharedMemory containment and release pairing"
    invariant = (
        "shared-memory segments are created only inside the substrate modules "
        "and every creation is paired with try/atexit release machinery"
    )
    fix_hint = (
        "go through the segment API of core/shm.py (create_segment / "
        "attach_segment) instead of touching SharedMemory directly"
    )
    scopes = None  # containment is checked everywhere

    def check(self, module: ModuleInfo) -> Iterator[LintViolation]:
        """Yield containment violations (everywhere) and pairing violations (substrate)."""
        allowed = module.relpath in ALLOWED_MODULES
        if not allowed:
            yield from self._check_containment(module)
            return
        yield from self._check_release_pairing(module)

    def _check_containment(self, module: ModuleInfo) -> Iterator[LintViolation]:
        for node in ast.walk(module.tree):
            if _is_shared_memory_import(node):
                yield self.violation(
                    module,
                    node,
                    "multiprocessing.shared_memory imported outside the shm substrate "
                    f"(allowed: {', '.join(ALLOWED_MODULES)})",
                )
            elif isinstance(node, ast.Call) and _is_shared_memory_call(node):
                yield self.violation(
                    module,
                    node,
                    "SharedMemory constructed outside the shm substrate "
                    f"(allowed: {', '.join(ALLOWED_MODULES)})",
                )

    def _check_release_pairing(self, module: ModuleInfo) -> Iterator[LintViolation]:
        has_backstop = _module_has_atexit_backstop(module.tree)
        for function, try_depth, call in _iter_create_calls(module.tree):
            if function is None:
                yield self.violation(
                    module,
                    call,
                    "SharedMemory(create=True) at module level; segment creation must "
                    "happen inside a function that owns its release",
                    fix_hint="move the allocation into a function paired with release/unlink",
                )
                continue
            if try_depth == 0:
                yield self.violation(
                    module,
                    call,
                    "SharedMemory(create=True) is not wrapped in a try statement; an "
                    "allocation or first-write failure would leak the segment",
                    fix_hint="wrap the create and first write in try, unlinking on failure",
                )
            if not _function_has_release_machinery(function):
                yield self.violation(
                    module,
                    call,
                    f"function {function.name!r} creates a segment but never references "
                    "the release machinery (close/unlink/release or a registry call)",
                    fix_hint=(
                        "pair the create with close()/unlink() in a finally/except, or "
                        "register the plane with the atexit-backstopped registry"
                    ),
                )
            if not has_backstop:
                yield self.violation(
                    module,
                    call,
                    "module creates shared-memory segments but installs no "
                    "atexit.register backstop for interpreter shutdown",
                    fix_hint="add an atexit.register hook releasing still-open segments",
                )


def _iter_create_calls(
    tree: ast.Module,
) -> List[Tuple[Optional[ast.AST], int, ast.Call]]:
    """Every ``SharedMemory(create=True)`` call with its enclosing function and try depth."""
    found: List[Tuple[Optional[ast.AST], int, ast.Call]] = []

    def walk(node: ast.AST, function: Optional[ast.AST], try_depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_function = function
            child_depth = try_depth
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_function = child
                child_depth = 0
            elif isinstance(child, ast.Try):
                # The body is protected; handlers/orelse/finally run outside
                # the protection of *this* try.
                for stmt in child.body:
                    walk_one(stmt, child_function, child_depth + 1)
                for stmt in child.handlers + child.orelse + child.finalbody:
                    walk_one(stmt, child_function, child_depth)
                continue
            if (
                isinstance(child, ast.Call)
                and _is_shared_memory_call(child)
                and _creates_segment(child)
            ):
                found.append((function, try_depth, child))
            walk(child, child_function, child_depth)

    def walk_one(node: ast.AST, function: Optional[ast.AST], try_depth: int) -> None:
        if (
            isinstance(node, ast.Call)
            and _is_shared_memory_call(node)
            and _creates_segment(node)
        ):
            found.append((function, try_depth, node))
        walk(node, function, try_depth)

    walk(tree, None, 0)
    return found


__all__ = ["ALLOWED_MODULES", "SharedMemoryLifecycleRule"]
