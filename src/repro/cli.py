"""Command-line interface.

Six subcommands mirror the library's main entry points (installed as both
``repro`` and the legacy ``repro-selfish-mining``)::

    repro analyze  --p 0.3 --gamma 0.5 --depth 2 --forks 1
    repro sweep    --gamma 0.5 --p-step 0.05 --csv out.csv
    repro simulate --p 0.3 --gamma 0.5 --depth 2 --forks 1 --steps 100000
    repro worker   --connect HOST:PORT
    repro attacks
    repro lint

``analyze`` runs Algorithm 1 for one parameter point, ``sweep`` regenerates a
Figure 2 panel, ``simulate`` Monte-Carlo-validates the computed strategy,
``worker`` serves a remote distributed-sweep coordinator (see below),
``attacks`` lists the registered attack scenarios, and ``lint`` runs the
AST-based invariant checker (:mod:`repro.lint`) over the package source.

Every model-facing subcommand accepts ``--attack NAME`` to select a registered
attack scenario (:mod:`repro.attacks.registry`): the paper's ``selfish-forks``
family (default) or the classic ``sm-actions`` ADOPT/OVERRIDE/WAIT/MATCH
space, plus anything registered at runtime.  ``sweep`` additionally takes
``--grid SPEC``, interpreted by the selected scenario (``default``, ``paper``,
or scenario-specific tokens such as ``d2f1l4`` / ``l8:overpaying``), and
``--variant`` to select a scenario variant for every grid configuration.
``--max-depth`` is deprecated in favour of ``--grid max-depth=N``.

The full flag-by-flag reference lives in ``docs/cli.md``.

Distributed sweeps
------------------

``repro sweep --distributed --listen HOST:PORT`` runs the sweep as the
coordinator of a multi-host fabric (:mod:`repro.core.distributed`): grid units
stream over TCP to every ``repro worker --connect HOST:PORT`` process that
joins, model skeletons travel as the same flat buffers the shared-memory plane
uses (remote workers perform zero explorations), and results merge into the
identical CSV/plot pipeline -- bit-for-bit equal to a serial run.
``--min-workers N`` delays scheduling until N workers have joined;
``--heartbeat-seconds`` and ``--straggler-seconds`` tune failure detection and
speculative reassignment.

Solver selection and batched probes
-----------------------------------

``--solver`` picks the mean-payoff backend used inside Algorithm 1 and accepts
both full names and short aliases: ``pi``/``policy_iteration`` (default,
exact), ``vi``/``value_iteration`` (certified bounds),
``lp``/``linear_program`` (independent cross-check) and ``portfolio`` (policy
iteration raced against value iteration per probe; the first finisher wins and
the winning backend is reported per sweep point in the CSV's
``solver_backend`` column).

``--batch-probes K`` switches the binary search to batched mode: every round
stacks ``K`` evenly spaced beta probes against the shared model structure and
solves them in one vectorised call, shrinking the interval by a factor of
``K + 1`` per round instead of 2.  ``--batch-probes auto`` lets Algorithm 1
pick ``K`` per round from the observed per-probe solve-cost curve instead of
fixing it up front.  Either way the certified bounds match the sequential
search's within ``--epsilon``.

Sweep-only engine flags: ``--workers N`` fans grid points out over N worker
processes, ``--warm-start-across-points`` chains solver warm starts along the
p axis, ``--reuse-p-bounds`` additionally starts each point's binary search
from the previous p point's certified lower bound (sound because ERRev* is
monotone in p), and ``--no-results-plane`` returns worker outcomes by pickling
instead of the shared-memory results plane (ablation).

Crash safety
------------

``repro sweep --journal PATH`` appends every computed point to a durable,
checksummed journal (:mod:`repro.core.journal`); ``--resume`` replays an
existing journal and recomputes only the missing delta, bit-for-bit identical
to an uninterrupted run.  ``--journal-fsync {never,close,always}`` tunes
durability.  ``repro worker --reconnect-seconds S`` keeps a worker dialling a
restarted coordinator for S seconds instead of exiting when the connection
drops.  ``--inject-faults SPEC`` (both subcommands) installs a deterministic
fault plan (:mod:`repro.core.faults`) for chaos testing.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from dataclasses import replace

from .config import AnalysisConfig, AttackParams, ProtocolParams, known_scenario_names
from .core import SelfishMiningAnalyzer, ascii_plot, render_table, write_csv
from .core.distributed import parse_address, run_worker
from .core.reporting import ProgressReporter
from .core.sweep import SweepConfig, run_sweep
from .lint.engine import add_lint_arguments

#: Short aliases accepted by ``--solver`` alongside the full backend names.
SOLVER_ALIASES = {
    "pi": "policy_iteration",
    "vi": "value_iteration",
    "lp": "linear_program",
}

_SOLVER_CHOICES = (
    "policy_iteration",
    "value_iteration",
    "linear_program",
    "portfolio",
    *SOLVER_ALIASES,
)


def _resolve_solver(name: str) -> str:
    """Map a ``--solver`` value (full name or alias) to the backend name."""
    return SOLVER_ALIASES.get(name, name)


def _positive_int(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return workers


def _positive_float(value: str) -> float:
    number = float(value)
    if not number > 0.0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {value}")
    return number


def _nonnegative_float(value: str) -> float:
    number = float(value)
    if number < 0.0:
        raise argparse.ArgumentTypeError(f"must be a non-negative number, got {value}")
    return number


def _fault_plan_spec(value: str) -> str:
    """Validate an ``--inject-faults`` plan early; return the spec unchanged."""
    from .core.faults import parse_fault_plan
    from .exceptions import ConfigurationError

    try:
        parse_fault_plan(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _install_faults(args: argparse.Namespace) -> None:
    """Install the ``--inject-faults`` plan process-wide (and for children).

    The spec is exported through ``REPRO_FAULTS`` so forked/spawned pool
    workers and ``repro worker`` subprocesses self-install the same plan, and
    installed in-process so the current command sees it immediately.
    """
    spec = getattr(args, "inject_faults", None)
    if spec is None:
        return
    import os

    from .core.faults import FAULTS_ENV_VAR, install_fault_plan

    os.environ[FAULTS_ENV_VAR] = spec
    install_fault_plan(spec)


def _address(value: str) -> str:
    """Validate a ``HOST:PORT`` argument and return it unchanged."""
    try:
        parse_address(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _attack_name(value: str) -> str:
    """Validate an ``--attack`` value against the registered scenario names."""
    names = known_scenario_names()
    if value not in names:
        raise argparse.ArgumentTypeError(
            f"unknown attack scenario {value!r} (known: {', '.join(sorted(names))}; "
            f"see `repro attacks`)"
        )
    return value


def _batch_probes(value: str):
    """Parse ``--batch-probes``: a positive probe count or the string ``auto``."""
    if value.strip().lower() == "auto":
        return "auto"
    try:
        return _positive_int(value)
    except (argparse.ArgumentTypeError, ValueError):
        raise argparse.ArgumentTypeError(
            f'must be a positive integer or "auto", got {value}'
        ) from None


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--attack",
        type=_attack_name,
        default="selfish-forks",
        metavar="NAME",
        help="registered attack scenario (see `repro attacks`)",
    )
    parser.add_argument(
        "--variant",
        type=str,
        default="",
        metavar="NAME",
        help="scenario variant, e.g. 'overpaying' for sm-actions (default: none)",
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    _add_scenario_arguments(parser)
    parser.add_argument("--p", type=float, default=0.3, help="adversarial resource fraction")
    parser.add_argument("--gamma", type=float, default=0.5, help="switching probability")
    parser.add_argument("--depth", "-d", type=int, default=2, help="attack depth d")
    parser.add_argument("--forks", "-f", type=int, default=1, help="forking number f")
    parser.add_argument("--max-fork-length", "-l", type=int, default=4, help="maximal fork length l")
    parser.add_argument(
        "--epsilon", type=_positive_float, default=1e-3, help="binary search precision"
    )
    _add_solver_arguments(parser)


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver",
        choices=_SOLVER_CHOICES,
        default="policy_iteration",
        help="mean-payoff solver backend (pi/vi/lp aliases; portfolio races pi vs vi)",
    )
    parser.add_argument(
        "--batch-probes",
        type=_batch_probes,
        default=1,
        metavar="K",
        help="beta probes per binary-search round: a count (1 = classic bisection) "
        "or 'auto' to adapt K per round to the observed solve-cost curve",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fully automated selfish mining analysis in efficient proof systems blockchains",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="run Algorithm 1 for one parameter point")
    _add_model_arguments(analyze)

    sweep = subparsers.add_parser("sweep", help="regenerate a Figure 2 panel")
    _add_scenario_arguments(sweep)
    sweep.add_argument("--gamma", type=float, default=0.5)
    sweep.add_argument("--p-max", type=float, default=0.3)
    sweep.add_argument("--p-step", type=_positive_float, default=0.05)
    sweep.add_argument("--epsilon", type=_positive_float, default=1e-3)
    sweep.add_argument(
        "--grid",
        type=str,
        default=None,
        metavar="SPEC",
        help="attack grid specification interpreted by the selected scenario "
        "('default', 'paper', or scenario tokens such as 'd1f1,d2f1l6' / 'l4,l8')",
    )
    sweep.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="deprecated: largest selfish-forks attack depth to include "
        "(use --grid max-depth=N instead)",
    )
    sweep.add_argument("--csv", type=str, default=None, help="optional CSV output path")
    _add_solver_arguments(sweep)
    sweep.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for the sweep engine (1 = serial)",
    )
    sweep.add_argument(
        "--warm-start-across-points",
        action="store_true",
        help="chain solver warm starts along the p axis of each series",
    )
    sweep.add_argument(
        "--reuse-p-bounds",
        action="store_true",
        help="start each point's binary search from the previous p point's certified "
        "lower bound (ERRev* is monotone in p)",
    )
    sweep.add_argument(
        "--no-structure-cache",
        action="store_true",
        help="rebuild the MDP from scratch at every grid point (disable the skeleton cache)",
    )
    sweep.add_argument(
        "--no-results-plane",
        action="store_true",
        help="return worker outcomes by pickling instead of the shared-memory "
        "results plane (ablation switch; workers > 1 only)",
    )
    sweep.add_argument(
        "--distributed",
        action="store_true",
        help="coordinate the sweep over remote `repro worker` processes instead of a local pool",
    )
    sweep.add_argument(
        "--listen",
        type=_address,
        default="127.0.0.1:7355",
        metavar="HOST:PORT",
        help="address the distributed coordinator listens on (port 0 = ephemeral; "
        "requires --distributed)",
    )
    sweep.add_argument(
        "--min-workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="workers to wait for before streaming distributed work units",
    )
    sweep.add_argument(
        "--heartbeat-seconds",
        type=_positive_float,
        default=None,
        metavar="S",
        help="worker heartbeat interval; a worker silent for 3x this is presumed dead "
        "(default 5, or REPRO_HEARTBEAT_SECONDS)",
    )
    sweep.add_argument(
        "--straggler-seconds",
        type=_positive_float,
        default=None,
        metavar="S",
        help="age after which an outstanding unit is speculatively duplicated onto an "
        "idle worker (default 30, or REPRO_STRAGGLER_SECONDS)",
    )
    sweep.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="PATH",
        help="append every computed point to a durable, checksummed journal at PATH "
        "(crash-safe; see --resume)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="replay the intact points of the --journal file and recompute only the "
        "missing delta (bit-for-bit identical to an uninterrupted run)",
    )
    sweep.add_argument(
        "--journal-fsync",
        choices=("never", "close", "always"),
        default="close",
        help="journal durability: fsync never, once on close (default), or per record",
    )
    sweep.add_argument(
        "--inject-faults",
        type=_fault_plan_spec,
        default=None,
        metavar="SPEC",
        help="deterministic fault plan for chaos testing, e.g. "
        "'engine.point_transient:2,distributed.result_drop:1:*' "
        "(also read from REPRO_FAULTS)",
    )
    sweep.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and summary diagnostics on stderr "
        "(the plot, failures and CSV path still print)",
    )

    worker = subparsers.add_parser(
        "worker", help="serve a distributed-sweep coordinator as a remote worker"
    )
    worker.add_argument(
        "--connect",
        type=_address,
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator started with `repro sweep --distributed --listen`",
    )
    worker.add_argument(
        "--capacity",
        type=_positive_int,
        default=1,
        metavar="K",
        help="work units this worker computes concurrently (thread pool size)",
    )
    worker.add_argument(
        "--heartbeat-seconds",
        type=_positive_float,
        default=None,
        metavar="S",
        help="interval between heartbeat frames sent to the coordinator",
    )
    worker.add_argument(
        "--connect-retry-seconds",
        type=_positive_float,
        default=10.0,
        metavar="S",
        help="how long to keep retrying the initial connection (workers may start first)",
    )
    worker.add_argument(
        "--reconnect-seconds",
        type=_nonnegative_float,
        default=60.0,
        metavar="S",
        help="after losing the coordinator, keep redialling for S seconds before "
        "giving up (0 = exit on first disconnect; default 60)",
    )
    worker.add_argument(
        "--inject-faults",
        type=_fault_plan_spec,
        default=None,
        metavar="SPEC",
        help="deterministic fault plan for chaos testing (also read from REPRO_FAULTS)",
    )
    worker.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-unit progress lines on stderr",
    )

    simulate = subparsers.add_parser("simulate", help="Monte-Carlo validate the computed strategy")
    _add_model_arguments(simulate)
    simulate.add_argument("--steps", type=int, default=100_000, help="simulated block events")
    simulate.add_argument("--seed", type=int, default=0, help="random seed")

    subparsers.add_parser("attacks", help="list the registered attack scenarios")

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checker over the package source",
    )
    add_lint_arguments(lint)
    return parser


def _attack_params(args: argparse.Namespace) -> AttackParams:
    """Build the :class:`AttackParams` of a model-facing subcommand."""
    return AttackParams(
        depth=args.depth,
        forks=args.forks,
        max_fork_length=args.max_fork_length,
        scenario=args.attack,
        variant=args.variant,
    )


def _command_analyze(args: argparse.Namespace) -> int:
    analyzer = SelfishMiningAnalyzer(
        ProtocolParams(p=args.p, gamma=args.gamma),
        _attack_params(args),
        AnalysisConfig(
            epsilon=args.epsilon,
            solver=_resolve_solver(args.solver),
            batch_probes=args.batch_probes,
        ),
    )
    result = analyzer.run()
    rows = [result.to_row()]
    print(render_table(rows))
    print(
        f"\nERRev lower bound: {result.errev_lower_bound:.4f}  "
        f"(strategy achieves {result.strategy_errev:.4f}, honest mining {result.honest_errev:.4f})"
    )
    print(f"MDP: {result.num_states} states, {result.num_transitions} transitions")
    print(f"Time: build {result.build_seconds:.2f}s, analysis {result.analysis_seconds:.2f}s")
    return 0


_MAX_DEPTH_DEPRECATION_WARNED = False


def _sweep_attack_configs(args: argparse.Namespace):
    """Resolve the sweep's attack grid through the selected scenario's builder.

    The legacy ``--max-depth N`` flag is a deprecation shim for
    ``--grid max-depth=N`` (same ladder, built by the scenario's
    ``grid_configs``); it warns once per process and cannot be combined with
    an explicit ``--grid``.
    """
    from .attacks.registry import get_attack

    global _MAX_DEPTH_DEPRECATION_WARNED
    entry = get_attack(args.attack)
    grid_spec = args.grid
    if args.max_depth is not None:
        if grid_spec is not None:
            raise SystemExit("repro sweep: --max-depth and --grid are mutually exclusive")
        if not _MAX_DEPTH_DEPRECATION_WARNED:
            print(
                "warning: --max-depth is deprecated; use --grid max-depth=N "
                "(or explicit --grid tokens such as d1f1,d2f1)",
                file=sys.stderr,
            )
            _MAX_DEPTH_DEPRECATION_WARNED = True
        grid_spec = f"max-depth={args.max_depth}"
    configs = entry.grid_configs(grid_spec or "default")
    if args.variant:
        configs = tuple(replace(attack, variant=args.variant) for attack in configs)
    return configs


def _command_sweep(args: argparse.Namespace) -> int:
    if args.resume and args.journal is None:
        raise SystemExit("repro sweep: --resume requires --journal PATH")
    _install_faults(args)
    num_points = int(round(args.p_max / args.p_step)) + 1
    p_values = tuple(round(index * args.p_step, 4) for index in range(num_points))
    config = SweepConfig(
        p_values=p_values,
        gammas=(args.gamma,),
        attack_configs=_sweep_attack_configs(args),
        attack=args.attack,
        analysis=AnalysisConfig(
            epsilon=args.epsilon,
            solver=_resolve_solver(args.solver),
            batch_probes=args.batch_probes,
        ),
        workers=args.workers,
        use_structure_cache=not args.no_structure_cache,
        use_results_plane=not args.no_results_plane,
        warm_start_across_points=args.warm_start_across_points,
        reuse_p_axis_bounds=args.reuse_p_bounds,
        coordinator=args.listen if args.distributed else None,
        distributed_workers=args.min_workers if args.distributed else 0,
        journal_path=args.journal,
        journal_resume=args.resume,
        journal_fsync=args.journal_fsync,
    )
    # One reporter for every diagnostic line: per-point progress from the
    # execution plane plus the fabric/journal summaries below.  --quiet
    # silences all of it while stdout keeps the actual results.
    reporter = ProgressReporter.stderr(quiet=args.quiet)
    if args.distributed:
        from .core.distributed import run_distributed_sweep

        sweep = run_distributed_sweep(
            config,
            progress=reporter,
            heartbeat_seconds=args.heartbeat_seconds,
            straggler_seconds=args.straggler_seconds,
        )
        fabric = sweep.metadata.get("distributed", {})
        reporter(
            f"distributed: {fabric.get('units', 0)} unit(s) over "
            f"{len(fabric.get('workers', {}))} worker(s), "
            f"{fabric.get('reassigned_units', 0)} reassigned, "
            f"{fabric.get('duplicated_units', 0)} duplicated"
        )
    else:
        sweep = run_sweep(config, progress=reporter)
    journal_meta = sweep.metadata.get("journal")
    if journal_meta:
        reporter(
            f"journal: {journal_meta['path']} "
            f"(replayed {journal_meta['replayed']} point(s), "
            f"recorded {journal_meta['recorded']}, "
            f"skipped {journal_meta['skipped_units']} unit(s))"
        )
    print(ascii_plot(sweep, args.gamma))
    for failure in sweep.failures:
        print(
            f"FAILED p={failure.p} gamma={failure.gamma} {failure.series}: {failure.message}",
            file=sys.stderr,
        )
    if args.csv:
        path = write_csv([point.to_row() for point in sweep.points], args.csv)
        print(f"\nwrote {path}")
    return 0 if not sweep.failures else 1


def _command_worker(args: argparse.Namespace) -> int:
    _install_faults(args)
    summary = run_worker(
        args.connect,
        capacity=args.capacity,
        heartbeat_seconds=args.heartbeat_seconds,
        connect_retry_seconds=args.connect_retry_seconds,
        reconnect_seconds=args.reconnect_seconds,
        progress=ProgressReporter.stderr(quiet=args.quiet),
    )
    print(
        f"worker done: {summary.units} unit(s), {summary.outcomes} point(s), "
        f"builds={summary.builds}, attaches={summary.attaches}, "
        f"reconnects={summary.reconnects}, "
        f"{'clean shutdown' if summary.clean_shutdown else 'connection lost'}"
    )
    return 0 if summary.clean_shutdown else 1


def _command_attacks(args: argparse.Namespace) -> int:
    from .attacks.registry import list_attacks

    for entry in list_attacks():
        default_grid = ", ".join(
            entry.series_name(attack) for attack in entry.grid_configs("default")
        )
        proof_systems = ", ".join(sorted(entry.proof_systems())) or "-"
        print(entry.scenario_id)
        print(f"  {entry.description}")
        print(f"  default grid:  {default_grid}")
        print(f"  proof systems: {proof_systems}")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .lint.engine import run

    return run(
        args.paths,
        output_format=args.format,
        select=args.select,
        list_rules=args.list_rules,
    )


def _command_simulate(args: argparse.Namespace) -> int:
    analyzer = SelfishMiningAnalyzer(
        ProtocolParams(p=args.p, gamma=args.gamma),
        _attack_params(args),
        AnalysisConfig(
            epsilon=args.epsilon,
            solver=_resolve_solver(args.solver),
            batch_probes=args.batch_probes,
        ),
    )
    result = analyzer.run()
    analyzer.validate_by_simulation(result, num_steps=args.steps, seed=args.seed)
    print(
        f"analysis ERRev = {result.strategy_errev:.4f}, "
        f"simulated ERRev = {result.simulated_errev:.4f} over {args.steps} steps"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-selfish-mining`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "analyze":
        return _command_analyze(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "attacks":
        return _command_attacks(args)
    if args.command == "lint":
        return _command_lint(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
