"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so that downstream users can
catch a single base class.  Specific subclasses signal configuration problems,
malformed models and solver failures separately because they are usually handled
at different layers (input validation vs numerical analysis).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain."""


class ModelError(ReproError):
    """A Markov decision process or Markov chain is malformed."""


class SolverError(ReproError):
    """A numerical solver failed to produce a valid result."""


class ConvergenceError(SolverError):
    """An iterative solver exceeded its iteration budget before converging."""


class SolverCancelled(SolverError):
    """A solver stopped cooperatively because its cancellation token was set.

    Raised at an iteration boundary by the iterative mean-payoff solvers when a
    :class:`~repro.mdp.cancellation.CancellationToken` passed to them is
    cancelled -- typically because a rival backend already won the portfolio
    race.  Carries the number of iterations completed before stopping so the
    portfolio can account for the work the loser did *not* burn.

    Attributes:
        iterations: Iterations the solver completed before it stopped.
    """

    def __init__(self, message: str, *, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = int(iterations)


class SimulationError(ReproError):
    """The discrete-time blockchain simulator reached an inconsistent state."""
