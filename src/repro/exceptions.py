"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so that downstream users can
catch a single base class.  Specific subclasses signal configuration problems,
malformed models and solver failures separately because they are usually handled
at different layers (input validation vs numerical analysis).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain."""


class ModelError(ReproError):
    """A Markov decision process or Markov chain is malformed."""


class SolverError(ReproError):
    """A numerical solver failed to produce a valid result."""


class ConvergenceError(SolverError):
    """An iterative solver exceeded its iteration budget before converging."""


class SimulationError(ReproError):
    """The discrete-time blockchain simulator reached an inconsistent state."""
