"""repro -- fully automated selfish mining analysis in efficient proof systems blockchains.

A from-scratch reproduction of the PODC 2024 paper by Chatterjee, Ebrahimzadeh,
Karrabi, Pietrzak, Yeo and Žikelić.  The package provides:

* :mod:`repro.mdp` -- an explicit-state mean-payoff MDP library (the substrate
  replacing the Storm model checker used by the paper),
* :mod:`repro.attacks` -- the paper's multi-fork selfish-mining MDP plus the
  honest, single-tree and Eyal-Sirer baselines,
* :mod:`repro.analysis` -- Algorithm 1 (binary search over ``r_beta``), exact
  strategy evaluation and a Dinkelbach cross-check,
* :mod:`repro.chain` / :mod:`repro.proofs` -- a discrete-time blockchain
  simulator and efficient-proof-system models for Monte-Carlo validation,
* :mod:`repro.core` -- the high-level analyzer, sweeps and reporting.

Quickstart::

    from repro import AnalysisConfig, AttackParams, ProtocolParams, SelfishMiningAnalyzer

    analyzer = SelfishMiningAnalyzer(
        ProtocolParams(p=0.3, gamma=0.5),
        AttackParams(depth=2, forks=1, max_fork_length=4),
        AnalysisConfig(epsilon=1e-3),
    )
    result = analyzer.run()
    print(result.errev_lower_bound, result.honest_errev)
"""

from .config import (
    PAPER_ATTACK_CONFIGS,
    PAPER_GAMMAS,
    AnalysisConfig,
    AttackParams,
    ProtocolParams,
)
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    ModelError,
    ReproError,
    SimulationError,
    SolverCancelled,
    SolverError,
)
from .core import (
    AnalysisResult,
    SelfishMiningAnalyzer,
    SweepConfig,
    SweepPoint,
    SweepResult,
    ascii_plot,
    render_table,
    run_sweep,
    sweep_figure2,
    write_csv,
)
from .analysis import (
    dinkelbach_analysis,
    evaluate_strategy_errev,
    formal_analysis,
)
from .attacks import (
    build_selfish_forks_mdp,
    eyal_sirer_relative_revenue,
    honest_errev,
    single_tree_errev,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ProtocolParams",
    "AttackParams",
    "AnalysisConfig",
    "PAPER_ATTACK_CONFIGS",
    "PAPER_GAMMAS",
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "SolverError",
    "ConvergenceError",
    "SolverCancelled",
    "SimulationError",
    "SelfishMiningAnalyzer",
    "AnalysisResult",
    "SweepConfig",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "sweep_figure2",
    "ascii_plot",
    "render_table",
    "write_csv",
    "formal_analysis",
    "dinkelbach_analysis",
    "evaluate_strategy_errev",
    "build_selfish_forks_mdp",
    "honest_errev",
    "single_tree_errev",
    "eyal_sirer_relative_revenue",
]
