"""Concrete mining policies for the chain simulator.

* :class:`HonestPolicy` -- never withholds or releases anything.
* :class:`SelfishForksPolicy` -- replays a positional strategy computed by the
  formal analysis on the selfish-mining MDP.
* :class:`GreedyLeadPolicy` -- a simple hand-written heuristic (publish as soon
  as a fork strictly overtakes the public chain); useful as a sanity baseline
  and in tests that need a non-trivial but solver-independent policy.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import ModelError
from ..mdp import Strategy
from .base import AttackDecision, MiningPolicy
from .fork_state import (
    TYPE_HONEST,
    TYPE_MINING,
    ForkState,
    ReleaseAction,
)


class HonestPolicy(MiningPolicy):
    """The protocol-following policy: always keep mining, never release."""

    def decide(self, state: ForkState) -> AttackDecision:
        """Always keep mining on the public tip."""
        return AttackDecision.mine()

    @property
    def name(self) -> str:
        """Human-readable policy name."""
        return "honest"


class SelfishForksPolicy(MiningPolicy):
    """Replay a positional MDP strategy inside the simulator.

    The simulator presents abstract states identical to the MDP's state labels,
    so the policy simply looks up the chosen action.  States that were not
    reachable in the MDP (which should not occur when parameters match) fall
    back to mining, and the miss is counted for diagnostics.
    """

    def __init__(self, strategy: Strategy) -> None:
        if strategy.mdp.state_labels is None:
            raise ModelError("the strategy's MDP carries no state labels")
        self._strategy = strategy
        self._mdp = strategy.mdp
        self.unknown_states = 0

    def reset(self) -> None:
        """Clear the unknown-state diagnostic counter."""
        self.unknown_states = 0

    def decide(self, state: ForkState) -> AttackDecision:
        """Look the state up in the MDP strategy (mine on unreachable states)."""
        try:
            index = self._mdp.state_of_label(state)
        except ModelError:
            self.unknown_states += 1
            return AttackDecision.mine()
        action = self._strategy.action(index)
        if action == ("mine",):
            return AttackDecision.mine()
        _, depth, fork, blocks = action
        return AttackDecision(release=ReleaseAction(depth=depth, fork=fork, blocks=blocks))

    @property
    def name(self) -> str:
        """Human-readable policy name."""
        return "selfish-forks(optimal)"


class GreedyLeadPolicy(MiningPolicy):
    """Publish the first fork that strictly overtakes the public chain.

    After an honest block (``TYPE_HONEST``) the policy additionally publishes an
    equal-length fork (betting on the gamma race) when no strictly longer fork is
    available and ``race_on_tie`` is set.
    """

    def __init__(self, race_on_tie: bool = False) -> None:
        self.race_on_tie = race_on_tie

    def decide(self, state: ForkState) -> AttackDecision:
        """Release the deepest strictly-winning fork, else mine (or race ties)."""
        c_matrix, _, state_type = state
        if state_type == TYPE_MINING:
            return AttackDecision.mine()
        # Number of public blocks a release must beat: i - 1 above the fork base,
        # plus the pending honest block in a TYPE_HONEST state.
        pending = 1 if state_type == TYPE_HONEST else 0
        best: Optional[ReleaseAction] = None
        for i, row in enumerate(c_matrix, start=1):
            winning_length = i + pending
            for j, length in enumerate(row, start=1):
                if length >= winning_length:
                    candidate = ReleaseAction(depth=i, fork=j, blocks=winning_length)
                    if best is None or candidate.depth > best.depth:
                        best = candidate
        if best is not None:
            return AttackDecision(release=best)
        if self.race_on_tie and state_type == TYPE_HONEST:
            for i, row in enumerate(c_matrix, start=1):
                for j, length in enumerate(row, start=1):
                    if length >= i:
                        return AttackDecision(release=ReleaseAction(depth=i, fork=j, blocks=i))
        return AttackDecision.mine()

    @property
    def name(self) -> str:
        """Human-readable policy name."""
        return "greedy-lead"
