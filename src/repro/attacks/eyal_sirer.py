"""Classic Eyal-Sirer selfish mining in proof-of-work blockchains.

This module provides the closed-form relative revenue of the original selfish
mining attack (Eyal & Sirer 2014/2018, "Majority is not enough") as a reference
point and cross-check for the efficient-proof-systems analysis: with one fork,
depth-one behaviour and a single mined block per step, the multi-fork attack
degenerates towards the PoW setting.
"""

from __future__ import annotations

from .._validation import check_probability


def eyal_sirer_relative_revenue(alpha: float, gamma: float) -> float:
    """Closed-form relative revenue of the classic PoW selfish-mining attack.

    Args:
        alpha: Relative hashing power of the selfish pool (the paper's ``p``).
        gamma: Fraction of honest miners that mine on the pool's block in a tie.

    Returns:
        The long-run fraction of main-chain blocks owned by the selfish pool
        (Eyal & Sirer, equation for the pool's revenue share).
    """
    alpha = check_probability(alpha, "alpha")
    gamma = check_probability(gamma, "gamma")
    if alpha in (0.0, 1.0):
        return alpha
    numerator = alpha * (1 - alpha) ** 2 * (4 * alpha + gamma * (1 - 2 * alpha)) - alpha**3
    denominator = 1 - alpha * (1 + (2 - alpha) * alpha)
    if denominator <= 0:
        # Beyond the model's validity range the pool dominates the chain.
        return 1.0
    revenue = numerator / denominator
    return min(max(revenue, 0.0), 1.0)


def eyal_sirer_profitability_threshold(gamma: float) -> float:
    """Smallest resource share at which selfish mining beats honest mining.

    Eyal & Sirer show the threshold is ``(1 - gamma) / (3 - 2 * gamma)``: 1/3 for
    ``gamma = 0`` and 0 for ``gamma = 1``.
    """
    gamma = check_probability(gamma, "gamma")
    return (1.0 - gamma) / (3.0 - 2.0 * gamma)


def is_selfish_mining_profitable(alpha: float, gamma: float) -> bool:
    """Whether classic selfish mining strictly beats honest mining."""
    return eyal_sirer_relative_revenue(alpha, gamma) > check_probability(alpha, "alpha")
