"""ADOPT/OVERRIDE/WAIT/MATCH selfish mining as a registered attack scenario.

This is the classic single-fork action space of Sapirshtein et al. ("Optimal
selfish mining strategies in Bitcoin"), registered as the ``"sm-actions"``
scenario behind the same skeleton-cache and flat-buffer interface as the
paper's multi-fork family, so every engine feature (warm starts, batched
probes, shared-memory planes, the distributed fabric) applies to it unchanged.

State and actions
-----------------
A state is ``(a, h, fork)``: the lengths of the adversary's private chain and
of the honest chain since the last common ancestor, plus a fork flag --
``IRRELEVANT`` (last block was adversarial), ``RELEVANT`` (last block was
honest, a match is possible) or ``ACTIVE`` (the adversary has published a
matching branch and the network is split).  Actions: ``adopt`` (give up and
mine on the honest chain), ``override`` (publish ``h + 1`` blocks, orphaning
the honest chain), ``wait`` (keep mining privately) and ``match`` (publish an
equal-length branch, triggering the ``gamma`` race).

Both chains are truncated at ``attack.max_fork_length`` (the paper's ``l``),
which keeps the MDP finite; ``attack.depth`` and ``attack.forks`` are unused
by this scenario.  Two reward regimes bound the truncation error from either
side (Sapirshtein et al., Section 4):

* *underpaying* (``variant=""``, the default): blocks mined past the bound are
  simply discarded, so the adversary is under-rewarded and the computed value
  is a lower bound;
* *overpaying* (``variant="overpaying"``): boundary states are settled with a
  closed-form expected reward of the untruncated random-walk race, which
  over-rewards the adversary and yields an upper bound.  The settlement
  rewards depend on ``p``, so they are patched into a copy of the reward
  array at instantiation time (the skeleton stays parameter-free).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from ..config import AttackParams, ProtocolParams
from ..exceptions import ConfigurationError, ModelError
from ..mdp import MDP, Strategy
from .base import MiningPolicy
from .fork_state import (
    PROB_ADVERSARY,
    PROB_GAMMA_HONEST,
    PROB_HONEST,
    PROB_ONE_MINUS_GAMMA_HONEST,
)
from .registry import ScenarioStructure, SupportSignature, register_attack

#: Fork-flag values of the ``(a, h, fork)`` state.
IRRELEVANT = 0
RELEVANT = 1
ACTIVE = 2

#: Action labels, in the fixed per-state enumeration order.
ADOPT = ("adopt",)
OVERRIDE = ("override",)
WAIT = ("wait",)
MATCH = ("match",)
#: Forced terminal action of overpaying boundary states.
SETTLE = ("settle",)

_ACTION_CODES = {ADOPT: 0, OVERRIDE: 1, WAIT: 2, MATCH: 3, SETTLE: 4}
_ACTION_LABELS = {code: label for label, code in _ACTION_CODES.items()}

_REGIME_UNDERPAYING = 0
_REGIME_OVERPAYING = 1
_REGIME_CODES = {"": _REGIME_UNDERPAYING, "overpaying": _REGIME_OVERPAYING}
_REGIME_VARIANTS = {code: variant for variant, code in _REGIME_CODES.items()}

#: Number of reward components per transition: ``(r_A, r_H)``.
NUM_REWARD_COMPONENTS = 2

_DEFAULT_MAX_STATES = 20_000_000


def _regime_of(attack: AttackParams) -> int:
    """Map ``attack.variant`` to a reward-regime code.

    Raises:
        ConfigurationError: If the attack belongs to another scenario or names
            an unknown variant (only ``""`` and ``"overpaying"`` exist; the
            underpaying regime is spelled ``""`` so that serialised skeletons
            round-trip to an identical cache key).
    """
    if attack.scenario != "sm-actions":
        raise ConfigurationError(
            f"attack {attack!r} belongs to scenario {attack.scenario!r}, not 'sm-actions'"
        )
    regime = _REGIME_CODES.get(attack.variant)
    if regime is None:
        raise ConfigurationError(
            f"unknown sm-actions variant {attack.variant!r}; valid variants: "
            f"'' (underpaying, the default) and 'overpaying'"
        )
    return regime


@register_attack("sm-actions")
class SmActionsStructure(ScenarioStructure):
    """ADOPT/OVERRIDE/WAIT/MATCH selfish mining (single fork, ``gamma`` race).

    The skeleton layout extends the canonical buffers with the indices and
    ``(a, h)`` labels of the overpaying settlement transitions, whose rewards
    are ``p``-dependent and therefore refilled per parameter point by
    :meth:`_rewards_for` (underpaying skeletons carry empty settle arrays).
    """

    SCENARIO_VERSION = 1
    #: Single concurrent mining target, so every proof system's ``k`` suffices.
    PROOF_SYSTEMS = ("pow", "pos", "pospacetime", "vdf")

    BUFFER_KEYS = ScenarioStructure.BUFFER_KEYS + ("settle_trans", "settle_ah")

    def __init__(
        self,
        *,
        settle_trans: Optional[np.ndarray] = None,
        settle_ah: Optional[np.ndarray] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(**kwargs)
        self.settle_trans = (
            settle_trans if settle_trans is not None else np.empty(0, dtype=np.int64)
        )
        self.settle_ah = (
            settle_ah if settle_ah is not None else np.empty((0, 2), dtype=np.int32)
        )

    # -------------------------------------------------------------------- refill

    def _rewards_for(self, protocol: ProtocolParams) -> np.ndarray:
        """Patch the ``p``-dependent overpaying settlement rewards into a copy.

        For a boundary state ``(a, h)`` the settlement credits the expected
        outcome of the untruncated biased random walk: with ``K = p(1-p) /
        (1-2p)^2`` and the adversary ahead (``a >= h``), ``r_A = K + C`` and
        ``r_H = -C`` where ``C = ((a-h)/(1-2p) + a + h) / 2``; behind
        (``h > a``), with ``q = p/(1-p)``, ``r_A = q^(h-a) (K + (h-a)/(1-2p))``
        and ``r_H = h (1 - q^(h-a))``.

        Raises:
            ModelError: For the overpaying regime at ``p >= 0.5``, where the
                closed forms diverge (the walk is no longer biased towards the
                honest chain).
        """
        if self.settle_trans.size == 0:
            return self.trans_reward
        p = protocol.p
        if p >= 0.5:
            raise ModelError(
                f"the overpaying settlement rewards diverge for p >= 0.5 (got p={p}); "
                f"use the underpaying variant for super-majority adversaries"
            )
        rewards = np.array(self.trans_reward, dtype=float, copy=True)
        a = self.settle_ah[:, 0].astype(float)
        h = self.settle_ah[:, 1].astype(float)
        drift = 1.0 - 2.0 * p
        k_const = p * (1.0 - p) / (drift * drift)
        ahead = a >= h
        c_term = ((a - h) / drift + a + h) / 2.0
        with np.errstate(divide="ignore", invalid="ignore"):
            decay = np.where(ahead, 1.0, (p / (1.0 - p)) ** (h - a))
        r_a = np.where(ahead, k_const + c_term, decay * (k_const + (h - a) / drift))
        r_h = np.where(ahead, -c_term, h * (1.0 - decay))
        rewards[self.settle_trans, 0] = r_a
        rewards[self.settle_trans, 1] = r_h
        return rewards

    # --------------------------------------------------------------- scenario API

    @classmethod
    def explore(
        cls,
        attack: AttackParams,
        signature: SupportSignature,
        *,
        max_states: Optional[int] = _DEFAULT_MAX_STATES,
    ) -> "SmActionsStructure":
        """Breadth-first exploration of the reachable ``(a, h, fork)`` fragment.

        Raises:
            ConfigurationError: On an unknown variant or when the exploration
                exceeds ``max_states``.
        """
        regime = _regime_of(attack)
        l = attack.max_fork_length
        start = (0, 0, IRRELEVANT)
        state_ids: Dict[Tuple[int, int, int], int] = {start: 0}
        labels: List[Hashable] = [start]
        queue: deque = deque([start])

        row_state: List[int] = []
        row_actions: List[Hashable] = []
        state_row_counts: List[int] = []
        trans_succ: List[int] = []
        trans_kind: List[int] = []
        trans_sigma: List[int] = []
        trans_mult: List[int] = []
        trans_reward: List[Tuple[float, float]] = []
        row_trans_offsets: List[int] = [0]
        settle_trans: List[int] = []
        settle_ah: List[Tuple[int, int]] = []

        def state_index(label: Tuple[int, int, int]) -> int:
            index = state_ids.get(label)
            if index is None:
                index = len(labels)
                state_ids[label] = index
                labels.append(label)
                queue.append(label)
                if max_states is not None and len(labels) > max_states:
                    raise ConfigurationError(
                        f"state-space exploration exceeded max_states={max_states}; "
                        f"reduce l or raise the cap explicitly"
                    )
            return index

        def actions_of(a: int, h: int, fork: int) -> Iterator[Tuple[Hashable, List[tuple]]]:
            """Yield ``(label, transitions)`` with symbolic probability tags.

            Each transition is ``(successor, kind, sigma, (r_A, r_H))``; the
            race tags fold the mining lottery and the tie-break together.
            """
            if a == l or h == l:
                if regime == _REGIME_OVERPAYING:
                    # Truncation frontier: forced settlement with closed-form
                    # rewards patched in per parameter point (recorded below).
                    yield (
                        SETTLE,
                        [
                            ((1, 0, IRRELEVANT), PROB_ADVERSARY, 1, (0.0, 0.0)),
                            ((0, 1, RELEVANT), PROB_HONEST, 1, (0.0, 0.0)),
                        ],
                    )
                    return
                # Underpaying frontier: waiting (and matching) are forbidden so
                # the race always resolves -- conceding at ``h == l`` discards
                # the private chain, which is what under-rewards the adversary.
                if h == l or h >= 1:
                    reward = (0.0, float(h))
                    yield (
                        ADOPT,
                        [
                            ((1, 0, IRRELEVANT), PROB_ADVERSARY, 1, reward),
                            ((0, 1, RELEVANT), PROB_HONEST, 1, reward),
                        ],
                    )
                if h < l:
                    reward = (float(h + 1), 0.0)
                    yield (
                        OVERRIDE,
                        [
                            ((a - h, 0, IRRELEVANT), PROB_ADVERSARY, 1, reward),
                            ((a - h - 1, 1, RELEVANT), PROB_HONEST, 1, reward),
                        ],
                    )
                return
            race = [
                ((min(a + 1, l), h, ACTIVE), PROB_ADVERSARY, 1, (0.0, 0.0)),
                ((a - h, 1, RELEVANT), PROB_GAMMA_HONEST, 0, (float(h), 0.0)),
                ((a, min(h + 1, l), RELEVANT), PROB_ONE_MINUS_GAMMA_HONEST, 0, (0.0, 0.0)),
            ]
            if h >= 1:
                reward = (0.0, float(h))
                yield (
                    ADOPT,
                    [
                        ((1, 0, IRRELEVANT), PROB_ADVERSARY, 1, reward),
                        ((0, 1, RELEVANT), PROB_HONEST, 1, reward),
                    ],
                )
            if a > h:
                reward = (float(h + 1), 0.0)
                yield (
                    OVERRIDE,
                    [
                        ((a - h, 0, IRRELEVANT), PROB_ADVERSARY, 1, reward),
                        ((a - h - 1, 1, RELEVANT), PROB_HONEST, 1, reward),
                    ],
                )
            if fork == ACTIVE:
                yield (WAIT, race)
            else:
                yield (
                    WAIT,
                    [
                        ((min(a + 1, l), h, IRRELEVANT), PROB_ADVERSARY, 1, (0.0, 0.0)),
                        ((a, min(h + 1, l), RELEVANT), PROB_HONEST, 1, (0.0, 0.0)),
                    ],
                )
            if fork == RELEVANT and a >= h >= 1:
                yield (MATCH, race)

        while queue:
            state = queue.popleft()
            owner_index = state_ids[state]
            a, h, fork = state
            num_rows_before = len(row_state)
            for label, transitions in actions_of(a, h, fork):
                kept = [entry for entry in transitions if signature.keeps(entry[1])]
                if not kept:
                    continue
                row_state.append(owner_index)
                row_actions.append(label)
                for successor, kind, sigma, reward in kept:
                    if label == SETTLE:
                        settle_trans.append(len(trans_succ))
                        settle_ah.append((a, h))
                    trans_succ.append(state_index(successor))
                    trans_kind.append(kind)
                    trans_sigma.append(sigma)
                    trans_mult.append(1)
                    trans_reward.append(reward)
                row_trans_offsets.append(len(trans_succ))
            if len(row_state) == num_rows_before:
                raise ConfigurationError(
                    f"state {state!r} has no actions with positive probability under "
                    f"support {signature}"
                )
            state_row_counts.append(len(row_state) - num_rows_before)

        state_row_offsets = np.zeros(len(labels) + 1, dtype=np.int64)
        np.cumsum(np.asarray(state_row_counts, dtype=np.int64), out=state_row_offsets[1:])

        return cls(
            attack=attack,
            signature=signature,
            initial_state=0,
            state_labels=labels,
            row_state=np.asarray(row_state, dtype=np.int64),
            state_row_offsets=state_row_offsets,
            row_trans_offsets=np.asarray(row_trans_offsets, dtype=np.int64),
            row_actions=row_actions,
            trans_succ=np.asarray(trans_succ, dtype=np.int64),
            trans_kind=np.asarray(trans_kind, dtype=np.int8),
            trans_sigma=np.asarray(trans_sigma, dtype=np.int64),
            trans_mult=np.asarray(trans_mult, dtype=float),
            trans_reward=np.asarray(trans_reward, dtype=float).reshape(
                len(trans_reward), NUM_REWARD_COMPONENTS
            ),
            settle_trans=np.asarray(settle_trans, dtype=np.int64),
            settle_ah=np.asarray(settle_ah, dtype=np.int32).reshape(len(settle_ah), 2),
        )

    @classmethod
    def series_name(cls, attack: AttackParams) -> str:
        """Sweep series label, e.g. ``sm-actions(l=8)``."""
        suffix = f",{attack.variant}" if attack.variant else ""
        return f"sm-actions(l={attack.max_fork_length}{suffix})"

    @classmethod
    def grid_configs(cls, spec: str = "default") -> Tuple[AttackParams, ...]:
        """Parse an sm-actions grid specification.

        Accepted forms: ``"default"`` (``l=4`` and ``l=8``), ``"paper"``
        (``l=4,8,12``) and comma-separated ``lZ[:overpaying]`` tokens, e.g.
        ``"l8,l8:overpaying"``.

        Raises:
            ConfigurationError: On an unparseable specification.
        """
        text = (spec or "default").strip()
        if text == "default":
            lengths: Tuple[Tuple[int, str], ...] = ((4, ""), (8, ""))
        elif text == "paper":
            lengths = ((4, ""), (8, ""), (12, ""))
        else:
            lengths = ()
            for token in text.split(","):
                token = token.strip()
                base, _, variant = token.partition(":")
                if not base.startswith("l") or not base[1:].isdigit():
                    raise ConfigurationError(
                        f"invalid sm-actions grid token {token!r} "
                        f"(expected lZ[:overpaying], 'default' or 'paper')"
                    )
                if variant not in _REGIME_CODES:
                    raise ConfigurationError(
                        f"invalid sm-actions grid token {token!r}: unknown variant "
                        f"{variant!r} (valid: 'overpaying')"
                    )
                lengths += ((int(base[1:]), variant),)
        return tuple(
            AttackParams(
                depth=1,
                forks=1,
                max_fork_length=length,
                scenario="sm-actions",
                variant=variant,
            )
            for length, variant in lengths
        )

    @classmethod
    def build_model(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        *,
        max_states: Optional[int] = None,
        use_structure_cache: bool = True,
    ) -> "SmActionsModel":
        """Build the sm-actions model for one parameter point."""
        kwargs = {} if max_states is None else {"max_states": max_states}
        return build_sm_actions_mdp(
            protocol, attack, use_structure_cache=use_structure_cache, **kwargs
        )

    @classmethod
    def make_policy(cls, strategy: Strategy) -> "SmActionsPolicy":
        """Wrap a formal strategy into an :class:`SmActionsPolicy` replay."""
        return SmActionsPolicy(strategy)

    @classmethod
    def simulate(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        policy: "SmActionsPolicy",
        *,
        num_steps: int,
        seed: int = 0,
    ) -> "SmActionsSimulationResult":
        """Replay ``policy`` in the dedicated ``(a, h, fork)`` chain replay."""
        return simulate_sm_actions(protocol, attack, policy, num_steps=num_steps, seed=seed)

    @classmethod
    def honest_strategy(cls, mdp: MDP) -> Strategy:
        """Protocol-following baseline: override a lead, else adopt, else wait."""
        return Strategy(mdp, honest_strategy_rows(mdp))

    # ------------------------------------------------------------- serialisation

    def to_buffers(self) -> Dict[str, np.ndarray]:
        """Serialise the structure into a dict of flat numpy buffers.

        State labels ``(a, h, fork)`` encode as int32 triples and action labels
        as single int32 codes; the numeric transition arrays (including the
        settle arrays) are returned as-is, so :meth:`from_buffers` is zero-copy
        for everything that matters.
        """
        state_labels = np.asarray(self.state_labels, dtype=np.int32).reshape(
            self.num_states, 3
        )
        row_actions = np.asarray(
            [_ACTION_CODES[action] for action in self.row_actions], dtype=np.int32
        )
        header = np.array(
            [
                self.attack.depth,
                self.attack.forks,
                self.attack.max_fork_length,
                _regime_of(self.attack),
                int(self.signature.adversary_mines),
                int(self.signature.honest_mines),
                int(self.signature.race_win),
                int(self.signature.race_loss),
                self.initial_state,
            ],
            dtype=np.int64,
        )
        return {
            "header": header,
            "state_labels": state_labels,
            "row_actions": row_actions,
            "row_state": self.row_state,
            "state_row_offsets": self.state_row_offsets,
            "row_trans_offsets": self.row_trans_offsets,
            "trans_succ": self.trans_succ,
            "trans_kind": self.trans_kind,
            "trans_sigma": self.trans_sigma,
            "trans_mult": self.trans_mult,
            "trans_reward": self.trans_reward,
            "settle_trans": self.settle_trans,
            "settle_ah": self.settle_ah,
        }

    @classmethod
    def from_buffers(cls, buffers: Dict[str, np.ndarray]) -> "SmActionsStructure":
        """Reconstruct a structure from :meth:`to_buffers` output (zero-copy)."""
        header = [int(value) for value in buffers["header"]]
        attack = AttackParams(
            depth=header[0],
            forks=header[1],
            max_fork_length=header[2],
            scenario="sm-actions",
            variant=_REGIME_VARIANTS[header[3]],
        )
        signature = SupportSignature(
            adversary_mines=bool(header[4]),
            honest_mines=bool(header[5]),
            race_win=bool(header[6]),
            race_loss=bool(header[7]),
        )
        labels: List[Hashable] = [
            (int(a), int(h), int(fork)) for a, h, fork in buffers["state_labels"].tolist()
        ]
        actions: List[Hashable] = [
            _ACTION_LABELS[code] for code in buffers["row_actions"].tolist()
        ]
        return cls(
            attack=attack,
            signature=signature,
            initial_state=header[8],
            state_labels=labels,
            row_state=buffers["row_state"],
            state_row_offsets=buffers["state_row_offsets"],
            row_trans_offsets=buffers["row_trans_offsets"],
            row_actions=actions,
            trans_succ=buffers["trans_succ"],
            trans_kind=buffers["trans_kind"],
            trans_sigma=buffers["trans_sigma"],
            trans_mult=buffers["trans_mult"],
            trans_reward=buffers["trans_reward"],
            settle_trans=buffers["settle_trans"],
            settle_ah=buffers["settle_ah"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SmActionsStructure(l={self.attack.max_fork_length}, "
            f"variant={self.attack.variant or 'underpaying'!r}, "
            f"states={self.num_states}, rows={self.num_rows}, "
            f"transitions={self.num_transitions})"
        )


# ---------------------------------------------------------------------- model


@dataclass
class SmActionsModel:
    """A fully built sm-actions MDP with its construction parameters.

    Attributes:
        mdp: The instantiated Markov decision process.
        protocol: Protocol parameters the probabilities were filled for.
        attack: Attack parameters (``max_fork_length`` and ``variant`` matter).
    """

    mdp: MDP
    protocol: ProtocolParams
    attack: AttackParams

    @property
    def num_states(self) -> int:
        """Number of states of the underlying MDP."""
        return self.mdp.num_states

    def honest_strategy(self) -> Strategy:
        """The protocol-following baseline strategy inside this MDP."""
        return Strategy(self.mdp, honest_strategy_rows(self.mdp))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"sm-actions MDP: l={self.attack.max_fork_length}, "
            f"variant={self.attack.variant or 'underpaying'}, "
            f"{self.mdp.num_states} states, p={self.protocol.p}, "
            f"gamma={self.protocol.gamma}"
        )


def build_sm_actions_mdp(
    protocol: ProtocolParams,
    attack: AttackParams,
    *,
    max_states: Optional[int] = _DEFAULT_MAX_STATES,
    use_structure_cache: bool = True,
) -> SmActionsModel:
    """Build the ADOPT/OVERRIDE/WAIT/MATCH MDP for one parameter point.

    With ``use_structure_cache`` (the default) the ``(p, gamma)``-independent
    skeleton is memoised in the process-local structure cache shared with every
    other scenario; without it the exploration runs afresh.

    Raises:
        ConfigurationError: If ``attack`` names another scenario or an unknown
            variant.
    """
    _regime_of(attack)
    if use_structure_cache:
        from .structure import get_model_structure

        structure = get_model_structure(attack, protocol, max_states=max_states)
    else:
        structure = SmActionsStructure.explore(
            attack, SupportSignature.of(protocol), max_states=max_states
        )
    return SmActionsModel(mdp=structure.instantiate(protocol), protocol=protocol, attack=attack)


def honest_strategy_rows(mdp: MDP) -> np.ndarray:
    """Row choices of the protocol-following baseline.

    Publish a strict lead immediately (``override``), otherwise concede a
    non-empty honest chain (``adopt``), otherwise keep mining (``wait``);
    overpaying boundary states take their forced ``settle``.  For every ``p``
    this earns exactly ``p`` in the long run, mirroring honest mining.
    """
    precedence = {OVERRIDE: 0, ADOPT: 1, SETTLE: 2, WAIT: 3, MATCH: 4}
    rows = np.zeros(mdp.num_states, dtype=np.int64)
    for state in range(mdp.num_states):
        start = int(mdp.state_row_offsets[state])
        end = int(mdp.state_row_offsets[state + 1])
        rows[state] = min(
            range(start, end), key=lambda row: precedence.get(mdp.row_actions[row], 9)
        )
    return rows


# ---------------------------------------------------------------------- replay


class SmActionsPolicy(MiningPolicy):
    """Replay a positional sm-actions strategy.

    Unlike the fork-window policies, :meth:`decide` receives an ``(a, h, fork)``
    label (already truncated to the MDP's bound) and returns the chosen action
    label; the :data:`scenario_name` hook tells simulators to route the replay
    through :func:`simulate_sm_actions` rather than the fork-window simulator.
    """

    scenario_name = "sm-actions"

    def __init__(self, strategy: Strategy) -> None:
        if strategy.mdp.state_labels is None:
            raise ModelError("the strategy's MDP carries no state labels")
        self._strategy = strategy
        self._mdp = strategy.mdp
        self.unknown_states = 0

    def reset(self) -> None:
        """Clear the unknown-state diagnostic counter."""
        self.unknown_states = 0

    def decide(self, state: Tuple[int, int, int]) -> Hashable:
        """Look the ``(a, h, fork)`` label up in the strategy (wait on misses)."""
        try:
            index = self._mdp.state_of_label(tuple(state))
        except ModelError:
            self.unknown_states += 1
            return WAIT
        return self._strategy.action(index)

    @property
    def name(self) -> str:
        """Human-readable policy name."""
        return "sm-actions(optimal)"


@dataclass
class SmActionsSimulationResult:
    """Outcome of an sm-actions chain replay.

    Attributes:
        steps: Number of simulated block events.
        attacker_blocks: Adversarial blocks settled into the main chain.
        honest_blocks: Honest blocks settled into the main chain.
        relative_revenue: ``attacker_blocks / (attacker_blocks + honest_blocks)``.
        policy_name: Name of the replayed policy.
    """

    steps: int
    attacker_blocks: int
    honest_blocks: int
    relative_revenue: float
    policy_name: str


def simulate_sm_actions(
    protocol: ProtocolParams,
    attack: AttackParams,
    policy: MiningPolicy,
    *,
    num_steps: int,
    seed: int = 0,
) -> SmActionsSimulationResult:
    """Monte-Carlo replay of an sm-actions policy on a concrete block process.

    The replay tracks the true (untruncated) race ``(a, h, fork)`` and queries
    the policy at the truncated label, so it estimates the revenue the strategy
    earns on a real chain -- independent of the MDP's incremental reward
    bookkeeping and of the truncation regime (a ``settle`` decision is replayed
    as ``adopt``).  Used by the cross-scenario agreement test.
    """
    rng = np.random.default_rng(seed)
    p, gamma = protocol.p, protocol.gamma
    bound = attack.max_fork_length
    a = h = 0
    fork = IRRELEVANT
    attacker_blocks = honest_blocks = 0
    for _ in range(num_steps):
        action = policy.decide((min(a, bound), min(h, bound), fork))
        if action in (ADOPT, SETTLE):
            honest_blocks += h
            a, h = 0, 0
            fork = IRRELEVANT
        elif action == OVERRIDE:
            if a <= h:
                raise ModelError(f"policy requested an impossible override at (a={a}, h={h})")
            attacker_blocks += h + 1
            a, h = a - h - 1, 0
            fork = IRRELEVANT
        elif action == MATCH:
            if fork != RELEVANT or not a >= h >= 1:
                raise ModelError(f"policy requested an impossible match at (a={a}, h={h})")
            fork = ACTIVE
        elif action != WAIT:
            raise ModelError(f"unknown sm-actions action {action!r}")
        if rng.random() < p:
            a += 1
            if fork != ACTIVE:
                fork = IRRELEVANT
        elif fork == ACTIVE and rng.random() < gamma:
            # Honest miners extend the adversary's matching branch: its h
            # published blocks win, the new honest block is pending on top.
            attacker_blocks += h
            a -= h
            h = 1
            fork = RELEVANT
        else:
            h += 1
            fork = RELEVANT
    settled = attacker_blocks + honest_blocks
    return SmActionsSimulationResult(
        steps=num_steps,
        attacker_blocks=attacker_blocks,
        honest_blocks=honest_blocks,
        relative_revenue=attacker_blocks / settled if settled else 0.0,
        policy_name=policy.name,
    )


__all__ = [
    "ACTIVE",
    "ADOPT",
    "IRRELEVANT",
    "MATCH",
    "OVERRIDE",
    "RELEVANT",
    "SETTLE",
    "WAIT",
    "SmActionsModel",
    "SmActionsPolicy",
    "SmActionsSimulationResult",
    "SmActionsStructure",
    "build_sm_actions_mdp",
    "honest_strategy_rows",
    "simulate_sm_actions",
]
