"""Honest-mining baseline.

When the adversarial coalition follows the protocol it only extends the tip of
the public chain and publishes every block immediately, so every new block is
adversarial with probability exactly ``p`` and the expected relative revenue is
``p`` (chain quality ``1 - p``).  That closed form is the "honest mining" curve
of the paper's Figure 2.

Two in-MDP strategies are provided for testing and comparison purposes:

* the *never-release* strategy (always ``mine``): the adversary keeps everything
  private forever, so its ERRev inside the MDP is 0 -- a useful degenerate
  reference, not an emulation of honest behaviour;
* the *immediate-release* strategy: after privately finding a block on the tip
  the adversary publishes it right away.  For ``d = f = 1`` this reproduces
  honest mining exactly (ERRev = ``p``), which the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from ..config import ProtocolParams
from ..mdp import MDP, Strategy
from .fork_state import TYPE_ADVERSARY, MineAction


def honest_errev(protocol: ProtocolParams) -> float:
    """Expected relative revenue of honest mining: exactly ``p``."""
    return protocol.p


def honest_strategy_rows(mdp: MDP) -> np.ndarray:
    """Row choices of the never-release strategy inside a selfish-mining MDP."""
    rows = mdp.uniform_random_row_choice()
    mine_label = ("mine",)
    for state in range(mdp.num_states):
        rows[state] = mdp.row_index(state, mine_label)
    return rows


def honest_strategy(mdp: MDP) -> Strategy:
    """Return the never-release strategy as a :class:`~repro.mdp.Strategy`."""
    return Strategy(mdp, honest_strategy_rows(mdp))


def immediate_release_strategy(mdp: MDP) -> Strategy:
    """Strategy that publishes the tip fork immediately after mining on it.

    In every ``TYPE_ADVERSARY`` state whose first tip fork is non-empty the
    strategy releases that whole fork (``release(1, 1, C[1,1])``); everywhere
    else it mines.  For ``d = f = 1`` this is exactly honest mining.
    """
    rows = mdp.uniform_random_row_choice()
    mine_label = ("mine",)
    for state in range(mdp.num_states):
        label = mdp.state_labels[state]
        c_matrix, _, state_type = label
        release_label = ("release", 1, 1, c_matrix[0][0])
        if state_type == TYPE_ADVERSARY and c_matrix[0][0] > 0:
            try:
                rows[state] = mdp.row_index(state, release_label)
                continue
            except Exception:  # pragma: no cover - release not available
                pass
        rows[state] = mdp.row_index(state, mine_label)
    return Strategy(mdp, rows)


def always_mine_action() -> MineAction:
    """The action honest miners (and the never-release strategy) always take."""
    return MineAction()
