"""Construction of the multi-fork selfish-mining MDP (the paper's core model).

The reachable state space is explored breadth-first from the initial state; every
discovered state receives its full action set and successor distributions from
the transition kernel in :mod:`repro.attacks.fork_state`.  Reward vectors carry
two components, the number of adversarial (``r_A``) and honest (``r_H``) blocks
finalised by a transition, which Algorithm 1 combines into ``r_beta``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import AttackParams, ProtocolParams
from ..exceptions import ConfigurationError
from ..mdp import MDP, MDPBuilder, Strategy
from . import fork_state
from .fork_state import ForkState, action_label
from .structure import DEFAULT_MAX_STATES, get_model_structure

#: Number of reward components attached to every transition (r_A, r_H).
NUM_REWARD_COMPONENTS = 2


@dataclass
class SelfishForksModel:
    """A built selfish-mining MDP together with its parameters.

    Attributes:
        mdp: The explicit MDP (reward components: ``(r_A, r_H)``).
        protocol: Protocol parameters the model was built for.
        attack: Attack parameters the model was built for.
    """

    mdp: MDP
    protocol: ProtocolParams
    attack: AttackParams

    @property
    def num_states(self) -> int:
        """Number of reachable states."""
        return self.mdp.num_states

    @property
    def num_decision_states(self) -> int:
        """Number of states with more than one available action."""
        return sum(
            1
            for state in range(self.mdp.num_states)
            if self.mdp.num_actions_of(state) > 1
        )

    def honest_strategy(self) -> Strategy:
        """Return the strategy that never releases a fork (always ``mine``)."""
        rows = self.mdp.uniform_random_row_choice()
        mine_label = ("mine",)
        for state in range(self.mdp.num_states):
            rows[state] = self.mdp.row_index(state, mine_label)
        return Strategy(self.mdp, rows)

    def describe(self) -> str:
        """One-line human-readable summary of the model size."""
        return (
            f"selfish-forks MDP: d={self.attack.depth}, f={self.attack.forks}, "
            f"l={self.attack.max_fork_length}, p={self.protocol.p}, gamma={self.protocol.gamma}; "
            f"{self.mdp.num_states} states, {self.mdp.num_rows} state-action pairs, "
            f"{self.mdp.num_transitions} transitions"
        )


def estimate_state_space_size(attack: AttackParams) -> int:
    """Upper bound on the state-space size of the full (non-reachable-pruned) MDP.

    ``(l + 1)^(d*f)`` fork configurations times ``2^(d-1)`` ownership vectors
    times three state types.  The reachable state space is typically smaller.
    """
    d, f, l = attack.depth, attack.forks, attack.max_fork_length
    return (l + 1) ** (d * f) * 2 ** (d - 1) * 3


def build_selfish_forks_mdp(
    protocol: ProtocolParams,
    attack: AttackParams,
    *,
    max_states: Optional[int] = DEFAULT_MAX_STATES,
    use_structure_cache: bool = True,
) -> SelfishForksModel:
    """Build the reachable fragment of the selfish-mining MDP.

    By default the state/action/successor skeleton -- which depends only on
    ``(d, f, l)`` and the support of ``(p, gamma)`` -- is taken from the
    process-local structure cache (:mod:`repro.attacks.structure`) and only the
    probability array is refilled for the concrete parameter point.  Passing
    ``use_structure_cache=False`` forces the legacy from-scratch exploration via
    :class:`~repro.mdp.MDPBuilder`, which serves as an independent reference
    implementation in the test suite.

    Args:
        protocol: Blockchain / network parameters ``(p, gamma)``.
        attack: Attack parameters ``(d, f, l)``.
        max_states: Safety cap on explored states (``None`` disables the cap).
        use_structure_cache: Build through the cached structural skeleton.

    Raises:
        ConfigurationError: If the exploration exceeds ``max_states``.
    """
    if use_structure_cache:
        structure = get_model_structure(attack, protocol, max_states=max_states)
        return SelfishForksModel(
            mdp=structure.instantiate(protocol), protocol=protocol, attack=attack
        )
    builder = MDPBuilder(num_reward_components=NUM_REWARD_COMPONENTS)
    start = fork_state.initial_state(attack)
    builder.add_state(start)
    queue: deque[ForkState] = deque([start])
    expanded: Dict[ForkState, bool] = {start: False}

    while queue:
        state = queue.popleft()
        if expanded[state]:
            continue
        expanded[state] = True
        for action in fork_state.available_actions(state, attack):
            transitions = fork_state.successor_distribution(state, action, protocol, attack)
            rows: List[tuple] = []
            for successor, probability, reward in transitions:
                rows.append((successor, probability, reward))
                if successor not in expanded:
                    expanded[successor] = False
                    queue.append(successor)
                    if max_states is not None and len(expanded) > max_states:
                        raise ConfigurationError(
                            f"state-space exploration exceeded max_states={max_states}; "
                            f"reduce d, f or l, or raise the cap explicitly"
                        )
            builder.add_action(state, action_label(action), rows)

    mdp = builder.build(initial_state=start)
    return SelfishForksModel(mdp=mdp, protocol=protocol, attack=attack)
