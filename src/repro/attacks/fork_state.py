"""State space and transition kernel of the multi-fork selfish-mining MDP.

This module is a direct implementation of Section 3.2 of the paper.  Everything
is expressed as pure functions over immutable state tuples so that the kernel
can be unit- and property-tested independently of the MDP container.

State
-----
A state is the triple ``(C, O, type)`` where

* ``C`` is a ``d x f`` matrix (tuple of ``d`` rows, each a tuple of ``f`` ints);
  ``C[i][j]`` is the length (``0..l``) of the ``(j+1)``-th private fork rooted at
  the main-chain block at depth ``i+1`` (depth 1 is the tip),
* ``O`` is a tuple of ``d - 1`` ownership flags for the main-chain blocks at
  depths ``1 .. d-1`` (``HONEST`` / ``ADVERSARY``),
* ``type`` records whether a block is currently being mined (``TYPE_MINING``),
  whether honest miners have just found a block that is about to join the main
  chain (``TYPE_HONEST``), or whether the adversary has just privately mined a
  block (``TYPE_ADVERSARY``).

Decision timing (``TYPE_HONEST`` states)
----------------------------------------
In a ``TYPE_HONEST`` state the freshly found honest block is *pending*: it has
been broadcast but the adversary reacts before its own forks become stale.  If
the adversary keeps mining (or loses the race), the pending block is appended
and the window shifts; if a published fork wins, the pending block is orphaned.
This pre-incorporation timing is what makes the classic one-block race (the
``d = f = 1`` behaviour discussed in the paper's evaluation) expressible; see
DESIGN.md for the comparison with the paper's notation.

Depth and finality conventions
------------------------------
Depth 1 is the tip.  A released fork rooted at depth ``i`` orphans the blocks at
depths ``1 .. i-1`` (plus a pending honest block, if any); consequently a block
can never be orphaned once it sits at depth ``>= d`` and its finality reward
(component ``r_A`` for adversarial blocks, ``r_H`` for honest blocks) is
incurred on the transition that pushes it to depth ``>= d``.  For ``d = 1`` a
block is final the moment it irrevocably joins the main chain.

Actions
-------
``MineAction()`` -- keep mining; in a ``TYPE_HONEST`` state this accepts the
pending honest block.  ``ReleaseAction(i, j, k)`` -- publish the first ``k``
blocks of fork ``(i, j)`` (1-based, mirroring the paper's ``release_{i,j,k}``).
Release actions are only offered when they can be accepted:

* ``TYPE_ADVERSARY`` states: ``k >= i`` (strictly longer than the public chain);
* ``TYPE_HONEST`` states: ``k >= i + 1`` (strictly longer than the public chain
  including the pending block) or ``k = i`` (equal length, gamma-race against
  the pending honest block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..config import AttackParams, ProtocolParams

# Ownership flags.
HONEST = 0
ADVERSARY = 1

# State types.
TYPE_MINING = 0
TYPE_HONEST = 1
TYPE_ADVERSARY = 2

#: Reward-vector layout: index 0 counts finalised adversarial blocks (r_A),
#: index 1 counts finalised honest blocks (r_H).
REWARD_ADVERSARY_INDEX = 0
REWARD_HONEST_INDEX = 1

ForkState = Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], int]
RewardVector = Tuple[float, float]


@dataclass(frozen=True)
class MineAction:
    """The ``mine`` action: do not reveal anything, keep mining."""

    def __repr__(self) -> str:
        return "mine"


@dataclass(frozen=True)
class ReleaseAction:
    """The ``release_{i,j,k}`` action (all indices 1-based as in the paper).

    Attributes:
        depth: Depth ``i`` of the main-chain block the fork is rooted at.
        fork: Index ``j`` of the fork at that block.
        blocks: Number ``k`` of leading fork blocks to publish.
    """

    depth: int
    fork: int
    blocks: int

    def __repr__(self) -> str:
        return f"release(i={self.depth}, j={self.fork}, k={self.blocks})"


def initial_state(attack: AttackParams) -> ForkState:
    """Return the initial state: empty forks, all-honest window, mining."""
    c0 = tuple(tuple(0 for _ in range(attack.forks)) for _ in range(attack.depth))
    o0 = tuple(HONEST for _ in range(attack.depth - 1))
    return (c0, o0, TYPE_MINING)


def action_label(action: object) -> Hashable:
    """Map kernel actions to the compact hashable labels stored in the MDP.

    Both the legacy :class:`~repro.mdp.MDPBuilder` construction and the cached
    structural skeleton use this single mapping, so the two build paths can
    never diverge in their action labelling.
    """
    if isinstance(action, MineAction):
        return ("mine",)
    if isinstance(action, ReleaseAction):
        return ("release", action.depth, action.fork, action.blocks)
    raise TypeError(f"unknown action {action!r}")


# --------------------------------------------------------------------------- helpers


def fork_length(state: ForkState, depth: int, fork: int) -> int:
    """Length of fork ``(depth, fork)`` (1-based indices)."""
    return state[0][depth - 1][fork - 1]


def adversary_mining_targets(c_matrix: Tuple[Tuple[int, ...], ...]) -> List[Tuple[int, int, bool]]:
    """Return the blocks the adversary concurrently mines on.

    For every non-empty private fork ``(i, j)`` the adversary tries to extend its
    tip; additionally, for every main-chain depth ``i`` with at least one empty
    fork slot, it tries to start a new fork in the lowest-indexed empty slot.

    Returns:
        A list of ``(depth, fork, is_new_fork)`` triples with 1-based indices.
    """
    targets: List[Tuple[int, int, bool]] = []
    for i, row in enumerate(c_matrix, start=1):
        empty_slot = None
        for j, length in enumerate(row, start=1):
            if length > 0:
                targets.append((i, j, False))
            elif empty_slot is None:
                empty_slot = j
        if empty_slot is not None:
            targets.append((i, empty_slot, True))
    return targets


def _replace_fork(
    c_matrix: Tuple[Tuple[int, ...], ...], depth: int, fork: int, value: int
) -> Tuple[Tuple[int, ...], ...]:
    """Return a copy of ``c_matrix`` with entry ``(depth, fork)`` set to ``value``."""
    rows = [list(row) for row in c_matrix]
    rows[depth - 1][fork - 1] = value
    return tuple(tuple(row) for row in rows)


# ----------------------------------------------------------------- mining transitions


def mining_transitions(
    state: ForkState, protocol: ProtocolParams, attack: AttackParams
) -> List[Tuple[ForkState, float, RewardVector]]:
    """Successor distribution of the ``mine`` action in a ``TYPE_MINING`` state.

    With probability proportional to ``p`` per adversarial mining target the
    adversary privately extends (or starts) a fork; with probability proportional
    to ``1 - p`` the honest miners append a block to the main chain.
    """
    c_matrix, owners, state_type = state
    if state_type != TYPE_MINING:
        raise ValueError("mining_transitions is only defined for TYPE_MINING states")
    d, f, l = attack.depth, attack.forks, attack.max_fork_length
    p = protocol.p
    targets = adversary_mining_targets(c_matrix)
    sigma = len(targets)
    denominator = (1.0 - p) + p * sigma

    outcomes: Dict[ForkState, List[float]] = {}

    def accumulate(next_state: ForkState, probability: float, reward: RewardVector) -> None:
        if probability <= 0.0:
            return
        entry = outcomes.setdefault(next_state, [0.0, 0.0, 0.0])
        entry[0] += probability
        entry[1] += probability * reward[0]
        entry[2] += probability * reward[1]

    if denominator <= 0.0:
        # Degenerate corner: p == 0 and no targets is impossible (sigma >= d >= 1
        # always yields targets), and p == 0 gives denominator 1 - p = 1.
        raise ValueError("degenerate mining distribution")

    # Adversarial outcomes: one per mining target.
    adversary_probability = p / denominator if sigma else 0.0
    for depth, fork, is_new in targets:
        if is_new:
            new_c = _replace_fork(c_matrix, depth, fork, 1)
        else:
            current = c_matrix[depth - 1][fork - 1]
            new_c = _replace_fork(c_matrix, depth, fork, min(current + 1, l))
        accumulate((new_c, owners, TYPE_ADVERSARY), adversary_probability, (0.0, 0.0))

    # Honest outcome: a new honest block is found and becomes *pending* -- the
    # adversary gets to react (TYPE_HONEST) before the block displaces its forks.
    honest_probability = (1.0 - p) / denominator
    if honest_probability > 0.0:
        accumulate((c_matrix, owners, TYPE_HONEST), honest_probability, (0.0, 0.0))

    results: List[Tuple[ForkState, float, RewardVector]] = []
    for next_state, (probability, adv_mass, hon_mass) in outcomes.items():
        results.append(
            (next_state, probability, (adv_mass / probability, hon_mass / probability))
        )
    return results


def incorporate_pending_honest_block(
    state: ForkState, attack: AttackParams
) -> Tuple[ForkState, RewardVector]:
    """Append the pending honest block of a ``TYPE_HONEST`` state to the chain.

    The window shifts by one: the new block becomes depth 1 with empty forks,
    forks rooted at the old depth-``d`` block are abandoned, and the block pushed
    to depth ``d`` (or, for ``d = 1``, the fresh honest block itself) is final
    and rewarded.
    """
    c_matrix, owners, state_type = state
    if state_type != TYPE_HONEST:
        raise ValueError("only TYPE_HONEST states carry a pending honest block")
    d, f = attack.depth, attack.forks
    shifted_c = (tuple(0 for _ in range(f)),) + c_matrix[: d - 1]
    shifted_owners = (HONEST,) + owners[: d - 2] if d >= 2 else ()
    reward_adversary = 0.0
    reward_honest = 0.0
    if d == 1:
        # With attack depth 1 no block can ever be orphaned, so the fresh honest
        # block is final immediately.
        reward_honest += 1.0
    else:
        departing_owner = owners[d - 2]
        if departing_owner == ADVERSARY:
            reward_adversary += 1.0
        else:
            reward_honest += 1.0
    return (shifted_c, shifted_owners, TYPE_MINING), (reward_adversary, reward_honest)


# ----------------------------------------------------------------- release transitions


def _accepted_release_state(
    state: ForkState, action: ReleaseAction, attack: AttackParams
) -> Tuple[ForkState, RewardVector]:
    """State and finality rewards after a release is accepted as the main chain.

    Publishing the first ``k`` blocks of fork ``(i, j)`` replaces the public
    blocks at depths ``1 .. i-1`` with ``k`` adversarial blocks; the chain height
    grows by ``shift = k - (i - 1)``.  Surviving window rows move ``shift``
    positions deeper, the unpublished remainder of the fork becomes a fork on the
    new tip, and every block leaving the depth-``d`` window is rewarded.
    """
    c_matrix, owners, _ = state
    d, f, l = attack.depth, attack.forks, attack.max_fork_length
    i, j, k = action.depth, action.fork, action.blocks
    shift = k - (i - 1)
    if shift < 0:
        raise ValueError("release shorter than the public chain cannot be accepted")

    reward_adversary = 0.0
    reward_honest = 0.0

    # Newly published adversarial blocks occupy depths 1..k; those at depth >= d
    # are final immediately.
    reward_adversary += float(max(0, k - d + 1))

    # Tracked public blocks at old depths i..d-1 move to depth (old + shift); the
    # ones pushed to depth >= d are final now.  Blocks at old depths 1..i-1 are
    # orphaned and never rewarded.
    for old_depth in range(i, d):
        if old_depth + shift >= d:
            if owners[old_depth - 1] == ADVERSARY:
                reward_adversary += 1.0
            else:
                reward_honest += 1.0

    # New fork matrix.
    new_rows = [[0] * f for _ in range(d)]
    remainder = c_matrix[i - 1][j - 1] - k
    new_rows[0][0] = min(remainder, l)
    for old_depth in range(i, d + 1):
        new_depth = old_depth + shift
        if new_depth <= d:
            new_rows[new_depth - 1] = list(c_matrix[old_depth - 1])
    consumed_depth = i + shift  # == k + 1
    if consumed_depth <= d:
        # The published fork itself no longer exists at its old slot; its
        # unpublished remainder already moved to the tip.
        new_rows[consumed_depth - 1][j - 1] = 0
    new_c = tuple(tuple(row) for row in new_rows)

    # New ownership window (depths 1..d-1).
    new_owners: List[int] = []
    for depth in range(1, d):
        if depth <= k:
            new_owners.append(ADVERSARY)
        else:
            old_depth = depth - shift
            new_owners.append(owners[old_depth - 1])
    return (new_c, tuple(new_owners), TYPE_MINING), (reward_adversary, reward_honest)


def release_transitions(
    state: ForkState,
    action: ReleaseAction,
    protocol: ProtocolParams,
    attack: AttackParams,
) -> List[Tuple[ForkState, float, RewardVector]]:
    """Successor distribution of a release action in a decision state.

    In a ``TYPE_ADVERSARY`` state the published fork competes against the
    ``i - 1`` public blocks above its base, so ``k >= i`` wins outright.  In a
    ``TYPE_HONEST`` state the pending honest block is part of the competing
    chain: ``k >= i + 1`` wins outright, ``k = i`` triggers the gamma-race, and
    losing the race incorporates the pending block.
    """
    c_matrix, owners, state_type = state
    if state_type not in (TYPE_HONEST, TYPE_ADVERSARY):
        raise ValueError("release actions are only available in decision states")
    i, j, k = action.depth, action.fork, action.blocks
    if k < 1 or k > c_matrix[i - 1][j - 1]:
        raise ValueError(
            f"cannot publish {k} blocks of fork ({i}, {j}) of length {c_matrix[i - 1][j - 1]}"
        )

    accepted_state, accepted_reward = _accepted_release_state(state, action, attack)
    if state_type == TYPE_ADVERSARY:
        if k >= i:
            return [(accepted_state, 1.0, accepted_reward)]
        raise ValueError(
            f"release action {action!r} cannot beat the public chain from a TYPE_ADVERSARY state"
        )

    # TYPE_HONEST: the pending honest block is part of the competing public chain.
    public_blocks_above_base = i  # i - 1 confirmed blocks plus the pending block
    if k > public_blocks_above_base:
        # Strictly longer: adopted with certainty, the pending block is orphaned.
        return [(accepted_state, 1.0, accepted_reward)]
    if k == public_blocks_above_base:
        gamma = protocol.gamma
        rejected_state, rejected_reward = incorporate_pending_honest_block(state, attack)
        outcomes: List[Tuple[ForkState, float, RewardVector]] = []
        if gamma > 0.0:
            outcomes.append((accepted_state, gamma, accepted_reward))
        if gamma < 1.0:
            outcomes.append((rejected_state, 1.0 - gamma, rejected_reward))
        return outcomes
    raise ValueError(
        f"release action {action!r} is shorter than the public chain and cannot be accepted"
    )


# ------------------------------------------------------------- symbolic transitions

#: Symbolic probability kinds used by the cached model structure
#: (:mod:`repro.attacks.structure`).  The numeric probability of a transition is
#: recovered from its kind, its ``sigma`` (mining-denominator arity) and the
#: protocol parameters ``(p, gamma)``.
PROB_ONE = 0  #: probability 1
PROB_ADVERSARY = 1  #: p / ((1 - p) + p * sigma)
PROB_HONEST = 2  #: (1 - p) / ((1 - p) + p * sigma)
PROB_GAMMA = 3  #: gamma
PROB_ONE_MINUS_GAMMA = 4  #: 1 - gamma
#: Combined race tags used by scenarios that fold the mining lottery and the
#: tie-break into a single transition (e.g. ``sm-actions``); the selfish-forks
#: kernel never emits them.
PROB_GAMMA_HONEST = 5  #: gamma * (1 - p)
PROB_ONE_MINUS_GAMMA_HONEST = 6  #: (1 - gamma) * (1 - p)


@dataclass(frozen=True)
class SymbolicTransition:
    """One transition with its probability expressed symbolically in ``(p, gamma)``.

    The reward vector of every transition of the kernel is a constant that does
    not depend on the protocol parameters, so only the probability needs a
    symbolic representation.

    Attributes:
        successor: Successor state.
        kind: One of the ``PROB_*`` tags above.
        sigma: Number of concurrent adversarial mining targets (the arity of the
            mining-distribution denominator); 0 for non-mining kinds.
        multiplicity: Number of merged mining outcomes mapping to ``successor``
            (several capped forks can collapse onto the same state); 1 otherwise.
        reward: Constant ``(r_A, r_H)`` reward vector.
    """

    successor: ForkState
    kind: int
    sigma: int
    multiplicity: int
    reward: RewardVector


def symbolic_successor_distribution(
    state: ForkState, action: object, attack: AttackParams
) -> List[SymbolicTransition]:
    """Protocol-independent form of :func:`successor_distribution`.

    Returns the successor list of ``(state, action)`` with probabilities as
    symbolic tags instead of numbers, in the same enumeration order that
    :func:`successor_distribution` produces for protocol parameters of full
    support (``0 < p < 1``, ``0 < gamma < 1``).  Filtering the tags by a support
    signature reproduces the enumeration for boundary parameters.
    """
    c_matrix, owners, state_type = state
    if isinstance(action, MineAction):
        if state_type == TYPE_MINING:
            targets = adversary_mining_targets(c_matrix)
            sigma = len(targets)
            merged: Dict[ForkState, int] = {}
            for depth, fork, is_new in targets:
                if is_new:
                    new_c = _replace_fork(c_matrix, depth, fork, 1)
                else:
                    current = c_matrix[depth - 1][fork - 1]
                    new_c = _replace_fork(
                        c_matrix, depth, fork, min(current + 1, attack.max_fork_length)
                    )
                successor = (new_c, owners, TYPE_ADVERSARY)
                merged[successor] = merged.get(successor, 0) + 1
            result = [
                SymbolicTransition(successor, PROB_ADVERSARY, sigma, multiplicity, (0.0, 0.0))
                for successor, multiplicity in merged.items()
            ]
            result.append(
                SymbolicTransition(
                    (c_matrix, owners, TYPE_HONEST), PROB_HONEST, sigma, 1, (0.0, 0.0)
                )
            )
            return result
        if state_type == TYPE_HONEST:
            successor, reward = incorporate_pending_honest_block(state, attack)
            return [SymbolicTransition(successor, PROB_ONE, 0, 1, reward)]
        # TYPE_ADVERSARY: resume mining without revealing anything.
        return [
            SymbolicTransition((c_matrix, owners, TYPE_MINING), PROB_ONE, 0, 1, (0.0, 0.0))
        ]
    if isinstance(action, ReleaseAction):
        if state_type not in (TYPE_HONEST, TYPE_ADVERSARY):
            raise ValueError("release actions are only available in decision states")
        i, j, k = action.depth, action.fork, action.blocks
        if k < 1 or k > c_matrix[i - 1][j - 1]:
            raise ValueError(
                f"cannot publish {k} blocks of fork ({i}, {j}) of length {c_matrix[i - 1][j - 1]}"
            )
        accepted_state, accepted_reward = _accepted_release_state(state, action, attack)
        if state_type == TYPE_ADVERSARY:
            if k >= i:
                return [SymbolicTransition(accepted_state, PROB_ONE, 0, 1, accepted_reward)]
            raise ValueError(
                f"release action {action!r} cannot beat the public chain from a "
                f"TYPE_ADVERSARY state"
            )
        if k > i:
            return [SymbolicTransition(accepted_state, PROB_ONE, 0, 1, accepted_reward)]
        if k == i:
            rejected_state, rejected_reward = incorporate_pending_honest_block(state, attack)
            return [
                SymbolicTransition(accepted_state, PROB_GAMMA, 0, 1, accepted_reward),
                SymbolicTransition(rejected_state, PROB_ONE_MINUS_GAMMA, 0, 1, rejected_reward),
            ]
        raise ValueError(
            f"release action {action!r} is shorter than the public chain and cannot be accepted"
        )
    raise TypeError(f"unknown action {action!r}")


# ----------------------------------------------------------------------- action space


def available_actions(state: ForkState, attack: AttackParams) -> List[object]:
    """Return the available actions of ``state`` (Section 3.2 of the paper).

    ``TYPE_MINING`` states offer only ``mine``.  Decision states additionally
    offer every release action that can possibly be accepted (see module docs).
    """
    _, _, state_type = state
    actions: List[object] = [MineAction()]
    if state_type == TYPE_MINING:
        return actions
    c_matrix = state[0]
    for i, row in enumerate(c_matrix, start=1):
        for j, length in enumerate(row, start=1):
            if length == 0:
                continue
            minimum_blocks = i if state_type == TYPE_ADVERSARY else i
            # In a TYPE_HONEST state a k = i release races the pending block and a
            # k >= i + 1 release beats it outright; in a TYPE_ADVERSARY state
            # k >= i beats the public chain outright.  Both cases start at k = i.
            for k in range(minimum_blocks, length + 1):
                actions.append(ReleaseAction(depth=i, fork=j, blocks=k))
    return actions


def successor_distribution(
    state: ForkState,
    action: object,
    protocol: ProtocolParams,
    attack: AttackParams,
) -> List[Tuple[ForkState, float, RewardVector]]:
    """Successor distribution of ``action`` in ``state`` with finality rewards."""
    _, _, state_type = state
    if isinstance(action, MineAction):
        if state_type == TYPE_MINING:
            return mining_transitions(state, protocol, attack)
        if state_type == TYPE_HONEST:
            # Accept the pending honest block and resume mining.
            successor, reward = incorporate_pending_honest_block(state, attack)
            return [(successor, 1.0, reward)]
        # TYPE_ADVERSARY: simply resume mining without revealing anything.
        return [((state[0], state[1], TYPE_MINING), 1.0, (0.0, 0.0))]
    if isinstance(action, ReleaseAction):
        return release_transitions(state, action, protocol, attack)
    raise TypeError(f"unknown action {action!r}")
