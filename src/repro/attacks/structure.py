"""Cached structural skeletons of the multi-fork selfish-mining MDP.

For fixed attack parameters ``(d, f, l)`` the reachable state set, the per-state
action sets and the successor lists of the selfish-mining MDP do not depend on
the numeric protocol parameters ``(p, gamma)`` -- only the transition
probabilities do, and those only through a handful of closed forms (see the
``PROB_*`` tags in :mod:`repro.attacks.fork_state`).  The sole structural
influence of ``(p, gamma)`` is the *support*: at the boundary values ``p = 0``,
``p = 1``, ``gamma = 0`` and ``gamma = 1`` some symbolic branches have
probability zero and are pruned from the reachable fragment.

This module therefore splits model construction into

1. a :class:`SelfishForksStructure` -- the breadth-first exploration of the
   reachable fragment for one ``(d, f, l)`` and one :class:`SupportSignature`,
   stored as flat arrays of successors, probability tags and constant rewards
   (the expensive part: pure-Python state enumeration), and
2. :meth:`SelfishForksStructure.instantiate` -- a cheap, fully vectorised refill
   of the probability array for a concrete ``(p, gamma)``.

Structures are memoised in a process-local cache so that a parameter sweep pays
the exploration cost once per ``(attack, signature)`` instead of once per grid
point.  Sweep worker processes never explore at all: the parent builds each
skeleton once, serialises it into flat buffers (:meth:`SelfishForksStructure.
to_buffers`) and publishes them through the shared-memory model plane
(:mod:`repro.core.shared_structures`); workers attach the buffers zero-copy and
:func:`install_structure` them into this cache.  The cache keeps separate
``builds`` / ``attaches`` counters so tests can assert that workers performed
zero explorations.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mdp import MDP

from ..config import AttackParams, ProtocolParams
from ..exceptions import ConfigurationError
from . import fork_state
from .fork_state import (
    ForkState,
    action_label,
    symbolic_successor_distribution,
)
from .registry import (
    ScenarioStructure,
    SupportSignature,
    get_attack,
    register_attack,
)

#: Hard cap on the number of states explored; prevents accidental explosion when
#: a user requests an enormous configuration.
DEFAULT_MAX_STATES = 20_000_000


@register_attack("selfish-forks")
class SelfishForksStructure(ScenarioStructure):
    """Multi-fork selfish mining: the paper's ``(d, f, l)`` attack family.

    Holds the reachable states, the per-state action rows and, per transition,
    the successor index, the symbolic probability tag and the constant reward
    vector.  :meth:`~repro.attacks.registry.ScenarioStructure.instantiate`
    turns the skeleton into a concrete :class:`~repro.mdp.MDP` for one
    parameter point by refilling only the probability array.
    """

    SCENARIO_VERSION = 1
    #: The base plane layout, declared explicitly: the shm buffer schema is
    #: part of the worker/wire contract, not an inheritance accident (RL005).
    BUFFER_KEYS = ScenarioStructure.BUFFER_KEYS
    #: ``(p, k)``-mining: d*f concurrent targets need ``k >= d*f``, which PoS
    #: (k = inf) and PoSpaceTime (configurable k) provide; PoW/VDF cover d=f=1.
    PROOF_SYSTEMS = ("pow", "pos", "pospacetime", "vdf")

    # --------------------------------------------------------------- scenario API

    @classmethod
    def explore(
        cls,
        attack: AttackParams,
        signature: SupportSignature,
        *,
        max_states: Optional[int] = DEFAULT_MAX_STATES,
    ) -> "SelfishForksStructure":
        """Breadth-first exploration (see :func:`build_model_structure`)."""
        return build_model_structure(attack, signature, max_states=max_states)

    @classmethod
    def series_name(cls, attack: AttackParams) -> str:
        """Sweep series label, e.g. ``ours(d=2,f=1)``."""
        return f"ours(d={attack.depth},f={attack.forks})"

    @classmethod
    def grid_configs(cls, spec: str = "default") -> Tuple[AttackParams, ...]:
        """Parse a selfish-forks grid specification.

        Accepted forms: ``"default"`` (the d<=2 CLI default), ``"paper"``
        (Table 1 / Figure 2 configurations), ``"max-depth=N"`` (the legacy
        ``--max-depth`` ladder) and comma-separated ``dXfY[lZ]`` tokens
        (``l`` defaults to 4), e.g. ``"d1f1,d2f2l6"``.

        Raises:
            ConfigurationError: On an unparseable specification.
        """
        text = (spec or "default").strip()
        if text == "default":
            return (
                AttackParams(depth=1, forks=1, max_fork_length=4),
                AttackParams(depth=2, forks=1, max_fork_length=4),
            )
        if text == "paper":
            from ..config import PAPER_ATTACK_CONFIGS

            return PAPER_ATTACK_CONFIGS
        if text.startswith("max-depth="):
            try:
                max_depth = int(text.split("=", 1)[1])
            except ValueError as exc:
                raise ConfigurationError(f"invalid grid spec {spec!r}") from exc
            if max_depth < 1:
                raise ConfigurationError(f"max-depth must be >= 1, got {max_depth}")
            configs = [AttackParams(depth=1, forks=1, max_fork_length=4)]
            if max_depth >= 2:
                configs.append(AttackParams(depth=2, forks=1, max_fork_length=4))
            if max_depth >= 3:
                configs.append(AttackParams(depth=2, forks=2, max_fork_length=4))
            return tuple(configs)
        configs = []
        for token in text.split(","):
            match = re.fullmatch(r"d(\d+)f(\d+)(?:l(\d+))?", token.strip())
            if match is None:
                raise ConfigurationError(
                    f"invalid selfish-forks grid token {token.strip()!r} "
                    f"(expected dXfY[lZ], 'default', 'paper' or 'max-depth=N')"
                )
            configs.append(
                AttackParams(
                    depth=int(match.group(1)),
                    forks=int(match.group(2)),
                    max_fork_length=int(match.group(3) or 4),
                )
            )
        return tuple(configs)

    @classmethod
    def build_model(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        *,
        max_states: Optional[int] = None,
        use_structure_cache: bool = True,
    ) -> object:
        """Build the selfish-forks model for one parameter point."""
        from .selfish_forks import build_selfish_forks_mdp

        kwargs = {} if max_states is None else {"max_states": max_states}
        return build_selfish_forks_mdp(
            protocol, attack, use_structure_cache=use_structure_cache, **kwargs
        )

    @classmethod
    def make_policy(cls, strategy: object) -> object:
        """Wrap a formal strategy into a :class:`SelfishForksPolicy` replay."""
        from .policies import SelfishForksPolicy

        return SelfishForksPolicy(strategy)

    @classmethod
    def simulate(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        policy: object,
        *,
        num_steps: int,
        seed: int = 0,
    ) -> object:
        """Replay ``policy`` in the discrete-time fork-window simulator."""
        from ..chain.simulator import SelfishMiningSimulator

        simulator = SelfishMiningSimulator(protocol, attack, policy, seed=seed)
        return simulator.run(num_steps)

    @classmethod
    def honest_strategy(cls, mdp: "MDP") -> object:
        """Immediate-release baseline (honest mining for ``d = f = 1``)."""
        from .honest import immediate_release_strategy

        return immediate_release_strategy(mdp)

    # ------------------------------------------------------------- serialisation

    def to_buffers(self) -> Dict[str, np.ndarray]:
        """Serialise the structure into a dict of flat numpy buffers.

        The buffers are self-contained: :meth:`from_buffers` reconstructs a
        bit-for-bit identical structure from them.  The numeric transition
        arrays are returned as-is (no copy); the python-object state labels and
        action labels are encoded into fixed-width integer matrices so that the
        whole structure can live in one shared-memory segment.

        Label encoding: each :data:`~repro.attacks.fork_state.ForkState`
        ``(C, O, type)`` flattens to ``d*f`` fork lengths, ``d-1`` ownership
        flags and the state type.  Action encoding: ``("mine",)`` becomes
        ``(0, 0, 0, 0)`` and ``("release", i, j, k)`` becomes ``(1, i, j, k)``.
        """
        d, f = self.attack.depth, self.attack.forks
        label_width = d * f + (d - 1) + 1
        state_labels = np.empty((self.num_states, label_width), dtype=np.int32)
        for index, (c_matrix, owners, state_type) in enumerate(self.state_labels):
            flat = [length for row in c_matrix for length in row]
            flat.extend(owners)
            flat.append(state_type)
            state_labels[index] = flat
        row_actions = np.zeros((self.num_rows, 4), dtype=np.int32)
        for index, action in enumerate(self.row_actions):
            if action[0] == "release":
                row_actions[index] = (1, action[1], action[2], action[3])
        header = np.array(
            [
                d,
                f,
                self.attack.max_fork_length,
                int(self.signature.adversary_mines),
                int(self.signature.honest_mines),
                int(self.signature.race_win),
                int(self.signature.race_loss),
                self.initial_state,
            ],
            dtype=np.int64,
        )
        return {
            "header": header,
            "state_labels": state_labels,
            "row_actions": row_actions,
            "row_state": self.row_state,
            "state_row_offsets": self.state_row_offsets,
            "row_trans_offsets": self.row_trans_offsets,
            "trans_succ": self.trans_succ,
            "trans_kind": self.trans_kind,
            "trans_sigma": self.trans_sigma,
            "trans_mult": self.trans_mult,
            "trans_reward": self.trans_reward,
        }

    @classmethod
    def from_buffers(cls, buffers: Dict[str, np.ndarray]) -> "SelfishForksStructure":
        """Reconstruct a structure from :meth:`to_buffers` output.

        The numeric transition arrays are adopted without copying, so buffers
        backed by a shared-memory segment stay zero-copy: every attached worker
        reads the same physical pages.  Only the python-object labels (state
        tuples, action tuples) are materialised, which is a plain decode loop --
        orders of magnitude cheaper than re-running the breadth-first
        exploration.
        """
        header = [int(value) for value in buffers["header"]]
        d, f, l = header[0], header[1], header[2]
        attack = AttackParams(depth=d, forks=f, max_fork_length=l)
        signature = SupportSignature(
            adversary_mines=bool(header[3]),
            honest_mines=bool(header[4]),
            race_win=bool(header[5]),
            race_loss=bool(header[6]),
        )
        labels: List[Hashable] = []
        forks_end = d * f
        for flat in buffers["state_labels"].tolist():
            c_matrix = tuple(tuple(flat[i * f : (i + 1) * f]) for i in range(d))
            owners = tuple(flat[forks_end : forks_end + d - 1])
            labels.append((c_matrix, owners, flat[-1]))
        actions: List[Hashable] = [
            ("mine",) if tag == 0 else ("release", i, j, k)
            for tag, i, j, k in buffers["row_actions"].tolist()
        ]
        return cls(
            attack=attack,
            signature=signature,
            initial_state=int(header[7]),
            state_labels=labels,
            row_state=buffers["row_state"],
            state_row_offsets=buffers["state_row_offsets"],
            row_trans_offsets=buffers["row_trans_offsets"],
            row_actions=actions,
            trans_succ=buffers["trans_succ"],
            trans_kind=buffers["trans_kind"],
            trans_sigma=buffers["trans_sigma"],
            trans_mult=buffers["trans_mult"],
            trans_reward=buffers["trans_reward"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SelfishForksStructure(d={self.attack.depth}, f={self.attack.forks}, "
            f"l={self.attack.max_fork_length}, states={self.num_states}, "
            f"rows={self.num_rows}, transitions={self.num_transitions})"
        )


def build_model_structure(
    attack: AttackParams,
    signature: SupportSignature,
    *,
    max_states: Optional[int] = DEFAULT_MAX_STATES,
) -> SelfishForksStructure:
    """Explore the reachable fragment for ``(attack, signature)`` breadth-first.

    The exploration mirrors the legacy :class:`~repro.mdp.MDPBuilder` path of
    :func:`repro.attacks.selfish_forks.build_selfish_forks_mdp` exactly -- same
    discovery order, hence the same state indices, row order and transition
    order -- but records symbolic probability tags instead of numbers.

    Raises:
        ConfigurationError: If the exploration exceeds ``max_states``.
    """
    start = fork_state.initial_state(attack)
    state_ids: Dict[ForkState, int] = {start: 0}
    labels: List[Hashable] = [start]
    queue: deque[ForkState] = deque([start])

    row_state: List[int] = []
    row_actions: List[Hashable] = []
    state_row_counts: List[int] = []
    trans_succ: List[int] = []
    trans_kind: List[int] = []
    trans_sigma: List[int] = []
    trans_mult: List[int] = []
    trans_reward: List[Tuple[float, float]] = []
    row_trans_offsets: List[int] = [0]

    def state_index(label: ForkState) -> int:
        index = state_ids.get(label)
        if index is None:
            index = len(labels)
            state_ids[label] = index
            labels.append(label)
            queue.append(label)
            if max_states is not None and len(labels) > max_states:
                raise ConfigurationError(
                    f"state-space exploration exceeded max_states={max_states}; "
                    f"reduce d, f or l, or raise the cap explicitly"
                )
        return index

    while queue:
        # Each state enters the queue exactly once (on first discovery), and
        # discovery order equals index order, so rows are emitted grouped by
        # owning state in increasing index order.
        state = queue.popleft()
        owner_index = state_ids[state]
        num_rows_before = len(row_state)
        for action in fork_state.available_actions(state, attack):
            transitions = [
                symbolic
                for symbolic in symbolic_successor_distribution(state, action, attack)
                if signature.keeps(symbolic.kind)
            ]
            if not transitions:
                continue
            row_state.append(owner_index)
            row_actions.append(action_label(action))
            for symbolic in transitions:
                trans_succ.append(state_index(symbolic.successor))
                trans_kind.append(symbolic.kind)
                trans_sigma.append(symbolic.sigma)
                trans_mult.append(symbolic.multiplicity)
                trans_reward.append(symbolic.reward)
            row_trans_offsets.append(len(trans_succ))
        if len(row_state) == num_rows_before:
            raise ConfigurationError(
                f"state {state!r} has no actions with positive probability under "
                f"support {signature}"
            )
        state_row_counts.append(len(row_state) - num_rows_before)

    # The BFS expands states in index order, so row blocks are already grouped
    # by owning state and the per-state counts accumulate into CSR offsets.
    state_row_offsets = np.zeros(len(labels) + 1, dtype=np.int64)
    np.cumsum(np.asarray(state_row_counts, dtype=np.int64), out=state_row_offsets[1:])

    return SelfishForksStructure(
        attack=attack,
        signature=signature,
        initial_state=0,
        state_labels=labels,
        row_state=np.asarray(row_state, dtype=np.int64),
        state_row_offsets=state_row_offsets,
        row_trans_offsets=np.asarray(row_trans_offsets, dtype=np.int64),
        row_actions=row_actions,
        trans_succ=np.asarray(trans_succ, dtype=np.int64),
        trans_kind=np.asarray(trans_kind, dtype=np.int8),
        trans_sigma=np.asarray(trans_sigma, dtype=np.int64),
        trans_mult=np.asarray(trans_mult, dtype=float),
        trans_reward=np.asarray(trans_reward, dtype=float).reshape(len(trans_reward), 2),
    )


# ------------------------------------------------------------------ process cache

_STRUCTURE_CACHE: Dict[Tuple[AttackParams, SupportSignature], ScenarioStructure] = {}
_CACHE_LOCK = threading.Lock()
#: Number of breadth-first explorations performed by this process since the
#: last :func:`clear_structure_cache` -- sweep workers attached to the shared
#: model plane must keep this at 0.
_BUILD_COUNT = 0
#: Number of structures installed from shared-memory buffers.
_ATTACH_COUNT = 0


def get_model_structure(
    attack: AttackParams,
    protocol: ProtocolParams,
    *,
    max_states: Optional[int] = DEFAULT_MAX_STATES,
) -> ScenarioStructure:
    """Return the (memoised) structure for ``attack`` at ``protocol``'s support.

    Dispatches the exploration through the scenario registry, so any registered
    scenario shares this cache (and its builds/attaches accounting).  The cache
    is process-local; sweep workers have it populated up front by the
    shared-memory model plane (or, as a fallback, by a per-worker prewarm) and
    therefore always hit.
    """
    global _BUILD_COUNT
    signature = SupportSignature.of(protocol)
    key = (attack, signature)
    with _CACHE_LOCK:
        structure = _STRUCTURE_CACHE.get(key)
        if structure is None:
            entry = get_attack(attack.scenario)
            structure = entry.explore(attack, signature, max_states=max_states)
            _STRUCTURE_CACHE[key] = structure
            _BUILD_COUNT += 1
    # The cap must hold even when a previous caller already paid the exploration.
    if max_states is not None and structure.num_states > max_states:
        raise ConfigurationError(
            f"state-space exploration exceeded max_states={max_states}; "
            f"reduce d, f or l, or raise the cap explicitly"
        )
    return structure


def install_structure(structure: ScenarioStructure) -> None:
    """Install an externally built structure (idempotent, counts as an attach).

    Sweep workers call this with structures reconstructed from the shared-memory
    model plane (:mod:`repro.core.shared_structures`); subsequent
    :func:`get_model_structure` calls for the same ``(attack, signature)`` hit
    the cache without ever exploring.
    """
    global _ATTACH_COUNT
    key = (structure.attack, structure.signature)
    with _CACHE_LOCK:
        _STRUCTURE_CACHE[key] = structure
        _ATTACH_COUNT += 1


def clear_structure_cache() -> None:
    """Drop every cached structure and reset the build/attach counters.

    Mainly for tests and memory pressure.  The whole reset happens under the
    module lock so that a concurrent :func:`get_model_structure` can never
    observe a cleared cache with stale counters (or vice versa).
    """
    global _BUILD_COUNT, _ATTACH_COUNT
    with _CACHE_LOCK:
        _STRUCTURE_CACHE.clear()
        _BUILD_COUNT = 0
        _ATTACH_COUNT = 0


def structure_cache_stats() -> Dict[str, int]:
    """Return summary statistics of the process-local structure cache.

    The snapshot -- entries, aggregate sizes and the build/attach counters --
    is taken atomically under the module lock, so concurrent cache mutation
    (e.g. a live worker pool) can never yield counters from one instant and
    entries from another.

    Returns:
        ``entries`` / ``states`` / ``transitions``: current cache contents;
        ``builds``: breadth-first explorations this process performed since the
        last clear (0 inside workers attached to the shared model plane);
        ``attaches``: structures installed from shared-memory buffers.
    """
    with _CACHE_LOCK:
        structures = list(_STRUCTURE_CACHE.values())
        builds = _BUILD_COUNT
        attaches = _ATTACH_COUNT
    return {
        "entries": len(structures),
        "states": sum(structure.num_states for structure in structures),
        "transitions": sum(structure.num_transitions for structure in structures),
        "builds": builds,
        "attaches": attaches,
    }
