"""Attack-scenario registry: the public boundary between engine and attacks.

The sweep engine, the distributed fabric and the shared-memory planes never
care *which* attack family they are running -- they only need a handful of
capabilities from it:

* an exploration of a ``(p, gamma)``-independent structural skeleton
  (:meth:`ScenarioStructure.explore`) memoised by grid key
  ``(AttackParams, SupportSignature)``,
* a cheap vectorised probability refill for one concrete parameter point
  (:meth:`ScenarioStructure.instantiate`),
* a flat-buffer serialisation (:meth:`ScenarioStructure.to_buffers` /
  :meth:`ScenarioStructure.from_buffers`) so skeletons travel zero-copy
  through shared memory and the distributed wire,
* replay glue (policy construction plus a matching chain simulator) for
  validating formal strategies by simulation.

This module makes that implicit interface explicit.  A scenario is a
:class:`ScenarioStructure` subclass registered under a name::

    @register_attack("selfish-forks")
    class SelfishForksStructure(ScenarioStructure): ...

Consumers resolve scenarios with :func:`get_attack` / :func:`list_attacks` and
identify them on the wire by the versioned ``scenario_id`` (``"name@version"``).
The id is embedded in shared-memory plane directories, distributed hello/work
frames, results-plane records and CSV rows, so mixed-scenario sweeps and
cross-version attaches fail loudly instead of silently decoding garbage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..config import AttackParams, ProtocolParams, _register_scenario_name
from ..exceptions import ConfigurationError, ModelError
from .fork_state import (
    PROB_ADVERSARY,
    PROB_GAMMA,
    PROB_GAMMA_HONEST,
    PROB_HONEST,
    PROB_ONE_MINUS_GAMMA,
    PROB_ONE_MINUS_GAMMA_HONEST,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..mdp import MDP


@dataclass(frozen=True)
class SupportSignature:
    """Which symbolic transition branches have positive probability.

    Two protocol parameter points with the same signature induce exactly the
    same reachable fragment, so the signature is part of the structure-cache
    key.

    Attributes:
        adversary_mines: ``p > 0`` -- adversarial mining outcomes exist.
        honest_mines: ``p < 1`` -- honest mining outcomes exist.
        race_win: ``gamma > 0`` -- an equal-length release can be accepted.
        race_loss: ``gamma < 1`` -- an equal-length release can be rejected.
    """

    adversary_mines: bool
    honest_mines: bool
    race_win: bool
    race_loss: bool

    @classmethod
    def of(cls, protocol: ProtocolParams) -> "SupportSignature":
        """Return the signature of a concrete protocol parameter point."""
        return cls(
            adversary_mines=protocol.p > 0.0,
            honest_mines=protocol.p < 1.0,
            race_win=protocol.gamma > 0.0,
            race_loss=protocol.gamma < 1.0,
        )

    def keeps(self, kind: int) -> bool:
        """Whether transitions of symbolic ``kind`` have positive probability."""
        if kind == PROB_ADVERSARY:
            return self.adversary_mines
        if kind == PROB_HONEST:
            return self.honest_mines
        if kind == PROB_GAMMA:
            return self.race_win
        if kind == PROB_ONE_MINUS_GAMMA:
            return self.race_loss
        if kind == PROB_GAMMA_HONEST:
            return self.race_win and self.honest_mines
        if kind == PROB_ONE_MINUS_GAMMA_HONEST:
            return self.race_loss and self.honest_mines
        return True


class ScenarioStructure:
    """The ``(p, gamma)``-independent skeleton of one attack-scenario MDP.

    Holds the reachable states, the per-state action rows and, per transition,
    the successor index, the symbolic probability tag and the constant reward
    vector in CSR layout.  :meth:`instantiate` turns the skeleton into a
    concrete :class:`~repro.mdp.MDP` for one parameter point by refilling only
    the probability array.

    Subclasses registered with :func:`register_attack` additionally implement
    the exploration (:meth:`explore`), the flat-buffer codec
    (:meth:`to_buffers` / :meth:`from_buffers`) and the replay glue
    (:meth:`make_policy` / :meth:`simulate`).  Bump :attr:`SCENARIO_VERSION`
    whenever the buffer layout or the transition semantics change, so stale
    peers are refused instead of silently mis-decoded.
    """

    #: Wire/compat version of the scenario; part of ``scenario_id``.
    SCENARIO_VERSION = 1
    #: Registered name; set by :func:`register_attack`.
    SCENARIO_NAME: Optional[str] = None
    #: Proof systems usable as refill parameterisations of this scenario
    #: (names resolved by :meth:`AttackScenario.proof_systems`).
    PROOF_SYSTEMS: Tuple[str, ...] = ()

    #: Buffer keys of :meth:`to_buffers`, in canonical order; subclasses with
    #: extra per-scenario arrays extend this tuple.
    BUFFER_KEYS = (
        "header",
        "state_labels",
        "row_actions",
        "row_state",
        "state_row_offsets",
        "row_trans_offsets",
        "trans_succ",
        "trans_kind",
        "trans_sigma",
        "trans_mult",
        "trans_reward",
    )

    def __init__(
        self,
        *,
        attack: AttackParams,
        signature: SupportSignature,
        initial_state: int,
        state_labels: List[Hashable],
        row_state: np.ndarray,
        state_row_offsets: np.ndarray,
        row_trans_offsets: np.ndarray,
        row_actions: List[Hashable],
        trans_succ: np.ndarray,
        trans_kind: np.ndarray,
        trans_sigma: np.ndarray,
        trans_mult: np.ndarray,
        trans_reward: np.ndarray,
    ) -> None:
        self.attack = attack
        self.signature = signature
        self.initial_state = initial_state
        self.state_labels = state_labels
        self.row_state = row_state
        self.state_row_offsets = state_row_offsets
        self.row_trans_offsets = row_trans_offsets
        self.row_actions = row_actions
        self.trans_succ = trans_succ
        self.trans_kind = trans_kind
        self.trans_sigma = trans_sigma
        self.trans_mult = trans_mult
        self.trans_reward = trans_reward
        self.num_states = len(state_labels)
        self.num_rows = int(row_state.shape[0])
        self.num_transitions = int(trans_succ.shape[0])
        # Row index of every transition, for the vectorised renormalisation.
        self._trans_row = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(row_trans_offsets)
        )

    # ------------------------------------------------------------------ identity

    @property
    def scenario_name(self) -> str:
        """Registered name of this structure's scenario."""
        name = type(self).SCENARIO_NAME
        if name is None:
            raise ModelError(
                f"{type(self).__name__} is not registered; decorate it with "
                f"repro.attacks.registry.register_attack"
            )
        return name

    @property
    def scenario_id(self) -> str:
        """Versioned wire identity of this structure's scenario."""
        return f"{self.scenario_name}@{type(self).SCENARIO_VERSION}"

    # -------------------------------------------------------------------- refill

    def _rewards_for(self, protocol: ProtocolParams) -> np.ndarray:
        """Per-transition ``(r_A, r_H)`` rewards at ``protocol``.

        The default returns the constant skeleton rewards unchanged; scenarios
        with parameter-dependent rewards (e.g. the overpaying settlement of
        ``sm-actions``) override this to patch a copy.
        """
        return self.trans_reward

    def instantiate(self, protocol: ProtocolParams) -> "MDP":
        """Refill the probability array for ``protocol`` and return the MDP.

        Raises:
            ModelError: If ``protocol`` has a different support signature than
                the one this structure was explored for.
        """
        from ..mdp import MDP

        signature = SupportSignature.of(protocol)
        if signature != self.signature:
            raise ModelError(
                f"structure was built for support {self.signature}, cannot instantiate "
                f"for {signature} (p={protocol.p}, gamma={protocol.gamma})"
            )
        p, gamma = protocol.p, protocol.gamma
        prob = np.ones(self.num_transitions)
        adversary = self.trans_kind == PROB_ADVERSARY
        honest = self.trans_kind == PROB_HONEST
        if adversary.any():
            denominator = (1.0 - p) + p * self.trans_sigma[adversary]
            prob[adversary] = p / denominator
        if honest.any():
            denominator = (1.0 - p) + p * self.trans_sigma[honest]
            prob[honest] = (1.0 - p) / denominator
        prob[self.trans_kind == PROB_GAMMA] = gamma
        prob[self.trans_kind == PROB_ONE_MINUS_GAMMA] = 1.0 - gamma
        race_extend = self.trans_kind == PROB_GAMMA_HONEST
        if race_extend.any():
            prob[race_extend] = gamma * (1.0 - p)
        race_ignore = self.trans_kind == PROB_ONE_MINUS_GAMMA_HONEST
        if race_ignore.any():
            prob[race_ignore] = (1.0 - gamma) * (1.0 - p)
        prob *= self.trans_mult
        # Renormalise each row (mirrors MDPBuilder.build washing out float drift).
        totals = np.add.reduceat(prob, self.row_trans_offsets[:-1])
        prob /= totals[self._trans_row]
        return MDP(
            num_states=self.num_states,
            initial_state=self.initial_state,
            row_state=self.row_state,
            state_row_offsets=self.state_row_offsets,
            row_trans_offsets=self.row_trans_offsets,
            trans_succ=self.trans_succ,
            trans_prob=prob,
            trans_reward=self._rewards_for(protocol),
            row_actions=self.row_actions,
            state_labels=self.state_labels,
        )

    # ------------------------------------------------------------- scenario hooks

    @classmethod
    def explore(
        cls,
        attack: AttackParams,
        signature: SupportSignature,
        *,
        max_states: Optional[int] = None,
    ) -> "ScenarioStructure":
        """Breadth-first exploration of the reachable fragment (expensive)."""
        raise NotImplementedError(f"{cls.__name__} does not implement explore()")

    def to_buffers(self) -> Dict[str, np.ndarray]:
        """Serialise the structure into flat numpy buffers (:attr:`BUFFER_KEYS`)."""
        raise NotImplementedError(f"{type(self).__name__} does not implement to_buffers()")

    @classmethod
    def from_buffers(cls, buffers: Dict[str, np.ndarray]) -> "ScenarioStructure":
        """Reconstruct a structure from :meth:`to_buffers` output (zero-copy)."""
        raise NotImplementedError(f"{cls.__name__} does not implement from_buffers()")

    @classmethod
    def series_name(cls, attack: AttackParams) -> str:
        """Sweep series label of one attack configuration."""
        raise NotImplementedError(f"{cls.__name__} does not implement series_name()")

    @classmethod
    def grid_configs(cls, spec: str = "default") -> Tuple[AttackParams, ...]:
        """Parse a grid specification into attack configurations."""
        raise NotImplementedError(f"{cls.__name__} does not implement grid_configs()")

    @classmethod
    def build_model(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        *,
        max_states: Optional[int] = None,
        use_structure_cache: bool = True,
    ) -> object:
        """Build the scenario model (an object exposing ``.mdp``) for one point."""
        raise NotImplementedError(f"{cls.__name__} does not implement build_model()")

    @classmethod
    def make_policy(cls, strategy: object) -> object:
        """Wrap a formal strategy into the scenario's replay policy."""
        raise NotImplementedError(f"{cls.__name__} does not implement make_policy()")

    @classmethod
    def simulate(
        cls,
        protocol: ProtocolParams,
        attack: AttackParams,
        policy: object,
        *,
        num_steps: int,
        seed: int = 0,
    ) -> object:
        """Replay ``policy`` in the scenario's chain simulator."""
        raise NotImplementedError(f"{cls.__name__} does not implement simulate()")

    @classmethod
    def honest_strategy(cls, mdp: "MDP") -> object:
        """In-MDP strategy emulating protocol-following behaviour (baseline)."""
        raise NotImplementedError(f"{cls.__name__} does not implement honest_strategy()")


class AttackScenario:
    """One registry entry: a named, versioned :class:`ScenarioStructure` class.

    Thin delegation layer so engine code can hold a scenario handle without
    importing the concrete structure class.
    """

    def __init__(self, name: str, structure_cls: type) -> None:
        self.name = name
        self.structure_cls = structure_cls
        self.version = int(getattr(structure_cls, "SCENARIO_VERSION", 1))
        doc = (structure_cls.__doc__ or "").strip()
        self.description = doc.splitlines()[0] if doc else name

    @property
    def scenario_id(self) -> str:
        """Versioned wire identity (``"name@version"``)."""
        return f"{self.name}@{self.version}"

    def explore(
        self,
        attack: AttackParams,
        signature: SupportSignature,
        *,
        max_states: Optional[int] = None,
    ) -> ScenarioStructure:
        """Explore the scenario skeleton for ``(attack, signature)``."""
        return self.structure_cls.explore(attack, signature, max_states=max_states)

    def series_name(self, attack: AttackParams) -> str:
        """Sweep series label of one attack configuration."""
        return self.structure_cls.series_name(attack)

    def grid_configs(self, spec: str = "default") -> Tuple[AttackParams, ...]:
        """Parse a grid specification into attack configurations."""
        return self.structure_cls.grid_configs(spec)

    def build_model(
        self,
        protocol: ProtocolParams,
        attack: AttackParams,
        *,
        max_states: Optional[int] = None,
        use_structure_cache: bool = True,
    ) -> object:
        """Build the scenario model for one parameter point."""
        return self.structure_cls.build_model(
            protocol,
            attack,
            max_states=max_states,
            use_structure_cache=use_structure_cache,
        )

    def make_policy(self, strategy: object) -> object:
        """Wrap a formal strategy into the scenario's replay policy."""
        return self.structure_cls.make_policy(strategy)

    def simulate(
        self,
        protocol: ProtocolParams,
        attack: AttackParams,
        policy: object,
        *,
        num_steps: int,
        seed: int = 0,
    ) -> object:
        """Replay ``policy`` in the scenario's chain simulator."""
        return self.structure_cls.simulate(
            protocol, attack, policy, num_steps=num_steps, seed=seed
        )

    def honest_strategy(self, mdp: "MDP") -> object:
        """In-MDP strategy emulating the scenario's protocol-following baseline."""
        return self.structure_cls.honest_strategy(mdp)

    def proof_systems(self) -> Dict[str, type]:
        """Proof systems usable as refill parameterisations of this scenario.

        The ``(p, k)``-mining abstraction enters the skeleton refill only
        through the number of concurrent mining targets ``sigma``; a proof
        system is compatible when its ``k`` covers the scenario's target count.
        Returns a mapping from proof-system name to its model class from
        :mod:`repro.proofs`.
        """
        from .. import proofs

        available = {
            "pow": proofs.ProofOfWork,
            "pos": proofs.ProofOfStake,
            "pospacetime": proofs.ProofOfSpaceTime,
            "vdf": proofs.VerifiableDelayFunction,
        }
        return {
            name: available[name]
            for name in getattr(self.structure_cls, "PROOF_SYSTEMS", ())
            if name in available
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttackScenario({self.scenario_id}, {self.structure_cls.__name__})"


# ---------------------------------------------------------------------- registry

_REGISTRY: Dict[str, AttackScenario] = {}
_REGISTRY_LOCK = threading.Lock()
#: Guards the lazy built-in import; distinct from ``_REGISTRY_LOCK`` because
#: the imports re-enter ``register_attack`` (which takes the registry lock).
_BUILTINS_LOCK = threading.Lock()
_BUILTINS_LOADED = False


def register_attack(name: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`ScenarioStructure` under ``name``.

    Registration is idempotent for the same class (module re-import), but a
    second, different class under an existing name is rejected.  Registering a
    scenario also teaches :class:`repro.config.AttackParams` to accept the name
    in its ``scenario`` field.

    Raises:
        ConfigurationError: If ``name`` is empty or already bound to another
            class.
    """

    def decorator(cls: type) -> type:
        with _REGISTRY_LOCK:
            existing = _REGISTRY.get(name)
            if existing is not None and existing.structure_cls is not cls:
                raise ConfigurationError(
                    f"attack scenario {name!r} is already registered by "
                    f"{existing.structure_cls.__name__}; pick a different name"
                )
            if existing is None:
                _REGISTRY[name] = AttackScenario(name, cls)
        cls.SCENARIO_NAME = name
        _register_scenario_name(name)
        return cls

    return decorator


def _ensure_builtin_scenarios() -> None:
    """Import the built-in scenario modules so their decorators have run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Double-checked under a *dedicated* lock: the guarded imports run
    # ``register_attack``, which takes ``_REGISTRY_LOCK`` -- reusing it here
    # would deadlock (threading.Lock is not reentrant).
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED:
            return
        from . import sm_actions, structure  # noqa: F401  (registration side effect)

        _BUILTINS_LOADED = True


def get_attack(name: str) -> AttackScenario:
    """Look up a registered scenario by name.

    Raises:
        ConfigurationError: If ``name`` is not registered; the message lists
            every known scenario.
    """
    _ensure_builtin_scenarios()
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(name)
        known = tuple(_REGISTRY)
    if entry is None:
        raise ConfigurationError(
            f"unknown attack scenario {name!r}; registered scenarios: {known}"
        )
    return entry


def list_attacks() -> Tuple[AttackScenario, ...]:
    """Every registered scenario, in registration order (built-ins first)."""
    _ensure_builtin_scenarios()
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY.values())


def unregister_attack(name: str) -> None:
    """Remove a runtime-registered scenario (for tests and plugin teardown).

    Raises:
        ConfigurationError: When asked to remove a built-in scenario.
    """
    from ..config import BUILTIN_SCENARIO_NAMES, _KNOWN_SCENARIO_NAMES

    if name in BUILTIN_SCENARIO_NAMES:
        raise ConfigurationError(f"cannot unregister built-in scenario {name!r}")
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)
    _KNOWN_SCENARIO_NAMES.discard(name)


def scenario_id_for(name: str) -> str:
    """Versioned wire id (``"name@version"``) of a registered scenario."""
    return get_attack(name).scenario_id


def resolve_scenario(scenario_id: str) -> AttackScenario:
    """Resolve a wire ``scenario_id`` against this process's registry.

    Used wherever a scenario identity crosses a process or host boundary
    (shared-memory plane directories, distributed frames); any mismatch is an
    error, never a silent fallback.

    Raises:
        ModelError: If the id is malformed, names an unknown scenario, or names
            a different :attr:`ScenarioStructure.SCENARIO_VERSION` than this
            process implements.
    """
    name, sep, version_text = str(scenario_id).partition("@")
    if not name or not sep or not version_text:
        raise ModelError(
            f"malformed scenario id {scenario_id!r} (expected 'name@version')"
        )
    try:
        entry = get_attack(name)
    except ConfigurationError as exc:
        raise ModelError(f"cannot resolve scenario id {scenario_id!r}: {exc}") from exc
    if str(entry.version) != version_text:
        raise ModelError(
            f"scenario version mismatch for {name!r}: peer speaks {scenario_id}, "
            f"this process implements {entry.scenario_id}"
        )
    return entry


__all__ = [
    "AttackScenario",
    "ScenarioStructure",
    "SupportSignature",
    "get_attack",
    "list_attacks",
    "register_attack",
    "resolve_scenario",
    "scenario_id_for",
    "unregister_attack",
]
