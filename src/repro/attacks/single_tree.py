"""Single-tree selfish-mining baseline (Section 4 of the paper).

The baseline "exactly follows the classic selfish mining attack in Bitcoin
[Eyal-Sirer], however it grows a private tree fork rather than a private chain."
The paper omits its formal model; DESIGN.md documents our interpretation, which
transplants the Eyal-Sirer publication rule onto a private tree:

* Each *round* starts at a common tip.  The adversary roots a private tree at
  that tip; the tree has depth at most ``max_depth`` (the paper's ``l``) and at
  most ``max_width`` (the paper's ``f``) nodes per level.
* At every time step the adversary mines on every extendable tree node (a node
  whose child level is not yet full) and the honest miners on the public tip;
  the probability of each outcome follows the same ``(p, k)``-mining
  normalisation as the main model.
* Publication follows the classic rule, applied to the depth of the tree (the
  length of its longest path) after every honest block.  With ``lead`` the tree
  depth minus the public-chain length measured from the fork point:

  - empty tree: the adversary abandons the round (the honest block stands);
  - ``lead >= 2``: keep mining privately;
  - ``lead == 1``: publish the longest path -- it is strictly longer than the
    public chain, so the adversary wins the whole round;
  - ``lead == 0``: publish the longest path and race; honest miners switch with
    probability ``gamma``.

* The round then ends and both sides restart from the new tip.

Because every step strictly increases either the public-chain length or some
tree level, a round visits finitely many states and the expected per-round
adversarial and honest rewards can be computed exactly by memoised recursion;
the long-run expected relative revenue follows from the renewal-reward theorem.
A Monte-Carlo estimator is provided as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .._validation import check_positive_int, check_probability
from ..config import ProtocolParams

#: Within-round state: (public_blocks_since_fork, tree_level_occupancies).
_RoundState = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class SingleTreeParams:
    """Parameters of the single-tree baseline attack.

    Attributes:
        max_depth: Maximal depth of the private tree (paper: ``l = 4``).
        max_width: Maximal number of tree nodes per level (paper: ``f = 5``).
    """

    max_depth: int = 4
    max_width: int = 5

    def __post_init__(self) -> None:
        check_positive_int(self.max_depth, "max_depth")
        check_positive_int(self.max_width, "max_width")


def _tree_depth(levels: Tuple[int, ...]) -> int:
    """Depth of the private tree: deepest non-empty level."""
    depth = 0
    for index, count in enumerate(levels, start=1):
        if count > 0:
            depth = index
    return depth


def _extendable_levels(levels: Tuple[int, ...], max_width: int) -> Dict[int, int]:
    """Map from parent level (0 = root) to number of extendable parent nodes."""
    parents: Dict[int, int] = {}
    counts = (1,) + levels  # level 0 is the fork-point block (the root)
    for parent_level in range(len(levels)):
        if levels[parent_level] < max_width and counts[parent_level] > 0:
            parents[parent_level] = counts[parent_level]
    return parents


def _honest_block_outcome(
    public_length: int, levels: Tuple[int, ...], gamma: float
) -> Tuple[str, Tuple[float, float]]:
    """Resolve the publication rule right after an honest block.

    Returns:
        ``("continue", (0, 0))`` if the round goes on, or ``("end", (E[A], E[H]))``
        with the expected round rewards if the round terminates now.
    """
    depth = _tree_depth(levels)
    if depth == 0:
        return "end", (0.0, float(public_length))
    lead = depth - public_length
    if lead >= 2:
        return "continue", (0.0, 0.0)
    if lead == 1:
        # Publishing the longest path beats the public chain outright.
        return "end", (float(depth), 0.0)
    # lead == 0: equal length, gamma race.
    return "end", (gamma * depth, (1.0 - gamma) * public_length)


def _round_expectations(
    protocol: ProtocolParams, params: SingleTreeParams
) -> Tuple[float, float]:
    """Exact expected (adversarial, honest) finalised blocks of one attack round."""
    p = protocol.p
    gamma = protocol.gamma
    max_width = params.max_width
    cache: Dict[_RoundState, Tuple[float, float]] = {}

    def expectation(state: _RoundState) -> Tuple[float, float]:
        if state in cache:
            return cache[state]
        public_length, levels = state
        parents = _extendable_levels(levels, max_width)
        sigma = sum(parents.values())
        denominator = (1.0 - p) + p * sigma
        if denominator <= 0.0:
            # p == 1 with a saturated tree: the adversary eventually wins everything.
            result = (float(_tree_depth(levels)), 0.0)
            cache[state] = result
            return result

        adversary_total = 0.0
        honest_total = 0.0

        # Adversarial outcomes: extend one of the extendable levels.
        for parent_level, count in parents.items():
            probability = p * count / denominator
            new_levels = list(levels)
            new_levels[parent_level] += 1
            successor = (public_length, tuple(new_levels))
            sub_adv, sub_hon = expectation(successor)
            adversary_total += probability * sub_adv
            honest_total += probability * sub_hon

        # Honest outcome: the public chain grows by one block.
        honest_probability = (1.0 - p) / denominator
        if honest_probability > 0.0:
            new_public = public_length + 1
            verdict, rewards = _honest_block_outcome(new_public, levels, gamma)
            if verdict == "end":
                adversary_total += honest_probability * rewards[0]
                honest_total += honest_probability * rewards[1]
            else:
                sub_adv, sub_hon = expectation((new_public, levels))
                adversary_total += honest_probability * sub_adv
                honest_total += honest_probability * sub_hon

        cache[state] = (adversary_total, honest_total)
        return cache[state]

    start: _RoundState = (0, tuple(0 for _ in range(params.max_depth)))
    return expectation(start)


def single_tree_errev(protocol: ProtocolParams, params: SingleTreeParams | None = None) -> float:
    """Exact expected relative revenue of the single-tree baseline.

    Computed from per-round expectations via the renewal-reward theorem:
    ``ERRev = E[adversarial blocks per round] / E[all blocks per round]``.
    """
    params = params or SingleTreeParams()
    p = check_probability(protocol.p, "p")
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    adversary, honest = _round_expectations(protocol, params)
    total = adversary + honest
    if total <= 0.0:
        return 0.0
    return adversary / total


def simulate_single_tree_errev(
    protocol: ProtocolParams,
    params: SingleTreeParams | None = None,
    *,
    num_rounds: int = 20_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the single-tree baseline's ERRev.

    Used by the test suite as an independent cross-check of the exact recursion.
    """
    params = params or SingleTreeParams()
    p = protocol.p
    gamma = protocol.gamma
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    rng = np.random.default_rng(seed)
    adversary_blocks = 0.0
    honest_blocks = 0.0
    for _ in range(num_rounds):
        public_length = 0
        levels = [0] * params.max_depth
        while True:
            parents = _extendable_levels(tuple(levels), params.max_width)
            sigma = sum(parents.values())
            denominator = (1.0 - p) + p * sigma
            draw = rng.random() * denominator
            threshold = 0.0
            extended = False
            for parent_level, count in parents.items():
                threshold += p * count
                if draw < threshold:
                    levels[parent_level] += 1
                    extended = True
                    break
            if extended:
                continue
            # Honest block found.
            public_length += 1
            depth = _tree_depth(tuple(levels))
            if depth == 0:
                honest_blocks += public_length
                break
            lead = depth - public_length
            if lead >= 2:
                continue
            if lead == 1:
                adversary_blocks += depth
                break
            # lead == 0: gamma race.
            if rng.random() < gamma:
                adversary_blocks += depth
            else:
                honest_blocks += public_length
            break
    total = adversary_blocks + honest_blocks
    return adversary_blocks / total if total else 0.0
