"""Policy interface consumed by the discrete-time chain simulator.

The simulator (see :mod:`repro.chain.simulator`) re-creates the paper's system
model with concrete block objects and asks a :class:`MiningPolicy` what the
adversary should do after every block event.  Policies observe the same
``(C, O, type)`` abstraction as the MDP (a :data:`~repro.attacks.fork_state.ForkState`),
which lets strategies computed by the formal analysis be replayed unchanged and
validated by Monte-Carlo simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Optional

from .fork_state import ForkState, MineAction, ReleaseAction


@dataclass(frozen=True)
class AttackDecision:
    """Decision returned by a policy after a block event.

    Attributes:
        release: The release action to perform, or ``None`` to keep mining.
    """

    #: Scenario whose simulator understands this decision type.  Scenarios with
    #: a different observation/decision contract subclass and override this.
    scenario_name: ClassVar[str] = "selfish-forks"

    release: Optional[ReleaseAction] = None

    @property
    def is_release(self) -> bool:
        """Whether the decision publishes a private fork."""
        return self.release is not None

    @classmethod
    def mine(cls) -> "AttackDecision":
        """The "keep mining" decision."""
        return cls(release=None)

    @classmethod
    def from_action(cls, action: object) -> "AttackDecision":
        """Convert a kernel action (:class:`MineAction` / :class:`ReleaseAction`)."""
        if isinstance(action, ReleaseAction):
            return cls(release=action)
        if isinstance(action, MineAction):
            return cls.mine()
        raise TypeError(f"unknown action {action!r}")


class MiningPolicy(ABC):
    """Abstract adversarial mining policy driven by a scenario's simulator.

    The :data:`scenario_name` hook names the registered attack scenario whose
    replay understands this policy's observation/decision contract; simulator
    front-ends use it to dispatch a policy to the matching scenario entry
    (see :func:`repro.attacks.registry.get_attack`).  Fork-window policies
    (the default, ``"selfish-forks"``) observe a
    :data:`~repro.attacks.fork_state.ForkState` and return an
    :class:`AttackDecision`; other scenarios may document different types.
    """

    #: Registered scenario this policy replays under.
    scenario_name: ClassVar[str] = "selfish-forks"

    @abstractmethod
    def decide(self, state: ForkState) -> AttackDecision:
        """Return the adversary's decision in the given abstract state."""

    def reset(self) -> None:
        """Reset internal state before a fresh simulation run (no-op by default)."""

    @property
    def name(self) -> str:
        """Human-readable policy name used in reports."""
        return type(self).__name__
