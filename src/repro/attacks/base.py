"""Policy interface consumed by the discrete-time chain simulator.

The simulator (see :mod:`repro.chain.simulator`) re-creates the paper's system
model with concrete block objects and asks a :class:`MiningPolicy` what the
adversary should do after every block event.  Policies observe the same
``(C, O, type)`` abstraction as the MDP (a :data:`~repro.attacks.fork_state.ForkState`),
which lets strategies computed by the formal analysis be replayed unchanged and
validated by Monte-Carlo simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from .fork_state import ForkState, MineAction, ReleaseAction


@dataclass(frozen=True)
class AttackDecision:
    """Decision returned by a policy after a block event.

    Attributes:
        release: The release action to perform, or ``None`` to keep mining.
    """

    release: Optional[ReleaseAction] = None

    @property
    def is_release(self) -> bool:
        """Whether the decision publishes a private fork."""
        return self.release is not None

    @classmethod
    def mine(cls) -> "AttackDecision":
        """The "keep mining" decision."""
        return cls(release=None)

    @classmethod
    def from_action(cls, action: object) -> "AttackDecision":
        """Convert a kernel action (:class:`MineAction` / :class:`ReleaseAction`)."""
        if isinstance(action, ReleaseAction):
            return cls(release=action)
        if isinstance(action, MineAction):
            return cls.mine()
        raise TypeError(f"unknown action {action!r}")


class MiningPolicy(ABC):
    """Abstract adversarial mining policy driven by the chain simulator."""

    @abstractmethod
    def decide(self, state: ForkState) -> AttackDecision:
        """Return the adversary's decision in the given abstract state."""

    def reset(self) -> None:
        """Reset internal state before a fresh simulation run (no-op by default)."""

    @property
    def name(self) -> str:
        """Human-readable policy name used in reports."""
        return type(self).__name__
