"""Mining strategies and attack models.

* :mod:`repro.attacks.fork_state` / :mod:`repro.attacks.selfish_forks` -- the
  paper's multi-fork selfish-mining MDP (Section 3.2), the primary contribution.
* :mod:`repro.attacks.honest` -- the honest-mining baseline.
* :mod:`repro.attacks.single_tree` -- the single-tree (Eyal-Sirer style) baseline.
* :mod:`repro.attacks.eyal_sirer` -- the classic PoW selfish-mining closed form.
* :mod:`repro.attacks.base` / policies -- strategy objects consumed by the
  discrete-time chain simulator for Monte-Carlo validation.
"""

from .fork_state import (
    ADVERSARY,
    HONEST,
    TYPE_ADVERSARY,
    TYPE_HONEST,
    TYPE_MINING,
    ForkState,
    MineAction,
    ReleaseAction,
    SymbolicTransition,
    available_actions,
    initial_state,
    successor_distribution,
    symbolic_successor_distribution,
)
from .selfish_forks import SelfishForksModel, build_selfish_forks_mdp
from .structure import (
    SelfishForksStructure,
    SupportSignature,
    build_model_structure,
    clear_structure_cache,
    get_model_structure,
    install_structure,
    structure_cache_stats,
)
from .honest import honest_errev, honest_strategy, honest_strategy_rows
from .eyal_sirer import (
    eyal_sirer_profitability_threshold,
    eyal_sirer_relative_revenue,
)
from .single_tree import SingleTreeParams, simulate_single_tree_errev, single_tree_errev
from .base import AttackDecision, MiningPolicy
from .policies import GreedyLeadPolicy, HonestPolicy, SelfishForksPolicy

__all__ = [
    "ADVERSARY",
    "HONEST",
    "TYPE_ADVERSARY",
    "TYPE_HONEST",
    "TYPE_MINING",
    "ForkState",
    "MineAction",
    "ReleaseAction",
    "SymbolicTransition",
    "available_actions",
    "initial_state",
    "successor_distribution",
    "symbolic_successor_distribution",
    "SelfishForksModel",
    "build_selfish_forks_mdp",
    "SelfishForksStructure",
    "SupportSignature",
    "build_model_structure",
    "clear_structure_cache",
    "get_model_structure",
    "install_structure",
    "structure_cache_stats",
    "honest_errev",
    "honest_strategy",
    "honest_strategy_rows",
    "eyal_sirer_relative_revenue",
    "eyal_sirer_profitability_threshold",
    "SingleTreeParams",
    "single_tree_errev",
    "simulate_single_tree_errev",
    "AttackDecision",
    "MiningPolicy",
    "HonestPolicy",
    "SelfishForksPolicy",
    "GreedyLeadPolicy",
]
