"""Mining strategies and attack models.

* :mod:`repro.attacks.registry` -- the attack-scenario registry, the one public
  entry point for enumerating, selecting and registering attack families
  (:func:`get_attack` / :func:`list_attacks` / :func:`register_attack`).
* :mod:`repro.attacks.fork_state` / :mod:`repro.attacks.selfish_forks` -- the
  paper's multi-fork selfish-mining MDP (Section 3.2), the primary contribution,
  registered as the ``"selfish-forks"`` scenario.
* :mod:`repro.attacks.sm_actions` -- the classic ADOPT/OVERRIDE/WAIT/MATCH
  action space (Sapirshtein et al.), registered as ``"sm-actions"``.
* :mod:`repro.attacks.honest` -- the honest-mining baseline.
* :mod:`repro.attacks.single_tree` -- the single-tree (Eyal-Sirer style) baseline.
* :mod:`repro.attacks.eyal_sirer` -- the classic PoW selfish-mining closed form.
* :mod:`repro.attacks.base` / policies -- strategy objects consumed by the
  discrete-time chain simulator for Monte-Carlo validation.
"""

from .registry import (
    AttackScenario,
    ScenarioStructure,
    get_attack,
    list_attacks,
    register_attack,
    resolve_scenario,
    scenario_id_for,
    unregister_attack,
)
from .fork_state import (
    ADVERSARY,
    HONEST,
    TYPE_ADVERSARY,
    TYPE_HONEST,
    TYPE_MINING,
    ForkState,
    MineAction,
    ReleaseAction,
    SymbolicTransition,
    available_actions,
    initial_state,
    successor_distribution,
    symbolic_successor_distribution,
)
from .selfish_forks import SelfishForksModel, build_selfish_forks_mdp
from .structure import (
    SelfishForksStructure,
    SupportSignature,
    build_model_structure,
    clear_structure_cache,
    get_model_structure,
    install_structure,
    structure_cache_stats,
)
from .honest import honest_errev, honest_strategy, honest_strategy_rows
from .eyal_sirer import (
    eyal_sirer_profitability_threshold,
    eyal_sirer_relative_revenue,
)
from .single_tree import SingleTreeParams, simulate_single_tree_errev, single_tree_errev
from .base import AttackDecision, MiningPolicy
from .policies import GreedyLeadPolicy, HonestPolicy, SelfishForksPolicy
from .sm_actions import (
    SmActionsModel,
    SmActionsPolicy,
    SmActionsStructure,
    build_sm_actions_mdp,
    simulate_sm_actions,
)

__all__ = [
    "AttackScenario",
    "ScenarioStructure",
    "get_attack",
    "list_attacks",
    "register_attack",
    "resolve_scenario",
    "scenario_id_for",
    "unregister_attack",
    "SmActionsModel",
    "SmActionsPolicy",
    "SmActionsStructure",
    "build_sm_actions_mdp",
    "simulate_sm_actions",
    "ADVERSARY",
    "HONEST",
    "TYPE_ADVERSARY",
    "TYPE_HONEST",
    "TYPE_MINING",
    "ForkState",
    "MineAction",
    "ReleaseAction",
    "SymbolicTransition",
    "available_actions",
    "initial_state",
    "successor_distribution",
    "symbolic_successor_distribution",
    "SelfishForksModel",
    "build_selfish_forks_mdp",
    "SelfishForksStructure",
    "SupportSignature",
    "build_model_structure",
    "clear_structure_cache",
    "get_model_structure",
    "install_structure",
    "structure_cache_stats",
    "honest_errev",
    "honest_strategy",
    "honest_strategy_rows",
    "eyal_sirer_relative_revenue",
    "eyal_sirer_profitability_threshold",
    "SingleTreeParams",
    "single_tree_errev",
    "simulate_single_tree_errev",
    "AttackDecision",
    "MiningPolicy",
    "HonestPolicy",
    "SelfishForksPolicy",
    "GreedyLeadPolicy",
]
