"""Ablation: batched beta probes and the racing solver portfolio.

Algorithm 1's classic bisection halves the beta interval once per solve; the
batched mode stacks ``k`` probes against the shared model structure and shrinks
the interval by ``k + 1`` per vectorised round, trading more (cheaper) probes
for fewer rounds.  The portfolio backend races policy iteration against value
iteration per probe.  This benchmark times every variant on the same model,
checks that all of them reproduce the sequential search's certified lower bound
within epsilon, and persists the timings plus solver-iteration counts to
``benchmarks/results/batched_probe_ablation.csv``.
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
ATTACK = (
    AttackParams(depth=1, forks=1, max_fork_length=4)
    if smoke_mode()
    else AttackParams(depth=2, forks=1, max_fork_length=4)
)
EPSILON = 1e-3

#: (label, solver, batch_probes) variants of the ablation.
VARIANTS = [
    ("sequential/pi", "policy_iteration", 1),
    ("batched-3/pi", "policy_iteration", 3),
    ("batched-7/pi", "policy_iteration", 7),
    ("sequential/vi", "value_iteration", 1),
    ("batched-3/vi", "value_iteration", 3),
    ("batched-7/vi", "value_iteration", 7),
    ("sequential/portfolio", "portfolio", 1),
    ("batched-3/portfolio", "portfolio", 3),
]

_ROWS: list[dict] = []


@pytest.fixture(scope="module")
def model():
    return build_selfish_forks_mdp(PROTOCOL, ATTACK)


def _run_variant(mdp, label, solver, batch_probes) -> dict:
    config = AnalysisConfig(epsilon=EPSILON, solver=solver, batch_probes=batch_probes)
    start = time.perf_counter()
    result = formal_analysis(mdp, config)
    seconds = time.perf_counter() - start
    assert result.interval_width < EPSILON
    return {
        "variant": label,
        "solver": solver,
        "batch_probes": batch_probes,
        "errev_lower_bound": result.errev_lower_bound,
        "beta_up": result.beta_up,
        "num_solves": result.num_iterations,
        "rounds": result.num_iterations // batch_probes,
        "total_solver_iterations": result.total_solver_iterations,
        "seconds": seconds,
        "winning_backend": result.winning_solver or "",
    }


@pytest.mark.parametrize("label,solver,batch_probes", VARIANTS)
def test_ablation_batched_probe_variant(benchmark, model, label, solver, batch_probes):
    """One Algorithm 1 run per (solver, batch size) variant."""
    row = benchmark.pedantic(
        _run_variant, args=(model.mdp, label, solver, batch_probes), rounds=1, iterations=1
    )
    _ROWS.append(row)


def test_ablation_variants_agree_and_persist(results_dir, model):
    """Every variant must certify the same lower bound; persist the ablation."""
    # Recompute any variant whose timing test did not run (e.g. under -k /
    # --last-failed) so this check never depends on test selection order.
    done = {row["variant"] for row in _ROWS}
    for label, solver, batch_probes in VARIANTS:
        if label not in done:
            _ROWS.append(_run_variant(model.mdp, label, solver, batch_probes))
    reference = next(row for row in _ROWS if row["variant"] == "sequential/pi")
    for row in _ROWS:
        assert row["errev_lower_bound"] == pytest.approx(
            reference["errev_lower_bound"], abs=EPSILON
        ), row["variant"]
        # Batched rounds shrink the interval (k+1)-fold, so a k-probe variant
        # needs strictly fewer rounds than the sequential search's solves.
        if row["batch_probes"] > 1:
            assert row["rounds"] < reference["num_solves"], row["variant"]
    path = write_csv(
        _ROWS,
        results_dir / "batched_probe_ablation.csv",
        columns=[
            "variant",
            "solver",
            "batch_probes",
            "errev_lower_bound",
            "beta_up",
            "num_solves",
            "rounds",
            "total_solver_iterations",
            "seconds",
            "winning_backend",
        ],
    )
    print()
    print(render_table(_ROWS))
    print(f"ablation written to {path}")
