"""Scenario ablation: skeleton-build and refill costs per registered scenario.

The attack registry promises that every scenario rides the same
explore-once/refill-per-point machinery.  This benchmark times both halves --
the breadth-first ``explore`` and the vectorised ``instantiate`` refill -- for
each built-in scenario and persists the comparison to
``results/scenario_ablation.csv``, so a regression in either scenario's
structure path (or a new scenario whose refill is accidentally quadratic)
shows up as a row-level diff.
"""

from __future__ import annotations

import time

import pytest

from conftest import smoke_mode
from repro import AttackParams, ProtocolParams
from repro.attacks.registry import SupportSignature, get_attack
from repro.core.reporting import write_csv

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)


def _grid() -> list[AttackParams]:
    selfish = [AttackParams(depth=1, forks=1, max_fork_length=4)]
    actions = [AttackParams(depth=1, forks=1, max_fork_length=8, scenario="sm-actions")]
    if not smoke_mode():
        selfish.append(AttackParams(depth=2, forks=1, max_fork_length=4))
        actions.append(
            AttackParams(
                depth=1,
                forks=1,
                max_fork_length=12,
                scenario="sm-actions",
                variant="overpaying",
            )
        )
    return selfish + actions


_ROWS: list[dict] = []


@pytest.mark.parametrize(
    "attack",
    _grid(),
    ids=lambda a: f"{a.scenario}_d{a.depth}_f{a.forks}_l{a.max_fork_length}"
    + (f"_{a.variant}" if a.variant else ""),
)
def test_scenario_structure_costs(benchmark, attack):
    """Time one scenario's exploration, then its per-point probability refill."""
    entry = get_attack(attack.scenario)
    signature = SupportSignature.of(PROTOCOL)
    structure = benchmark.pedantic(
        entry.explore, args=(attack, signature), rounds=1, iterations=1
    )
    refill_start = time.perf_counter()
    instantiated = structure.instantiate(PROTOCOL)
    refill_seconds = time.perf_counter() - refill_start
    _ROWS.append(
        {
            "scenario": entry.scenario_id,
            "series": entry.series_name(attack),
            "states": instantiated.num_states,
            "transitions": int(instantiated.trans_prob.size),
            "explore_seconds": benchmark.stats.stats.mean,
            "refill_seconds": refill_seconds,
        }
    )
    assert instantiated.num_states > 0


def test_scenario_ablation_report(results_dir):
    """Persist the cross-scenario comparison table."""
    assert _ROWS
    write_csv(
        _ROWS,
        results_dir / "scenario_ablation.csv",
        columns=[
            "scenario",
            "series",
            "states",
            "transitions",
            "explore_seconds",
            "refill_seconds",
        ],
    )
    assert {row["scenario"].split("@")[0] for row in _ROWS} == {
        "selfish-forks",
        "sm-actions",
    }
