"""Per-point dispatch overhead of the execution plane's three backends.

Every sweep backend (:mod:`repro.core.execution`) pays a per-point tax on top
of the solver itself: serial pays only the merge sink, the pool adds
future scheduling plus the shared-memory planes, and the loopback fabric adds
TCP framing and streamed scheduling.  This benchmark separates that tax from
solver time: each variant runs the identical grid, and

    dispatch_overhead = (wall_seconds - solver_seconds) / attack_points

where ``solver_seconds`` is the sum of the per-point timings the outcomes
carry.  For parallel backends that sum counts every worker's solver time, so
overlap can drive the overhead *negative* -- the column is a comparison
metric, not an absolute cost: serial is the floor, and the spread between
backends is the scheduling tax.  All variants must agree on the ERRev
checksum bit-for-bit (asserted),
so the overhead numbers compare equal work.  Rows land in
``benchmarks/results/backend_dispatch_overhead.csv``; the CI smoke job runs
this on a reduced grid so a scheduling regression in any backend shows up on
every push.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig, run_sweep
from repro.attacks import clear_structure_cache
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

_SRC = Path(__file__).resolve().parents[1] / "src"

EPSILON = 1e-3
POOL_WORKERS = 2
if smoke_mode():
    P_VALUES = (0.05, 0.1, 0.15)
    GAMMAS = (0.5,)
else:
    P_VALUES = tuple(round(0.05 * i, 2) for i in range(0, 6))
    GAMMAS = (0.0, 0.5)
ATTACKS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

COLUMNS = [
    "backend",
    "workers",
    "wall_seconds",
    "solver_seconds",
    "attack_points",
    "dispatch_overhead_seconds",
    "errev_checksum",
]

_ROWS: list[dict] = []
_SWEEPS: dict = {}


def _grid_config(**overrides) -> SweepConfig:
    settings = dict(
        p_values=P_VALUES,
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        analysis=AnalysisConfig(epsilon=EPSILON),
    )
    settings.update(overrides)
    return SweepConfig(**settings)


def _row(backend: str, workers: int, seconds: float, sweep) -> dict:
    assert not sweep.failures, [failure.message for failure in sweep.failures]
    _SWEEPS[backend] = sweep
    timed = [point for point in sweep.points if point.seconds is not None]
    solver_seconds = sum(point.seconds for point in timed)
    return {
        "backend": backend,
        "workers": workers,
        "wall_seconds": seconds,
        "solver_seconds": solver_seconds,
        "attack_points": len(timed),
        "dispatch_overhead_seconds": (seconds - solver_seconds) / len(timed),
        "errev_checksum": round(sum(point.errev for point in sweep.points), 9),
    }


def _run_serial() -> dict:
    clear_structure_cache()
    start = time.perf_counter()
    sweep = run_sweep(_grid_config(workers=1))
    return _row("serial", 1, time.perf_counter() - start, sweep)


def _run_pool() -> dict:
    clear_structure_cache()
    start = time.perf_counter()
    sweep = run_sweep(_grid_config(workers=POOL_WORKERS))
    return _row("pool", POOL_WORKERS, time.perf_counter() - start, sweep)


def _run_distributed_loopback() -> dict:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"127.0.0.1:{port}",
                "--connect-retry-seconds",
                "30",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        for _ in range(POOL_WORKERS)
    ]
    clear_structure_cache()
    try:
        start = time.perf_counter()
        sweep = run_sweep(
            _grid_config(
                coordinator=f"127.0.0.1:{port}",
                distributed_workers=POOL_WORKERS,
            )
        )
        seconds = time.perf_counter() - start
    finally:
        for worker in workers:
            worker.wait(timeout=30)
    return _row("distributed-loopback", POOL_WORKERS, seconds, sweep)


_VARIANTS = {
    "serial": _run_serial,
    "pool": _run_pool,
    "distributed-loopback": _run_distributed_loopback,
}


@pytest.mark.parametrize("backend", list(_VARIANTS))
def test_backend_dispatch(benchmark, backend):
    """Time one backend on the shared grid (solver time netted out later)."""
    row = benchmark.pedantic(_VARIANTS[backend], rounds=1, iterations=1)
    _ROWS.append(row)


def test_dispatch_overhead_agrees_and_persists(results_dir):
    """Backends must agree on the checksum; persist the overhead CSV."""
    done = {row["backend"] for row in _ROWS}
    for backend, runner in _VARIANTS.items():
        if backend not in done:
            _ROWS.append(runner())
    checksums = {row["backend"]: row["errev_checksum"] for row in _ROWS}
    assert len(set(checksums.values())) == 1, (
        f"backends computed different grids: {checksums}"
    )
    reference = _SWEEPS["serial"]
    for backend in ("pool", "distributed-loopback"):
        assert [(p.p, p.gamma, p.series, p.errev) for p in reference.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in _SWEEPS[backend].points
        ], backend
    rows = sorted(_ROWS, key=lambda row: row["backend"])
    path = write_csv(rows, results_dir / "backend_dispatch_overhead.csv", columns=COLUMNS)
    print()
    print(render_table(rows))
    print(f"dispatch overhead written to {path}")
