"""Ablation: shared-memory model plane and cooperative portfolio cancellation.

Two scaling mechanisms of the sweep engine are measured against their PR 2
baselines on the same grid:

* **Model plane.**  A spawn-started pool (forced via
  ``REPRO_TEST_START_METHOD``) either lets every worker rebuild all model
  skeletons in its initializer (the PR 2 prewarm baseline,
  ``use_shared_structures=False``) or attaches the parent-built skeletons
  zero-copy from one shared-memory segment.  Both sweeps must produce identical
  points; the wall-clock difference is the per-worker exploration cost the
  plane eliminates.
* **Cancellation.**  The racing portfolio solver now stops losers at the next
  iteration boundary; ``cancelled_solver_iterations`` records the iterations
  losers had completed when cancelled.  The saving versus PR 2 (losers ran
  their full course) is the standalone iteration count of the losing backend
  minus the iterations actually spent before cancellation.

Timings plus the savings land in
``benchmarks/results/shared_structure_ablation.csv``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams, SweepConfig, run_sweep
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp, clear_structure_cache
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

WORKERS = 4
EPSILON = 1e-3
if smoke_mode():
    P_VALUES = (0.1, 0.3)
    GAMMAS = (0.5,)
else:
    P_VALUES = tuple(round(0.05 * i, 2) for i in range(0, 7))
    GAMMAS = (0.0, 0.5)
ATTACKS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

COLUMNS = [
    "variant",
    "start_method",
    "workers",
    "wall_seconds",
    "points",
    "solver_iterations",
    "cancelled_iterations",
    "errev_checksum",
]

#: (label, use_shared_structures) spawn-sweep variants of the ablation.
SWEEP_VARIANTS = [
    ("spawn-prewarm-per-worker", False),
    ("spawn-shared-plane", True),
]

_ROWS: list[dict] = []
_SWEEPS: dict = {}


def _sweep_config(use_shared: bool) -> SweepConfig:
    return SweepConfig(
        p_values=P_VALUES,
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        analysis=AnalysisConfig(epsilon=EPSILON),
        workers=WORKERS,
        use_shared_structures=use_shared,
    )


def _run_sweep_variant(label: str, use_shared: bool) -> dict:
    """One forced-spawn sweep; the env override is scoped to the call."""
    clear_structure_cache()
    previous = os.environ.get("REPRO_TEST_START_METHOD")
    os.environ["REPRO_TEST_START_METHOD"] = "spawn"
    try:
        start = time.perf_counter()
        sweep = run_sweep(_sweep_config(use_shared))
        seconds = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_TEST_START_METHOD", None)
        else:
            os.environ["REPRO_TEST_START_METHOD"] = previous
    assert not sweep.failures, [f.message for f in sweep.failures]
    _SWEEPS[label] = sweep
    return {
        "variant": label,
        "start_method": "spawn",
        "workers": WORKERS,
        "wall_seconds": seconds,
        "points": len(sweep.points),
        "solver_iterations": sweep.total_solver_iterations,
        "cancelled_iterations": "",
        "errev_checksum": round(sum(point.errev for point in sweep.points), 9),
    }


def _run_cancellation_variant() -> dict:
    """Portfolio run recording the iterations saved by cooperative cancellation.

    The PR 2 baseline let losers run to completion, so the work it would have
    burned is the standalone iteration count of each backend; the cancelled run
    spends only ``cancelled_solver_iterations`` of loser work on top of the
    winners'.
    """
    model = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=0.5), ATTACKS[-1])
    standalone_iterations = {}
    for solver in ("policy_iteration", "value_iteration"):
        result = formal_analysis(
            model.mdp, AnalysisConfig(epsilon=EPSILON, solver=solver, solver_tolerance=1e-7)
        )
        standalone_iterations[solver] = result.total_solver_iterations
    start = time.perf_counter()
    portfolio = formal_analysis(
        model.mdp,
        AnalysisConfig(epsilon=EPSILON, solver="portfolio", solver_tolerance=1e-7),
    )
    seconds = time.perf_counter() - start
    assert portfolio.interval_width < EPSILON
    # PR 2 burned (roughly) both standalone budgets; the cancelled run spends
    # the winners' iterations plus only the pre-cancellation slice of losers.
    baseline_total = sum(standalone_iterations.values())
    spent_total = portfolio.total_solver_iterations + portfolio.cancelled_solver_iterations
    return {
        "variant": "portfolio-cancellation",
        "start_method": "",
        "workers": 1,
        "wall_seconds": seconds,
        "points": 1,
        "solver_iterations": spent_total,
        "cancelled_iterations": max(baseline_total - spent_total, 0),
        "errev_checksum": round(portfolio.errev_lower_bound, 9),
    }


@pytest.mark.parametrize("label,use_shared", SWEEP_VARIANTS)
def test_spawn_sweep_variant(benchmark, label, use_shared):
    """Time one forced-spawn sweep per structure-distribution variant."""
    row = benchmark.pedantic(_run_sweep_variant, args=(label, use_shared), rounds=1, iterations=1)
    _ROWS.append(row)


def test_portfolio_cancellation_savings(benchmark):
    """Measure the loser iterations the cooperative cancellation avoids."""
    row = benchmark.pedantic(_run_cancellation_variant, rounds=1, iterations=1)
    _ROWS.append(row)


def test_variants_agree_and_persist(results_dir):
    """Both spawn variants must compute identical points; persist the ablation."""
    done = {row["variant"] for row in _ROWS}
    for label, use_shared in SWEEP_VARIANTS:
        if label not in done:
            _ROWS.append(_run_sweep_variant(label, use_shared))
    if "portfolio-cancellation" not in done:
        _ROWS.append(_run_cancellation_variant())
    baseline = _SWEEPS["spawn-prewarm-per-worker"]
    shared = _SWEEPS["spawn-shared-plane"]
    assert [(p.p, p.gamma, p.series, p.errev) for p in baseline.points] == [
        (p.p, p.gamma, p.series, p.errev) for p in shared.points
    ]
    rows = sorted(_ROWS, key=lambda row: row["variant"])
    path = write_csv(rows, results_dir / "shared_structure_ablation.csv", columns=COLUMNS)
    print()
    print(render_table(rows))
    print(f"ablation written to {path}")
