"""Ablation: durable sweep journal overhead (off vs on vs fsync-per-record).

The crash-safe journal (``repro sweep --journal``) appends one checksummed
JSONL record per computed point, flushed per record.  Its cost is bounded by
construction -- one canonical-JSON encode + CRC-32 + ``write()`` per point,
plus an ``fsync`` per record under the paranoid ``--journal-fsync always``
policy -- but "bounded by construction" is not a number, so this benchmark
measures the same pooled sweep three ways:

* ``no-journal``      -- the baseline engine path;
* ``journal``         -- journaling with the default ``close`` fsync policy;
* ``journal-fsync-always`` -- durability against power loss, one fsync per
  record.

All three variants must produce bit-for-bit identical points (the journal is
an observer, never a participant, of the computation), and the journaled
variants must have recorded every attack point.  Timings land in
``benchmarks/results/journal_overhead.csv``.
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig, run_sweep
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

WORKERS = 4
EPSILON = 1e-3
if smoke_mode():
    P_VALUES = (0.1, 0.3)
    GAMMAS = (0.5,)
else:
    P_VALUES = tuple(round(0.05 * i, 2) for i in range(0, 7))
    GAMMAS = (0.0, 0.5)
ATTACKS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

COLUMNS = [
    "variant",
    "workers",
    "wall_seconds",
    "points",
    "journaled_points",
    "journal_bytes",
    "errev_checksum",
]

#: (label, journal enabled, fsync policy) sweep variants of the ablation.
SWEEP_VARIANTS = [
    ("no-journal", False, "close"),
    ("journal", True, "close"),
    ("journal-fsync-always", True, "always"),
]

_ROWS: list = []
_SWEEPS: dict = {}


def _run_variant(label: str, journaled: bool, fsync: str, results_dir) -> dict:
    journal_path = results_dir / f"bench_journal_{label}.jsonl"
    config = SweepConfig(
        p_values=P_VALUES,
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        analysis=AnalysisConfig(epsilon=EPSILON),
        workers=WORKERS,
        journal_path=str(journal_path) if journaled else None,
        journal_fsync=fsync,
    )
    start = time.perf_counter()
    sweep = run_sweep(config)
    seconds = time.perf_counter() - start
    assert not sweep.failures, [f.message for f in sweep.failures]
    journaled_points = 0
    journal_bytes = 0
    if journaled:
        meta = sweep.metadata["journal"]
        journaled_points = meta["recorded"]
        journal_bytes = journal_path.stat().st_size
        expected = len(P_VALUES) * len(GAMMAS) * len(ATTACKS)
        assert journaled_points == expected, (journaled_points, expected)
        journal_path.unlink()  # the measurement artifact, not a result
    _SWEEPS[label] = sweep
    return {
        "variant": label,
        "workers": WORKERS,
        "wall_seconds": seconds,
        "points": len(sweep.points),
        "journaled_points": journaled_points,
        "journal_bytes": journal_bytes,
        "errev_checksum": round(sum(point.errev for point in sweep.points), 9),
    }


@pytest.mark.parametrize("label,journaled,fsync", SWEEP_VARIANTS)
def test_sweep_variant(benchmark, results_dir, label, journaled, fsync):
    """Time one pooled sweep per journal-policy variant."""
    row = benchmark.pedantic(
        _run_variant, args=(label, journaled, fsync, results_dir), rounds=1, iterations=1
    )
    _ROWS.append(row)


def test_variants_agree_and_persist(results_dir):
    """The journal must never change computed values; persist the ablation."""
    done = {row["variant"] for row in _ROWS}
    for label, journaled, fsync in SWEEP_VARIANTS:
        if label not in done:
            _ROWS.append(_run_variant(label, journaled, fsync, results_dir))
    baseline = _SWEEPS["no-journal"]
    for label in ("journal", "journal-fsync-always"):
        assert [(p.p, p.gamma, p.series, p.errev) for p in baseline.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in _SWEEPS[label].points
        ], label
    rows = sorted(_ROWS, key=lambda row: row["variant"])
    path = write_csv(rows, results_dir / "journal_overhead.csv", columns=COLUMNS)
    print()
    print(render_table(rows))
    print(f"ablation written to {path}")
