"""Ablation: distributed sweep fabric vs local execution on the same grid.

Three execution backends compute an identical ``(p, gamma, attack)`` grid:

* ``serial``            -- the in-process reference (``workers=1``),
* ``local-pool``        -- the process-pool engine with the shared-memory
                           model plane (``workers=2``),
* ``distributed-loopback`` -- the TCP coordinator/worker fabric
                           (:mod:`repro.core.distributed`) with two worker
                           *processes* connected over 127.0.0.1, model
                           skeletons shipped as flat buffers over the socket.

All three must produce bit-for-bit identical points (asserted); the wall-clock
spread quantifies the fabric's overhead (connection setup, framing, streamed
scheduling) against the pool it generalises.  Rows land in
``benchmarks/results/distributed_ablation.csv``; the CI smoke job runs this on
a reduced grid so the loopback fabric is exercised on every push.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig, run_sweep
from repro.attacks import clear_structure_cache
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

_SRC = Path(__file__).resolve().parents[1] / "src"

EPSILON = 1e-3
DISTRIBUTED_WORKERS = 2
if smoke_mode():
    P_VALUES = (0.05, 0.1, 0.15, 0.2)
    GAMMAS = (0.5,)
else:
    P_VALUES = tuple(round(0.05 * i, 2) for i in range(0, 7))
    GAMMAS = (0.0, 0.5)
ATTACKS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

COLUMNS = [
    "variant",
    "workers",
    "wall_seconds",
    "points",
    "units",
    "reassigned_units",
    "worker_builds",
    "errev_checksum",
]

_ROWS: list[dict] = []
_SWEEPS: dict = {}


def _grid_config(**overrides) -> SweepConfig:
    settings = dict(
        p_values=P_VALUES,
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        analysis=AnalysisConfig(epsilon=EPSILON),
    )
    settings.update(overrides)
    return SweepConfig(**settings)


def _row(variant: str, workers: int, seconds: float, sweep, **extra) -> dict:
    assert not sweep.failures, [failure.message for failure in sweep.failures]
    _SWEEPS[variant] = sweep
    row = {
        "variant": variant,
        "workers": workers,
        "wall_seconds": seconds,
        "points": len(sweep.points),
        "units": "",
        "reassigned_units": "",
        "worker_builds": "",
        "errev_checksum": round(sum(point.errev for point in sweep.points), 9),
    }
    row.update(extra)
    return row


def _run_serial() -> dict:
    clear_structure_cache()
    start = time.perf_counter()
    sweep = run_sweep(_grid_config(workers=1))
    return _row("serial", 1, time.perf_counter() - start, sweep)


def _run_local_pool() -> dict:
    clear_structure_cache()
    start = time.perf_counter()
    sweep = run_sweep(_grid_config(workers=DISTRIBUTED_WORKERS))
    return _row("local-pool", DISTRIBUTED_WORKERS, time.perf_counter() - start, sweep)


def _run_distributed_loopback() -> dict:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"127.0.0.1:{port}",
                "--connect-retry-seconds",
                "30",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        for _ in range(DISTRIBUTED_WORKERS)
    ]
    clear_structure_cache()
    try:
        start = time.perf_counter()
        sweep = run_sweep(
            _grid_config(
                coordinator=f"127.0.0.1:{port}",
                distributed_workers=DISTRIBUTED_WORKERS,
            )
        )
        seconds = time.perf_counter() - start
    finally:
        for worker in workers:
            worker.wait(timeout=30)
    fabric = sweep.metadata["distributed"]
    builds = sum(stats["builds"] for stats in fabric["workers"].values())
    return _row(
        "distributed-loopback",
        DISTRIBUTED_WORKERS,
        seconds,
        sweep,
        units=fabric["units"],
        reassigned_units=fabric["reassigned_units"],
        worker_builds=builds,
    )


_VARIANTS = {
    "serial": _run_serial,
    "local-pool": _run_local_pool,
    "distributed-loopback": _run_distributed_loopback,
}


@pytest.mark.parametrize("variant", list(_VARIANTS))
def test_backend_variant(benchmark, variant):
    """Time one execution backend on the shared grid."""
    row = benchmark.pedantic(_VARIANTS[variant], rounds=1, iterations=1)
    _ROWS.append(row)


def test_backends_agree_and_persist(results_dir):
    """All backends must compute identical points; persist the ablation CSV."""
    done = {row["variant"] for row in _ROWS}
    for variant, runner in _VARIANTS.items():
        if variant not in done:
            _ROWS.append(runner())
    reference = _SWEEPS["serial"]
    for variant in ("local-pool", "distributed-loopback"):
        assert [(p.p, p.gamma, p.series, p.errev) for p in reference.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in _SWEEPS[variant].points
        ], variant
    builds = sum(
        stats["builds"]
        for stats in _SWEEPS["distributed-loopback"].metadata["distributed"]["workers"].values()
    )
    assert builds == 0, "remote workers must never explore"
    rows = sorted(_ROWS, key=lambda row: row["variant"])
    path = write_csv(rows, results_dir / "distributed_ablation.csv", columns=COLUMNS)
    print()
    print(render_table(rows))
    print(f"ablation written to {path}")
