"""Scaling of the MDP construction and of single solver iterations.

Not a table or figure of the paper per se, but the quantity behind Table 1's
runtime blow-up: the reachable state space (and hence every downstream cost)
grows exponentially with d and f and polynomially with l.  This benchmark
measures construction time and state counts across a small grid and checks the
growth direction.
"""

from __future__ import annotations

import pytest

from repro import AttackParams, ProtocolParams
from repro.attacks import build_selfish_forks_mdp
from repro.attacks.selfish_forks import estimate_state_space_size
from repro.chain import SelfishMiningSimulator
from repro.attacks.policies import GreedyLeadPolicy
from repro.core.reporting import write_csv

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)

GRID = [
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=2),
    AttackParams(depth=2, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=2, max_fork_length=4),
]

_ROWS: list[dict] = []


@pytest.mark.parametrize(
    "attack", GRID, ids=lambda a: f"d{a.depth}_f{a.forks}_l{a.max_fork_length}"
)
def test_model_construction_scaling(benchmark, attack):
    """Time the reachable-state exploration for one configuration.

    The structure cache is bypassed here on purpose: earlier benchmarks in the
    session have already populated it, and a cache hit would measure a dict
    lookup instead of the exploration this benchmark is about.
    """
    model = benchmark.pedantic(
        build_selfish_forks_mdp,
        args=(PROTOCOL, attack),
        kwargs={"use_structure_cache": False},
        rounds=1,
        iterations=1,
    )
    _ROWS.append(
        {
            "d": attack.depth,
            "f": attack.forks,
            "l": attack.max_fork_length,
            "states": model.num_states,
            "transitions": model.mdp.num_transitions,
            "bound": estimate_state_space_size(attack),
            "seconds": benchmark.stats.stats.mean,
        }
    )
    assert model.num_states <= estimate_state_space_size(attack)


def test_model_construction_report(benchmark, results_dir):
    """Persist the scaling table and check monotone growth in the state count."""
    assert _ROWS
    benchmark.pedantic(
        write_csv,
        args=(_ROWS, results_dir / "model_construction_scaling.csv"),
        kwargs={"columns": ["d", "f", "l", "states", "transitions", "bound", "seconds"]},
        rounds=1,
        iterations=1,
    )
    states = [row["states"] for row in _ROWS]
    assert states == sorted(states)


def test_simulator_throughput(benchmark):
    """Steps-per-second of the discrete-time chain simulator (greedy policy)."""
    simulator = SelfishMiningSimulator(
        PROTOCOL, AttackParams(depth=2, forks=1, max_fork_length=4), GreedyLeadPolicy(), seed=0
    )
    result = benchmark.pedantic(simulator.run, args=(20_000,), rounds=1, iterations=1)
    assert result.steps == 20_000
