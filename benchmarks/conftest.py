"""Shared configuration of the benchmark harness.

Set the environment variable ``REPRO_FULL=1`` to run the paper's full parameter
grid (all attack configurations of Table 1 and the 0.01-step p-grid of
Figure 2).  The default configuration keeps every benchmark laptop-scale; see
DESIGN.md for the rationale.

Set ``REPRO_BENCH_SMOKE=1`` (used by the CI benchmark job) to shrink the grids
further so every perf path is exercised within a couple of minutes on a shared
runner; ``REPRO_FULL`` wins when both are set.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Directory where benchmark CSV outputs are written.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def full_mode() -> bool:
    """Whether the full (paper-sized) benchmark grid was requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def smoke_mode() -> bool:
    """Whether the reduced CI smoke grid was requested (``REPRO_FULL`` wins)."""
    if full_mode():
        return False
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory for CSV outputs produced by the benchmarks."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_full_grid() -> bool:
    """Session-wide flag selecting the full paper grid."""
    return full_mode()
