"""Table 1: analysis runtimes per attack configuration (gamma = 0.5).

The paper reports the wall-clock time of the fully automated analysis for the
attack configurations (d, f) in {(1,1), (2,1), (2,2), (3,2), (4,2)} plus the
single-tree baseline with f = 5.  Absolute times are hardware- and
backend-dependent (the paper used Storm; this reproduction uses a pure-Python
solver), so the quantity to reproduce is the *shape*: runtimes grow by orders of
magnitude as d and f increase, with (1,1) < (2,1) < (2,2) < ...

The two largest configurations are opt-in (``REPRO_FULL=1``) because the
pure-Python solver cannot finish them within a CI-scale budget.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp, single_tree_errev
from repro.attacks.single_tree import SingleTreeParams
from repro.core.reporting import render_table, write_csv

from conftest import full_mode

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
EPSILON = 1e-3

DEFAULT_CONFIGS = [
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=2, max_fork_length=4),
]
FULL_ONLY_CONFIGS = [
    AttackParams(depth=3, forks=2, max_fork_length=4),
]

CONFIGS = DEFAULT_CONFIGS + (FULL_ONLY_CONFIGS if full_mode() else [])

#: Collected (configuration label, runtime seconds, states) rows, written to CSV
#: by the final reporting benchmark.
_ROWS: list[dict] = []


def _run_full_analysis(attack: AttackParams) -> dict:
    model = build_selfish_forks_mdp(PROTOCOL, attack)
    result = formal_analysis(model.mdp, AnalysisConfig(epsilon=EPSILON))
    return {
        "attack": f"ours(d={attack.depth},f={attack.forks})",
        "num_states": model.num_states,
        "errev": result.strategy_errev,
    }


@pytest.mark.parametrize("attack", CONFIGS, ids=lambda a: f"d{a.depth}_f{a.forks}")
def test_table1_our_attack_runtime(benchmark, attack):
    """Time the model construction plus Algorithm 1 for one attack configuration."""
    outcome = benchmark.pedantic(_run_full_analysis, args=(attack,), rounds=1, iterations=1)
    _ROWS.append(
        {
            "attack": outcome["attack"],
            "states": outcome["num_states"],
            "errev": outcome["errev"],
            "seconds": benchmark.stats.stats.mean,
        }
    )
    assert outcome["errev"] >= PROTOCOL.p - EPSILON


def test_table1_single_tree_runtime(benchmark):
    """Time the exact evaluation of the single-tree baseline (f = 5, l = 4)."""
    params = SingleTreeParams(max_depth=4, max_width=5)
    value = benchmark.pedantic(
        single_tree_errev, args=(PROTOCOL, params), rounds=1, iterations=1
    )
    _ROWS.append(
        {
            "attack": "single-tree(f=5)",
            "states": None,
            "errev": value,
            "seconds": benchmark.stats.stats.mean,
        }
    )
    assert 0.0 < value < 1.0


def test_table1_report(benchmark, results_dir):
    """Write the Table 1 reproduction and check the qualitative shape.

    Runtime must grow with the attack size: each configuration in the default
    list is at least as expensive as the previous one (up to timer noise).
    """
    assert _ROWS, "the timing benchmarks must run before the report"
    ours = [row for row in _ROWS if row["attack"].startswith("ours")]
    path = benchmark.pedantic(
        write_csv,
        args=(_ROWS, results_dir / "table1_runtimes.csv"),
        kwargs={"columns": ["attack", "states", "errev", "seconds"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(_ROWS))
    print(f"\nwritten to {path}")
    states = [row["states"] for row in ours]
    assert states == sorted(states)
    # Order-of-magnitude growth between the smallest and largest configuration.
    assert ours[-1]["seconds"] > ours[0]["seconds"]
