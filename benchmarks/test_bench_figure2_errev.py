"""Figure 2: expected relative revenue vs adversarial resource, per gamma.

The paper's Figure 2 shows, for each gamma in {0, 0.25, 0.5, 0.75, 1}, the ERRev
achieved by the multi-fork attack (several (d, f) configurations) together with
the honest-mining and single-tree baselines, for p in [0, 0.3].

This benchmark regenerates the series (coarser p-grid and gamma set by default;
``REPRO_FULL=1`` switches to the paper's full grid), writes them to CSV, renders
an ASCII panel per gamma, and asserts the qualitative shape of the paper's
results:

* the attack dominates honest mining everywhere;
* already (d, f) = (2, 1) beats the single-tree baseline;
* ERRev grows with p, gamma, d and f;
* (d, f) = (1, 1) coincides with honest mining for gamma <= 0.5.
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig, run_sweep
from repro.attacks import build_selfish_forks_mdp, clear_structure_cache
from repro.analysis import formal_analysis
from repro.core.reporting import ascii_plot, write_csv
from repro.core.sweep import sweep_figure2

from conftest import full_mode, smoke_mode

if full_mode():
    GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0)
elif smoke_mode():
    GAMMAS = (0.0, 0.5)
else:
    GAMMAS = (0.0, 0.5, 1.0)
ATTACKS = (
    (
        AttackParams(depth=1, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=2, max_fork_length=4),
    )
    if full_mode()
    else (
        AttackParams(depth=1, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=1, max_fork_length=4),
    )
)

_SWEEPS = {}


def _run_sweep():
    sweep = sweep_figure2(
        fine_grid=full_mode(),
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        epsilon=1e-3,
    )
    # The engine isolates per-point failures instead of raising; a partial
    # sweep must not be persisted as the reproduction artifact.
    assert not sweep.failures, [
        f"{f.series} p={f.p} gamma={f.gamma}: {f.message}" for f in sweep.failures
    ]
    return sweep


def test_figure2_sweep_runtime(benchmark, results_dir):
    """Time the full Figure 2 sweep and persist the series."""
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    _SWEEPS["figure2"] = sweep
    path = write_csv(
        [point.to_row() for point in sweep.points],
        results_dir / "figure2_errev.csv",
        columns=["p", "gamma", "series", "errev", "seconds", "solver_iterations",
                 "beta_low", "beta_up"],
    )
    print()
    for gamma in GAMMAS:
        print(ascii_plot(sweep, gamma))
        print()
    print(f"series written to {path}")
    assert sweep.points


@pytest.fixture(scope="module")
def sweep():
    if "figure2" not in _SWEEPS:
        _SWEEPS["figure2"] = _run_sweep()
    return _SWEEPS["figure2"]


class TestFigure2Shape:
    def test_honest_baseline_is_diagonal(self, sweep):
        for point in sweep.series("honest"):
            assert point.errev == pytest.approx(point.p)

    def test_attack_dominates_honest_everywhere(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            for point in sweep.series(name):
                assert point.errev >= point.p - 2e-3

    def test_d2f1_beats_single_tree_at_high_p(self, sweep):
        single_tree_name = next(
            name for name in sweep.series_names() if name.startswith("single-tree")
        )
        for gamma in GAMMAS:
            ours = {point.p: point.errev for point in sweep.series("ours(d=2,f=1)", gamma)}
            tree = {point.p: point.errev for point in sweep.series(single_tree_name, gamma)}
            top_p = max(ours)
            assert ours[top_p] >= tree[top_p] - 1e-9

    def test_errev_monotone_in_p(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            for gamma in GAMMAS:
                values = [point.errev for point in sweep.series(name, gamma)]
                assert all(b >= a - 5e-3 for a, b in zip(values, values[1:]))

    def test_errev_monotone_in_gamma(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            by_gamma = {
                gamma: {point.p: point.errev for point in sweep.series(name, gamma)}
                for gamma in GAMMAS
            }
            for p in by_gamma[GAMMAS[0]]:
                values = [by_gamma[gamma][p] for gamma in GAMMAS]
                assert all(b >= a - 5e-3 for a, b in zip(values, values[1:]))

    def test_d1f1_matches_honest_for_low_gamma(self, sweep):
        for gamma in (g for g in GAMMAS if g <= 0.5):
            for point in sweep.series("ours(d=1,f=1)", gamma):
                assert point.errev == pytest.approx(point.p, abs=5e-3)

    def test_depth_two_strictly_better_at_top_p(self, sweep):
        for gamma in GAMMAS:
            d1 = {point.p: point.errev for point in sweep.series("ours(d=1,f=1)", gamma)}
            d2 = {point.p: point.errev for point in sweep.series("ours(d=2,f=1)", gamma)}
            top_p = max(d1)
            assert d2[top_p] > d1[top_p]


class TestEngineAblation:
    """Serial-vs-parallel and cold-vs-warm timings of the sweep engine.

    Results are persisted to ``benchmarks/results/engine_ablation.csv`` and
    ``benchmarks/results/warm_start_ablation.csv`` so that speedups can be
    tracked across commits.
    """

    def _grid(self):
        if smoke_mode():
            p_values = (0.1, 0.2, 0.3)
        else:
            p_values = tuple(round(0.05 * i, 2) for i in range(0, 7))
        return dict(
            p_values=p_values,
            gammas=GAMMAS,
            attack_configs=ATTACKS,
            analysis=AnalysisConfig(epsilon=1e-3),
        )

    def test_serial_vs_parallel_timings(self, results_dir):
        """The parallel engine must match the serial values exactly; record timings."""
        grid = self._grid()
        rows = []
        sweeps = {}
        modes = [
            ("serial-nocache", dict(workers=1, use_structure_cache=False)),
            ("serial-cached", dict(workers=1, use_structure_cache=True)),
            ("serial-cached-warm", dict(workers=1, use_structure_cache=True,
                                        warm_start_across_points=True)),
            ("parallel4-cached", dict(workers=4, use_structure_cache=True)),
        ]
        for label, engine_kwargs in modes:
            clear_structure_cache()
            start = time.perf_counter()
            sweep = run_sweep(SweepConfig(**grid, **engine_kwargs))
            seconds = time.perf_counter() - start
            sweeps[label] = sweep
            rows.append(
                {
                    "mode": label,
                    "workers": engine_kwargs.get("workers", 1),
                    "structure_cache": engine_kwargs.get("use_structure_cache", True),
                    "warm_start_across_points": engine_kwargs.get(
                        "warm_start_across_points", False
                    ),
                    "wall_seconds": round(seconds, 4),
                    "compute_seconds": round(sweep.total_compute_seconds, 4),
                    "solver_iterations": sweep.total_solver_iterations,
                    "points": len(sweep.points),
                }
            )
            assert not sweep.failures
        path = write_csv(
            rows,
            results_dir / "engine_ablation.csv",
            columns=["mode", "workers", "structure_cache", "warm_start_across_points",
                     "wall_seconds", "compute_seconds", "solver_iterations", "points"],
        )
        print(f"\nengine ablation written to {path}")
        for row in rows:
            print(
                f"  {row['mode']:>22}: {row['wall_seconds']:7.2f}s wall, "
                f"{row['solver_iterations']} solver iterations"
            )
        # Parallel execution must reproduce the serial values bit for bit.
        serial = sweeps["serial-cached"].points
        parallel = sweeps["parallel4-cached"].points
        assert [(pt.p, pt.gamma, pt.series, pt.errev) for pt in serial] == [
            (pt.p, pt.gamma, pt.series, pt.errev) for pt in parallel
        ]
        # Warm-started chains must agree with independent points to epsilon.
        warm = sweeps["serial-cached-warm"].points
        for cold_point, warm_point in zip(serial, warm):
            assert warm_point.errev == pytest.approx(cold_point.errev, abs=2e-3)

    def test_cold_vs_warm_solver_sweeps(self, results_dir):
        """Warm-started Algorithm 1 needs fewer solver sweeps; record the counts."""
        attack = AttackParams(depth=2, forks=1, max_fork_length=4)
        from repro import ProtocolParams

        model = build_selfish_forks_mdp(ProtocolParams(p=0.3, gamma=0.5), attack)
        rows = []
        counts = {}
        for solver in ("policy_iteration", "value_iteration"):
            for warm in (False, True):
                config = AnalysisConfig(
                    epsilon=1e-3, solver=solver, warm_start=warm, solver_tolerance=1e-7
                )
                start = time.perf_counter()
                result = formal_analysis(model.mdp, config)
                seconds = time.perf_counter() - start
                counts[(solver, warm)] = (result.total_solver_iterations, result)
                rows.append(
                    {
                        "solver": solver,
                        "warm_start": warm,
                        "solver_iterations": result.total_solver_iterations,
                        "binary_search_iterations": result.num_iterations,
                        "errev_lower_bound": result.errev_lower_bound,
                        "wall_seconds": round(seconds, 4),
                    }
                )
        path = write_csv(
            rows,
            results_dir / "warm_start_ablation.csv",
            columns=["solver", "warm_start", "solver_iterations",
                     "binary_search_iterations", "errev_lower_bound", "wall_seconds"],
        )
        print(f"\nwarm-start ablation written to {path}")
        for solver in ("policy_iteration", "value_iteration"):
            cold_iters, cold = counts[(solver, False)]
            warm_iters, warm = counts[(solver, True)]
            print(f"  {solver}: cold={cold_iters} sweeps, warm={warm_iters} sweeps")
            # Same epsilon-tight bounds, measurably fewer sweeps when warm.
            assert warm.errev_lower_bound == pytest.approx(
                cold.errev_lower_bound, abs=cold.epsilon
            )
            assert warm_iters < cold_iters
