"""Figure 2: expected relative revenue vs adversarial resource, per gamma.

The paper's Figure 2 shows, for each gamma in {0, 0.25, 0.5, 0.75, 1}, the ERRev
achieved by the multi-fork attack (several (d, f) configurations) together with
the honest-mining and single-tree baselines, for p in [0, 0.3].

This benchmark regenerates the series (coarser p-grid and gamma set by default;
``REPRO_FULL=1`` switches to the paper's full grid), writes them to CSV, renders
an ASCII panel per gamma, and asserts the qualitative shape of the paper's
results:

* the attack dominates honest mining everywhere;
* already (d, f) = (2, 1) beats the single-tree baseline;
* ERRev grows with p, gamma, d and f;
* (d, f) = (1, 1) coincides with honest mining for gamma <= 0.5.
"""

from __future__ import annotations

import pytest

from repro import AttackParams
from repro.core.reporting import ascii_plot, write_csv
from repro.core.sweep import sweep_figure2

from conftest import full_mode

GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0) if full_mode() else (0.0, 0.5, 1.0)
ATTACKS = (
    (
        AttackParams(depth=1, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=2, max_fork_length=4),
    )
    if full_mode()
    else (
        AttackParams(depth=1, forks=1, max_fork_length=4),
        AttackParams(depth=2, forks=1, max_fork_length=4),
    )
)

_SWEEPS = {}


def _run_sweep():
    return sweep_figure2(
        fine_grid=full_mode(),
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        epsilon=1e-3,
    )


def test_figure2_sweep_runtime(benchmark, results_dir):
    """Time the full Figure 2 sweep and persist the series."""
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    _SWEEPS["figure2"] = sweep
    path = write_csv([point.to_row() for point in sweep.points], results_dir / "figure2_errev.csv")
    print()
    for gamma in GAMMAS:
        print(ascii_plot(sweep, gamma))
        print()
    print(f"series written to {path}")
    assert sweep.points


@pytest.fixture(scope="module")
def sweep():
    if "figure2" not in _SWEEPS:
        _SWEEPS["figure2"] = _run_sweep()
    return _SWEEPS["figure2"]


class TestFigure2Shape:
    def test_honest_baseline_is_diagonal(self, sweep):
        for point in sweep.series("honest"):
            assert point.errev == pytest.approx(point.p)

    def test_attack_dominates_honest_everywhere(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            for point in sweep.series(name):
                assert point.errev >= point.p - 2e-3

    def test_d2f1_beats_single_tree_at_high_p(self, sweep):
        single_tree_name = next(
            name for name in sweep.series_names() if name.startswith("single-tree")
        )
        for gamma in GAMMAS:
            ours = {point.p: point.errev for point in sweep.series("ours(d=2,f=1)", gamma)}
            tree = {point.p: point.errev for point in sweep.series(single_tree_name, gamma)}
            top_p = max(ours)
            assert ours[top_p] >= tree[top_p] - 1e-9

    def test_errev_monotone_in_p(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            for gamma in GAMMAS:
                values = [point.errev for point in sweep.series(name, gamma)]
                assert all(b >= a - 5e-3 for a, b in zip(values, values[1:]))

    def test_errev_monotone_in_gamma(self, sweep):
        for name in sweep.series_names():
            if not name.startswith("ours"):
                continue
            by_gamma = {
                gamma: {point.p: point.errev for point in sweep.series(name, gamma)}
                for gamma in GAMMAS
            }
            for p in by_gamma[GAMMAS[0]]:
                values = [by_gamma[gamma][p] for gamma in GAMMAS]
                assert all(b >= a - 5e-3 for a, b in zip(values, values[1:]))

    def test_d1f1_matches_honest_for_low_gamma(self, sweep):
        for gamma in (g for g in GAMMAS if g <= 0.5):
            for point in sweep.series("ours(d=1,f=1)", gamma):
                assert point.errev == pytest.approx(point.p, abs=5e-3)

    def test_depth_two_strictly_better_at_top_p(self, sweep):
        for gamma in GAMMAS:
            d1 = {point.p: point.errev for point in sweep.series("ours(d=1,f=1)", gamma)}
            d2 = {point.p: point.errev for point in sweep.series("ours(d=2,f=1)", gamma)}
            top_p = max(d1)
            assert d2[top_p] > d1[top_p]
