"""Ablation: shared-memory results plane and portfolio history seeding.

Two return/scheduling mechanisms land with the results plane and are measured
against their PR 3/4 baselines on the same grid:

* **Results plane.**  A pooled sweep either pickles every ``PointOutcome``
  through the pool's result queue (``use_results_plane=False``, the old
  behaviour) or publishes packed records into the shared-memory ring the
  parent drains.  Both sweeps must produce identical points; the plane-path
  run must additionally report **zero pickled result payloads** in
  ``SweepResult.metadata["results_plane"]``.
* **Portfolio history seeding.**  A portfolio sweep's workers each keep a
  sliding window of race winners and skip rival launches once one backend
  dominates; ``metadata["portfolio"]`` records the races run and the launches
  avoided.

Timings and counters land in ``benchmarks/results/results_plane_ablation.csv``.
"""

from __future__ import annotations

import time

import pytest

from repro import AnalysisConfig, AttackParams, SweepConfig, run_sweep
from repro.core.reporting import render_table, write_csv

from conftest import smoke_mode

WORKERS = 4
EPSILON = 1e-3
if smoke_mode():
    P_VALUES = (0.1, 0.3)
    GAMMAS = (0.5,)
else:
    P_VALUES = tuple(round(0.05 * i, 2) for i in range(0, 7))
    GAMMAS = (0.0, 0.5)
ATTACKS = (
    AttackParams(depth=1, forks=1, max_fork_length=4),
    AttackParams(depth=2, forks=1, max_fork_length=4),
)

COLUMNS = [
    "variant",
    "workers",
    "wall_seconds",
    "points",
    "via_plane",
    "via_pickle",
    "portfolio_races",
    "portfolio_launches_avoided",
    "errev_checksum",
]

#: (label, use_results_plane, solver) sweep variants of the ablation.
SWEEP_VARIANTS = [
    ("pickled-return-path", False, "policy_iteration"),
    ("results-plane", True, "policy_iteration"),
    ("results-plane-portfolio-seeded", True, "portfolio"),
]

_ROWS: list = []
_SWEEPS: dict = {}


def _sweep_config(use_plane: bool, solver: str) -> SweepConfig:
    return SweepConfig(
        p_values=P_VALUES,
        gammas=GAMMAS,
        attack_configs=ATTACKS,
        analysis=AnalysisConfig(epsilon=EPSILON, solver=solver),
        workers=WORKERS,
        use_results_plane=use_plane,
    )


def _run_variant(label: str, use_plane: bool, solver: str) -> dict:
    start = time.perf_counter()
    sweep = run_sweep(_sweep_config(use_plane, solver))
    seconds = time.perf_counter() - start
    assert not sweep.failures, [f.message for f in sweep.failures]
    plane_stats = sweep.metadata.get("results_plane", {})
    if use_plane:
        assert plane_stats.get("enabled"), "the plane must be active in plane variants"
        assert plane_stats.get("via_pickle") == 0, "plane variants must not pickle outcomes"
    portfolio = sweep.metadata.get("portfolio", {})
    _SWEEPS[label] = sweep
    return {
        "variant": label,
        "workers": WORKERS,
        "wall_seconds": seconds,
        "points": len(sweep.points),
        "via_plane": plane_stats.get("via_plane", 0),
        "via_pickle": plane_stats.get("via_pickle", 0),
        "portfolio_races": portfolio.get("races", ""),
        "portfolio_launches_avoided": portfolio.get("launches_avoided", ""),
        "errev_checksum": round(sum(point.errev for point in sweep.points), 9),
    }


@pytest.mark.parametrize("label,use_plane,solver", SWEEP_VARIANTS)
def test_sweep_variant(benchmark, label, use_plane, solver):
    """Time one pooled sweep per return-path / seeding variant."""
    row = benchmark.pedantic(
        _run_variant, args=(label, use_plane, solver), rounds=1, iterations=1
    )
    _ROWS.append(row)


def test_variants_agree_and_persist(results_dir):
    """Both return paths must compute identical points; persist the ablation."""
    done = {row["variant"] for row in _ROWS}
    for label, use_plane, solver in SWEEP_VARIANTS:
        if label not in done:
            _ROWS.append(_run_variant(label, use_plane, solver))
    pickled = _SWEEPS["pickled-return-path"]
    plane = _SWEEPS["results-plane"]
    assert [(p.p, p.gamma, p.series, p.errev) for p in pickled.points] == [
        (p.p, p.gamma, p.series, p.errev) for p in plane.points
    ]
    # The portfolio variant reproduces the same certified bounds within epsilon.
    seeded = _SWEEPS["results-plane-portfolio-seeded"]
    for exact, raced in zip(plane.points, seeded.points):
        assert (exact.p, exact.gamma, exact.series) == (raced.p, raced.gamma, raced.series)
        assert abs(exact.errev - raced.errev) < 2 * EPSILON
    rows = sorted(_ROWS, key=lambda row: row["variant"])
    path = write_csv(rows, results_dir / "results_plane_ablation.csv", columns=COLUMNS)
    print()
    print(render_table(rows))
    print(f"ablation written to {path}")
