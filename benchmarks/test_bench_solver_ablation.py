"""Ablation: mean-payoff solver backends and ratio-optimisation schemes.

DESIGN.md calls out two design choices of the formal analysis that the paper
delegates to Storm: (i) which mean-payoff solver to use inside the binary
search, and (ii) whether to use the paper's bisection (Algorithm 1) or a
Dinkelbach ratio iteration.  This benchmark times all variants on the same
model and checks they agree on the computed ERRev.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.analysis import dinkelbach_analysis, formal_analysis
from repro.attacks import build_selfish_forks_mdp
from repro.mdp import solve_mean_payoff

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
ATTACK = AttackParams(depth=2, forks=1, max_fork_length=4)
EPSILON = 1e-3

_VALUES: dict[str, float] = {}


@pytest.fixture(scope="module")
def model():
    return build_selfish_forks_mdp(PROTOCOL, ATTACK)


@pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "linear_program"])
def test_ablation_algorithm1_solver_backend(benchmark, model, solver):
    """Algorithm 1 with each mean-payoff solver backend."""
    result = benchmark.pedantic(
        formal_analysis,
        args=(model.mdp, AnalysisConfig(epsilon=EPSILON, solver=solver)),
        rounds=1,
        iterations=1,
    )
    _VALUES[f"algorithm1/{solver}"] = result.strategy_errev


def test_ablation_dinkelbach(benchmark, model):
    """Dinkelbach ratio iteration instead of bisection."""
    result = benchmark.pedantic(
        dinkelbach_analysis,
        args=(model.mdp, AnalysisConfig(epsilon=EPSILON)),
        rounds=1,
        iterations=1,
    )
    _VALUES["dinkelbach/policy_iteration"] = result.errev


@pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration", "linear_program"])
def test_ablation_single_mean_payoff_solve(benchmark, model, solver):
    """One mean-payoff solve (beta = 0.35), the inner loop of the analysis."""
    from repro.analysis.rewards import beta_reward_weights

    solution = benchmark.pedantic(
        solve_mean_payoff,
        args=(model.mdp, beta_reward_weights(0.35)),
        kwargs={"solver": solver},
        rounds=1,
        iterations=1,
    )
    assert solution.gain == pytest.approx(_reference_gain(model), abs=1e-6)


def _reference_gain(model):
    from repro.analysis.rewards import beta_reward_weights

    if "_gain" not in _VALUES:
        _VALUES["_gain"] = solve_mean_payoff(
            model.mdp, beta_reward_weights(0.35), solver="policy_iteration"
        ).gain
    return _VALUES["_gain"]


def test_ablation_all_variants_agree(benchmark):
    """Every analysis variant must report the same optimal ERRev."""
    values = benchmark.pedantic(
        lambda: {key: value for key, value in _VALUES.items() if not key.startswith("_")},
        rounds=1,
        iterations=1,
    )
    assert len(values) >= 4
    reference = values["algorithm1/policy_iteration"]
    for key, value in values.items():
        assert value == pytest.approx(reference, abs=5e-3), key
