"""Setuptools shim.

The project is configured in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e .``) work in offline environments
where the ``wheel`` package is unavailable and PEP 660 editable wheels cannot
be built.
"""

from setuptools import setup

setup()
