#!/usr/bin/env python3
"""Link check over the documentation surface (README.md, docs/, PAPER.md ...).

Scans every tracked markdown file for inline links and verifies that

* relative links point at files (or directories) that exist in the repo, and
* intra-document anchors (``file.md#section`` or ``#section``) match a heading
  of the target document (GitHub slug rules: lowercase, spaces to dashes,
  punctuation dropped).

External ``http(s)``/``mailto`` links are counted but not fetched, so the
check runs offline and cannot flake in CI.  Exits non-zero listing every
broken link.  Used by the CI docs job and by ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose links are checked (directories are scanned for *.md).
DOC_PATHS = ("README.md", "PAPER.md", "ROADMAP.md", "CHANGES.md", "docs")

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """Approximate GitHub's heading-to-anchor slug rules."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" ", "-", text)


def _anchors_of(path: Path) -> set:
    return {_slugify(match) for match in _HEADING.findall(path.read_text(encoding="utf-8"))}


def documentation_files() -> List[Path]:
    """Every markdown file covered by the check, relative to the repo root."""
    files: List[Path] = []
    for entry in DOC_PATHS:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_links() -> Tuple[List[str], int, int]:
    """Return (broken link descriptions, local links checked, external skipped)."""
    broken: List[str] = []
    local = external = 0
    for doc in documentation_files():
        text = doc.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                external += 1
                continue
            local += 1
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve() if path_part else doc
            where = doc.relative_to(REPO_ROOT)
            if path_part and not resolved.exists():
                try:
                    shown = str(resolved.relative_to(REPO_ROOT))
                except ValueError:  # ../-chain escaping the repo root
                    shown = str(resolved)
                broken.append(f"{where}: {target} -> {shown} missing")
                continue
            if anchor and resolved.suffix == ".md":
                if _slugify(anchor) not in _anchors_of(resolved):
                    broken.append(f"{where}: {target} -> no heading for #{anchor}")
    return broken, local, external


def main() -> int:
    """Run the check and report; non-zero exit on any broken link."""
    broken, local, external = check_links()
    print(
        f"checked {local} local link(s) across {len(documentation_files())} file(s) "
        f"({external} external link(s) skipped)"
    )
    for problem in broken:
        print(f"BROKEN  {problem}", file=sys.stderr)
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
