#!/usr/bin/env python3
"""Inspect the optimal selfish-mining strategy computed by the formal analysis.

Solves the d = 2, f = 1 model, then prints what the optimal strategy does in
the most frequently visited decision states: when it withholds, when it races a
freshly found honest block, and when it overrides the public chain outright.

Run with:  python examples/strategy_inspection.py
"""

from __future__ import annotations

from repro import AnalysisConfig, AttackParams, ProtocolParams, build_selfish_forks_mdp
from repro.analysis import formal_analysis
from repro.attacks.fork_state import TYPE_ADVERSARY, TYPE_HONEST, TYPE_MINING
from repro.mdp import induced_markov_chain


TYPE_NAMES = {TYPE_MINING: "mining", TYPE_HONEST: "honest-block-pending", TYPE_ADVERSARY: "adversary-mined"}


def describe_state(label) -> str:
    c_matrix, owners, state_type = label
    forks = ", ".join("/".join(str(length) for length in row) for row in c_matrix)
    owner_text = "".join("A" if owner else "H" for owner in owners) or "-"
    return f"forks=[{forks}] owners={owner_text} type={TYPE_NAMES[state_type]}"


def main() -> None:
    protocol = ProtocolParams(p=0.3, gamma=0.5)
    attack = AttackParams(depth=2, forks=1, max_fork_length=4)
    model = build_selfish_forks_mdp(protocol, attack)
    result = formal_analysis(model.mdp, AnalysisConfig(epsilon=1e-4))
    strategy = result.strategy

    print(model.describe())
    print(f"optimal ERRev: {result.strategy_errev:.4f} (honest mining: {protocol.p})")
    print()

    # Rank decision states by their stationary probability under the optimal
    # strategy so the inspection starts with what actually happens in the long run.
    chain = induced_markov_chain(model.mdp, strategy)
    stationary = chain.stationary_distribution()
    decision_states = [
        state
        for state in range(model.mdp.num_states)
        if model.mdp.num_actions_of(state) > 1
    ]
    decision_states.sort(key=lambda state: -stationary[state])

    print("most visited decision states and the optimal action:")
    releases = 0
    for state in decision_states[:15]:
        label = model.mdp.state_labels[state]
        action = strategy.action(state)
        if action[0] == "release":
            releases += 1
            _, depth, fork, blocks = action
            action_text = f"release {blocks} block(s) of fork (depth={depth}, slot={fork})"
        else:
            action_text = "keep mining (withhold)"
        print(f"  pi={stationary[state]:.4f}  {describe_state(label)}")
        print(f"           -> {action_text}")

    total_releases = sum(
        1 for state in decision_states if strategy.action(state)[0] == "release"
    )
    print()
    print(
        f"the optimal strategy releases in {total_releases} of {len(decision_states)} "
        f"decision states ({releases} among the top 15 most visited)"
    )


if __name__ == "__main__":
    main()
