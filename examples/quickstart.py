#!/usr/bin/env python3
"""Quickstart: analyse one selfish-mining configuration end to end.

Builds the multi-fork selfish-mining MDP for the paper's headline parameter
point (p = 0.3, gamma = 0.5, d = 2, f = 1, l = 4), runs the fully automated
formal analysis (Algorithm 1) and prints the epsilon-tight lower bound on the
optimal expected relative revenue together with the honest and single-tree
baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalysisConfig,
    AttackParams,
    ProtocolParams,
    SelfishMiningAnalyzer,
    honest_errev,
    single_tree_errev,
)


def main() -> None:
    protocol = ProtocolParams(p=0.3, gamma=0.5)
    attack = AttackParams(depth=2, forks=1, max_fork_length=4)
    config = AnalysisConfig(epsilon=1e-3)

    print(f"protocol: p={protocol.p}, gamma={protocol.gamma}")
    print(f"attack:   d={attack.depth}, f={attack.forks}, l={attack.max_fork_length}")
    print(f"analysis: epsilon={config.epsilon}, solver={config.solver}")
    print()

    analyzer = SelfishMiningAnalyzer(protocol, attack, config)
    result = analyzer.run()

    print(f"MDP size: {result.num_states} states, {result.num_transitions} transitions")
    print(f"build time: {result.build_seconds:.2f}s, analysis time: {result.analysis_seconds:.2f}s")
    print(f"binary search iterations: {result.formal.num_iterations}")
    print()
    print(f"ERRev lower bound (Algorithm 1):   {result.errev_lower_bound:.4f}")
    print(f"ERRev achieved by the strategy:    {result.strategy_errev:.4f}")
    print(f"honest mining baseline:            {honest_errev(protocol):.4f}")
    print(f"single-tree baseline (f=5, l=4):   {single_tree_errev(protocol):.4f}")
    print()
    print(f"chain quality under the attack:    {result.chain_quality:.4f}")
    print(f"advantage over honest mining:      {result.advantage_over_honest:+.4f}")


if __name__ == "__main__":
    main()
