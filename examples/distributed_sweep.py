#!/usr/bin/env python3
"""Distributed sweep on loopback: one coordinator, two worker processes.

Demonstrates the multi-host sweep fabric (:mod:`repro.core.distributed`) end to
end without needing a second machine: two ``repro worker`` processes are
spawned locally and connect to a coordinator listening on 127.0.0.1.  The
coordinator streams the ``(p, gamma, attack)`` grid units over TCP, ships every
model skeleton as the same flat buffers the shared-memory plane uses (so the
workers perform zero explorations), and merges the streamed results into the
ordinary :class:`~repro.core.results.SweepResult` -- bit-for-bit identical to a
serial run, which the script verifies at the end.

Run with:  python examples/distributed_sweep.py     (finishes in well under 30 s)

Across real hosts the only difference is addressing: start the coordinator
with ``repro sweep --distributed --listen 0.0.0.0:7355`` and point each
worker's ``--connect`` at the coordinator's routable address.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from pathlib import Path

from repro.config import AnalysisConfig, AttackParams
from repro.core.sweep import SweepConfig, run_sweep

SRC = Path(__file__).resolve().parents[1] / "src"


def free_port() -> int:
    """Pick an ephemeral loopback port for the coordinator to listen on."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def spawn_worker(port: int) -> subprocess.Popen:
    """Start one `repro worker` process connecting to the loopback coordinator."""
    env = dict(os.environ, PYTHONPATH=str(SRC) + os.pathsep + os.environ.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--connect-retry-seconds",
            "30",
            "--quiet",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )


def main() -> None:
    grid = dict(
        p_values=(0.0, 0.05, 0.1, 0.15, 0.2),
        gammas=(0.5,),
        attack_configs=(
            AttackParams(depth=1, forks=1, max_fork_length=4),
            AttackParams(depth=2, forks=1, max_fork_length=4),
        ),
        analysis=AnalysisConfig(epsilon=1e-2),
    )

    port = free_port()
    print(f"starting 2 workers against 127.0.0.1:{port}")
    workers = [spawn_worker(port) for _ in range(2)]

    config = SweepConfig(**grid, coordinator=f"127.0.0.1:{port}", distributed_workers=2)
    result = run_sweep(config, progress=lambda message: print(f"  {message}"))

    for worker in workers:
        output, _ = worker.communicate(timeout=30)
        print(f"worker exited {worker.returncode}: {output.strip()}")

    fabric = result.metadata["distributed"]
    print()
    print(f"{fabric['units']} units over {len(fabric['workers'])} workers")
    for name, stats in fabric["workers"].items():
        print(
            f"  {name}: {stats['units']} units, builds={stats['builds']} "
            f"(0 = every skeleton arrived over the wire), attaches={stats['attaches']}"
        )

    print()
    print("verifying against a serial in-process sweep...")
    serial = run_sweep(SweepConfig(**grid))
    mismatches = sum(
        1
        for ours, theirs in zip(serial.points, result.points)
        if ours.errev != theirs.errev
    )
    assert len(serial.points) == len(result.points) and mismatches == 0
    print(f"all {len(result.points)} points agree bit-for-bit with the serial sweep")


if __name__ == "__main__":
    main()
