#!/usr/bin/env python3
"""Reproduce one panel of the paper's Figure 2 as an ASCII plot and a CSV file.

Sweeps the adversarial resource p for a fixed switching probability gamma and
plots the expected relative revenue of the multi-fork attack (d = 1 and d = 2)
against the honest-mining and single-tree baselines.

Run with:  python examples/parameter_sweep.py [gamma] [workers]

Passing a worker count > 1 fans the attack grid out over a process pool; the
computed series are identical to the serial run, only faster.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import AnalysisConfig, AttackParams, ascii_plot, write_csv
from repro.core.sweep import SweepConfig, run_sweep


def main() -> None:
    gamma = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    config = SweepConfig(
        p_values=tuple(round(0.05 * index, 2) for index in range(0, 7)),
        gammas=(gamma,),
        attack_configs=(
            AttackParams(depth=1, forks=1, max_fork_length=4),
            AttackParams(depth=2, forks=1, max_fork_length=4),
        ),
        analysis=AnalysisConfig(epsilon=1e-3),
        workers=workers,
        warm_start_across_points=True,
    )

    print(f"sweeping p in {list(config.p_values)} at gamma={gamma} ...")
    sweep = run_sweep(config, progress=lambda message: print("  " + message))
    for failure in sweep.failures:
        print(f"  FAILED p={failure.p} gamma={failure.gamma} {failure.series}: {failure.message}")
    if sweep.failures:
        sys.exit(1)

    print()
    print(ascii_plot(sweep, gamma))

    output = Path(__file__).resolve().parent / f"figure2_gamma{gamma:g}.csv"
    write_csv([point.to_row() for point in sweep.points], output)
    print(f"\nseries written to {output}")


if __name__ == "__main__":
    main()
