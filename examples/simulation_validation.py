#!/usr/bin/env python3
"""Validate the formal analysis with the discrete-time blockchain simulator.

The strategy computed by Algorithm 1 is replayed against honest miners in a
simulator that uses concrete block objects and independent revenue accounting.
The Monte-Carlo estimate of the expected relative revenue must match the value
computed from the MDP's stationary distribution -- this is the library's
end-to-end self-check, and also demonstrates how to plug custom policies into
the simulator.

Run with:  python examples/simulation_validation.py
"""

from __future__ import annotations

from repro import AnalysisConfig, AttackParams, ProtocolParams, build_selfish_forks_mdp
from repro.analysis import formal_analysis
from repro.attacks.policies import GreedyLeadPolicy, HonestPolicy, SelfishForksPolicy
from repro.chain import SelfishMiningSimulator

STEPS = 150_000


def simulate(protocol, attack, policy, seed=1):
    simulator = SelfishMiningSimulator(protocol, attack, policy, seed=seed)
    return simulator.run(STEPS)


def main() -> None:
    protocol = ProtocolParams(p=0.3, gamma=0.5)
    attack = AttackParams(depth=2, forks=1, max_fork_length=4)

    model = build_selfish_forks_mdp(protocol, attack)
    analysis = formal_analysis(model.mdp, AnalysisConfig(epsilon=1e-3))
    print(f"formal analysis: optimal ERRev = {analysis.strategy_errev:.4f}")
    print(f"simulating {STEPS} block events per policy ...\n")

    policies = [
        ("optimal (from Algorithm 1)", SelfishForksPolicy(analysis.strategy), analysis.strategy_errev),
        ("greedy-lead heuristic", GreedyLeadPolicy(race_on_tie=True), None),
        ("honest (never publish withheld forks)", HonestPolicy(), 0.0),
    ]

    header = f"{'policy':<40} {'simulated':>10} {'analysis':>10} {'accepted':>9} {'orphans':>8}"
    print(header)
    print("-" * len(header))
    for name, policy, expected in policies:
        result = simulate(protocol, attack, policy)
        expected_text = f"{expected:.4f}" if expected is not None else "-"
        print(
            f"{name:<40} {result.relative_revenue:>10.4f} {expected_text:>10} "
            f"{result.releases_accepted:>9} {result.orphaned_blocks:>8}"
        )

    print()
    print(
        "the simulated ERRev of the optimal policy should match the analysis value "
        "up to Monte-Carlo noise (~0.01), and the honest policy finalises no "
        "adversarial blocks because it never publishes its withheld forks."
    )


if __name__ == "__main__":
    main()
