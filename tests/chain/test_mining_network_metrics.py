"""Tests of the mining model, tie-breaker and chain-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain import MiningModel, TieBreaker, chain_quality, relative_revenue, wilson_interval
from repro.chain.metrics import quality_report, satisfies_chain_quality
from repro.exceptions import SimulationError


class TestMiningModel:
    def test_probabilities_match_paper_formula(self):
        model = MiningModel(p=0.3)
        per_target, honest = model.probabilities(4)
        denominator = 0.7 + 0.3 * 4
        assert per_target == pytest.approx(0.3 / denominator)
        assert honest == pytest.approx(0.7 / denominator)

    def test_probabilities_sum_to_one(self):
        model = MiningModel(p=0.3)
        for sigma in (0, 1, 3, 8):
            per_target, honest = model.probabilities(sigma)
            assert per_target * sigma + honest == pytest.approx(1.0)

    def test_zero_targets_all_honest(self):
        model = MiningModel(p=0.3)
        per_target, honest = model.probabilities(0)
        assert per_target == 0.0
        assert honest == pytest.approx(1.0)

    def test_degenerate_case_rejected(self):
        model = MiningModel(p=1.0)
        with pytest.raises(SimulationError):
            model.probabilities(0)

    def test_expected_adversarial_share_increases_with_targets(self):
        model = MiningModel(p=0.3)
        shares = [model.expected_adversarial_share(sigma) for sigma in (1, 2, 4, 8)]
        assert shares == sorted(shares)
        assert shares[0] == pytest.approx(0.3)

    def test_sampling_frequencies_match_probabilities(self):
        model = MiningModel(p=0.3, rng=np.random.default_rng(42))
        sigma = 3
        draws = [model.sample(sigma) for _ in range(20_000)]
        adversarial = sum(1 for event in draws if event.is_adversarial)
        expected = model.expected_adversarial_share(sigma)
        assert adversarial / len(draws) == pytest.approx(expected, abs=0.02)

    def test_sample_target_indices_in_range(self):
        model = MiningModel(p=0.5, rng=np.random.default_rng(1))
        for _ in range(200):
            event = model.sample(3)
            if event.is_adversarial:
                assert 0 <= event.target_index < 3
            else:
                assert event.target_index is None


class TestTieBreaker:
    def test_longer_chain_always_adopted(self):
        breaker = TieBreaker(gamma=0.0, rng=np.random.default_rng(0))
        assert breaker.adopts_adversarial_chain(3, 2)

    def test_shorter_chain_never_adopted(self):
        breaker = TieBreaker(gamma=1.0, rng=np.random.default_rng(0))
        assert not breaker.adopts_adversarial_chain(1, 2)

    def test_tie_follows_gamma_frequency(self):
        breaker = TieBreaker(gamma=0.25, rng=np.random.default_rng(3))
        adopted = sum(breaker.adopts_adversarial_chain(2, 2) for _ in range(20_000))
        assert adopted / 20_000 == pytest.approx(0.25, abs=0.02)

    def test_race_probability_exposed(self):
        assert TieBreaker(gamma=0.7).race_probability() == 0.7


class TestMetrics:
    def test_relative_revenue_and_chain_quality_sum_to_one(self):
        owners = ["honest", "adversary", "adversary", "honest"]
        assert relative_revenue(owners) + chain_quality(owners) == pytest.approx(1.0)
        assert relative_revenue(owners) == pytest.approx(0.5)

    def test_empty_sequence_conventions(self):
        assert relative_revenue([]) == 0.0
        assert chain_quality([]) == 1.0

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_interval_degenerate_cases(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_wilson_interval_narrows_with_more_samples(self):
        small = wilson_interval(30, 100)
        large = wilson_interval(300, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_quality_report_counts(self):
        report = quality_report(["adversary", "honest", "adversary"])
        assert report.adversarial_blocks == 2
        assert report.honest_blocks == 1
        assert report.total_blocks == 3
        assert report.relative_revenue == pytest.approx(2 / 3)
        assert report.confidence_low < report.relative_revenue < report.confidence_high

    def test_satisfies_chain_quality_window_check(self):
        owners = ["honest"] * 5 + ["adversary"] * 5
        assert satisfies_chain_quality(owners, mu=0.0, segment_length=5)
        assert not satisfies_chain_quality(owners, mu=0.5, segment_length=5)
        assert satisfies_chain_quality(owners, mu=0.5, segment_length=10)

    def test_satisfies_chain_quality_short_sequences(self):
        assert satisfies_chain_quality([], mu=0.9, segment_length=5)
        assert satisfies_chain_quality(["honest"], mu=0.9, segment_length=5)
        with pytest.raises(ValueError):
            satisfies_chain_quality(["honest"], mu=0.5, segment_length=0)
