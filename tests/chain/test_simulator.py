"""Tests of the discrete-time selfish-mining simulator.

The most important test validates the whole pipeline end to end: the strategy
computed by the formal analysis, replayed in the simulator (whose revenue
accounting is independent of the MDP's reward bookkeeping), must reproduce the
ERRev computed from the stationary distribution up to Monte-Carlo noise.
"""

from __future__ import annotations

import pytest

from repro.config import AttackParams, ProtocolParams
from repro.attacks import build_selfish_forks_mdp, honest_errev
from repro.attacks.policies import GreedyLeadPolicy, HonestPolicy, SelfishForksPolicy
from repro.chain import SelfishMiningSimulator
from repro.exceptions import SimulationError


PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
ATTACK = AttackParams(depth=2, forks=1, max_fork_length=4)


class TestSimulatorBasics:
    def test_honest_policy_matches_resource_fraction(self):
        simulator = SelfishMiningSimulator(PROTOCOL, ATTACK, HonestPolicy(), seed=11)
        result = simulator.run(20_000)
        assert result.relative_revenue == pytest.approx(0.0, abs=1e-9)
        # The honest policy never publishes, so all adversarial blocks stay
        # private and the chain is fully honest.
        assert result.releases_accepted == 0
        assert result.orphaned_blocks == 0

    def test_run_requires_positive_steps(self):
        simulator = SelfishMiningSimulator(PROTOCOL, ATTACK, HonestPolicy())
        with pytest.raises(SimulationError):
            simulator.run(0)

    def test_results_are_reproducible_with_same_seed(self):
        first = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=5).run(20_000)
        second = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=5).run(20_000)
        assert first.relative_revenue == second.relative_revenue
        assert first.releases_accepted == second.releases_accepted

    def test_different_seeds_differ(self):
        first = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=1).run(5_000)
        second = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=2).run(5_000)
        assert first.relative_revenue != second.relative_revenue

    def test_greedy_policy_gets_adversarial_blocks_on_chain(self):
        result = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=3).run(30_000)
        assert result.relative_revenue > 0.1
        assert result.releases_accepted > 0

    def test_policy_name_recorded(self):
        result = SelfishMiningSimulator(PROTOCOL, ATTACK, HonestPolicy(), seed=0).run(1_000)
        assert result.policy_name == "honest"

    def test_report_counts_are_consistent(self):
        result = SelfishMiningSimulator(PROTOCOL, ATTACK, GreedyLeadPolicy(), seed=9).run(10_000)
        report = result.report
        assert report.total_blocks == report.adversarial_blocks + report.honest_blocks
        assert 0.0 <= report.relative_revenue <= 1.0


class TestSimulationMatchesAnalysis:
    @pytest.mark.parametrize(
        "protocol, attack",
        [
            (ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)),
            (ProtocolParams(p=0.3, gamma=1.0), AttackParams(depth=1, forks=1, max_fork_length=4)),
            (ProtocolParams(p=0.2, gamma=0.0), AttackParams(depth=2, forks=2, max_fork_length=3)),
        ],
    )
    def test_optimal_strategy_simulated_errev_matches_mdp(self, protocol, attack):
        from repro.analysis import formal_analysis
        from repro.config import AnalysisConfig

        model = build_selfish_forks_mdp(protocol, attack)
        analysis = formal_analysis(model.mdp, AnalysisConfig(epsilon=1e-3))
        policy = SelfishForksPolicy(analysis.strategy)
        simulator = SelfishMiningSimulator(protocol, attack, policy, seed=17)
        result = simulator.run(60_000)
        assert policy.unknown_states == 0
        assert result.relative_revenue == pytest.approx(analysis.strategy_errev, abs=0.03)

    def test_optimal_strategy_beats_honest_in_simulation(self):
        from repro.analysis import formal_analysis
        from repro.config import AnalysisConfig

        model = build_selfish_forks_mdp(PROTOCOL, ATTACK)
        analysis = formal_analysis(model.mdp, AnalysisConfig(epsilon=1e-3))
        policy = SelfishForksPolicy(analysis.strategy)
        result = SelfishMiningSimulator(PROTOCOL, ATTACK, policy, seed=23).run(50_000)
        assert result.relative_revenue > honest_errev(PROTOCOL)
