"""Tests of the block / blockchain / private fork substrate."""

from __future__ import annotations

import pytest

from repro.chain import Block, Blockchain, PrivateFork
from repro.chain.block import genesis_block
from repro.exceptions import SimulationError


class TestBlock:
    def test_genesis_properties(self):
        genesis = genesis_block()
        assert genesis.is_genesis
        assert genesis.height == 0
        assert genesis.owner == "honest"

    def test_child_links_to_parent(self):
        genesis = genesis_block()
        child = genesis.child(owner="adversary", timestep=7)
        assert child.parent_id == genesis.block_id
        assert child.height == 1
        assert child.is_adversarial
        assert child.timestep == 7

    def test_block_ids_are_unique(self):
        genesis = genesis_block()
        children = [genesis.child(owner="honest") for _ in range(10)]
        assert len({block.block_id for block in children}) == 10

    def test_invalid_owner_rejected(self):
        with pytest.raises(ValueError):
            Block(block_id=1, parent_id=0, owner="martian", height=1)

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            Block(block_id=1, parent_id=0, owner="honest", height=-1)


class TestBlockchain:
    def test_fresh_chain_has_only_genesis(self):
        chain = Blockchain()
        assert chain.length == 1
        assert chain.height == 0
        assert chain.tip.is_genesis

    def test_append_grows_the_chain(self):
        chain = Blockchain()
        block = chain.append("adversary")
        assert chain.tip is block
        assert chain.height == 1

    def test_block_at_depth(self):
        chain = Blockchain()
        first = chain.append("honest")
        second = chain.append("adversary")
        assert chain.block_at_depth(1) is second
        assert chain.block_at_depth(2) is first

    def test_block_at_depth_out_of_range(self):
        chain = Blockchain()
        with pytest.raises(SimulationError):
            chain.block_at_depth(5)

    def test_owners_excludes_genesis_and_suffix(self):
        chain = Blockchain()
        chain.append("honest")
        chain.append("adversary")
        chain.append("adversary")
        assert chain.owners() == ["honest", "adversary", "adversary"]
        assert chain.owners(exclude_suffix=2) == ["honest"]
        assert chain.owners(exclude_suffix=5) == []

    def test_reorganise_replaces_suffix(self):
        chain = Blockchain()
        chain.append("honest")
        orphan_candidate = chain.append("honest")
        base = chain.block_at_depth(2)
        new_blocks = [base.child("adversary")]
        new_blocks.append(new_blocks[0].child("adversary"))
        orphaned = chain.reorganise(2, new_blocks)
        assert orphaned == [orphan_candidate]
        assert chain.tip is new_blocks[-1]
        assert chain.orphans == [orphan_candidate]
        assert [block.owner for block in chain.blocks[-2:]] == ["adversary", "adversary"]

    def test_reorganise_on_tip_appends_without_orphans(self):
        chain = Blockchain()
        chain.append("honest")
        new_block = chain.tip.child("adversary")
        orphaned = chain.reorganise(1, [new_block])
        assert orphaned == []
        assert chain.tip is new_block

    def test_reorganise_rejects_detached_blocks(self):
        chain = Blockchain()
        chain.append("honest")
        stranger = genesis_block().child("adversary")
        with pytest.raises(SimulationError):
            chain.reorganise(1, [stranger])

    def test_reorganise_rejects_wrong_heights(self):
        chain = Blockchain()
        chain.append("honest")
        bad = Block(block_id=999_999, parent_id=chain.tip.block_id, owner="adversary", height=7)
        with pytest.raises(SimulationError):
            chain.reorganise(1, [bad])


class TestPrivateFork:
    def test_extend_builds_a_chain_on_the_base(self):
        chain = Blockchain()
        base = chain.append("honest")
        fork = PrivateFork(base=base)
        first = fork.extend()
        second = fork.extend()
        assert fork.length == 2
        assert first.parent_id == base.block_id
        assert second.parent_id == first.block_id
        assert fork.tip is second

    def test_tip_of_empty_fork_is_base(self):
        base = genesis_block()
        assert PrivateFork(base=base).tip is base

    def test_publish_prefix_removes_blocks(self):
        fork = PrivateFork(base=genesis_block())
        blocks = [fork.extend() for _ in range(3)]
        published = fork.publish_prefix(2)
        assert published == blocks[:2]
        assert fork.length == 1

    def test_publish_prefix_bounds_checked(self):
        fork = PrivateFork(base=genesis_block())
        fork.extend()
        with pytest.raises(SimulationError):
            fork.publish_prefix(2)
        with pytest.raises(SimulationError):
            fork.publish_prefix(0)

    def test_truncate_caps_length(self):
        fork = PrivateFork(base=genesis_block())
        for _ in range(5):
            fork.extend()
        fork.truncate(3)
        assert fork.length == 3
        with pytest.raises(SimulationError):
            fork.truncate(-1)

    def test_reroot_preserves_length_and_attaches_to_new_base(self):
        fork = PrivateFork(base=genesis_block())
        for _ in range(3):
            fork.extend()
        new_base = genesis_block().child("adversary")
        rerooted = fork.reroot(new_base)
        assert rerooted.length == 3
        assert rerooted.blocks[0].parent_id == new_base.block_id
