"""Shared fixtures for the test suite.

Model construction and formal analysis are the slowest operations, so the
commonly used models / results are built once per session and shared across
test modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import AnalysisConfig, AttackParams, ProtocolParams  # noqa: E402
from repro.analysis import formal_analysis  # noqa: E402
from repro.attacks import build_selfish_forks_mdp  # noqa: E402

#: Platform directory where POSIX shared-memory segments appear as files.
_SHM_DIR = Path("/dev/shm")


@pytest.fixture(scope="module", autouse=True)
def _no_leaked_shm_segments(request):
    """Fail the offending test module on leaked ``repro-`` shm segments.

    Every substrate segment (:mod:`repro.core.shm`) is named ``repro-...``, so
    a snapshot of ``/dev/shm`` around each test module attributes a leaked
    kernel object to the module that created it -- instead of the leak
    silently poisoning later tests or CI jobs.  Segments that predate the
    module (e.g. created by other processes on a shared host) are ignored.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux platform
        yield
        return
    before = {entry.name for entry in _SHM_DIR.glob("repro-*")}
    yield
    leaked = {entry.name for entry in _SHM_DIR.glob("repro-*")} - before
    if leaked:
        raise AssertionError(
            f"test module {request.module.__name__} leaked shared-memory "
            f"segment(s): {sorted(leaked)}; every create_segment() must be "
            "paired with a release on all paths (see tests/core/shm_conformance.py)"
        )


@pytest.fixture(scope="session")
def protocol_default() -> ProtocolParams:
    """The paper's headline parameter point: p = 0.3, gamma = 0.5."""
    return ProtocolParams(p=0.3, gamma=0.5)


@pytest.fixture(scope="session")
def attack_d1f1() -> AttackParams:
    """Smallest attack configuration (d = 1, f = 1, l = 4)."""
    return AttackParams(depth=1, forks=1, max_fork_length=4)


@pytest.fixture(scope="session")
def attack_d2f1() -> AttackParams:
    """The d = 2, f = 1, l = 4 configuration used throughout the tests."""
    return AttackParams(depth=2, forks=1, max_fork_length=4)


@pytest.fixture(scope="session")
def attack_d2f2() -> AttackParams:
    """The d = 2, f = 2, l = 4 configuration (largest default-tractable model)."""
    return AttackParams(depth=2, forks=2, max_fork_length=4)


@pytest.fixture(scope="session")
def model_d1f1(protocol_default, attack_d1f1):
    """Built MDP for d = 1, f = 1 at the default protocol point."""
    return build_selfish_forks_mdp(protocol_default, attack_d1f1)


@pytest.fixture(scope="session")
def model_d2f1(protocol_default, attack_d2f1):
    """Built MDP for d = 2, f = 1 at the default protocol point."""
    return build_selfish_forks_mdp(protocol_default, attack_d2f1)


@pytest.fixture(scope="session")
def model_d2f2(protocol_default, attack_d2f2):
    """Built MDP for d = 2, f = 2 at the default protocol point."""
    return build_selfish_forks_mdp(protocol_default, attack_d2f2)


@pytest.fixture(scope="session")
def analysis_d2f1(model_d2f1):
    """Formal analysis result for the d = 2, f = 1 model (epsilon = 1e-3)."""
    return formal_analysis(model_d2f1.mdp, AnalysisConfig(epsilon=1e-3))
