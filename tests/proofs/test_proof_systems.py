"""Tests of the efficient proof system models and the toy VDF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.proofs import (
    ProofChallenge,
    ProofOfSpaceTime,
    ProofOfStake,
    ProofOfWork,
    VerifiableDelayFunction,
)

CHALLENGE = ProofChallenge(parent_block_id=42, slot=7)


class TestProofOfWork:
    def test_single_concurrent_target(self):
        assert ProofOfWork().max_concurrent_targets == 1

    def test_effective_targets_clamped(self):
        assert ProofOfWork().effective_targets(5) == 1
        assert ProofOfWork().effective_targets(0) == 0

    def test_attempt_frequency_matches_probability(self):
        pow_system = ProofOfWork(rng=np.random.default_rng(0))
        successes = sum(
            pow_system.attempt(CHALLENGE, resource_fraction=0.3, success_rate=0.5).success
            for _ in range(20_000)
        )
        assert successes / 20_000 == pytest.approx(0.15, abs=0.01)

    def test_success_has_finite_quality(self):
        pow_system = ProofOfWork(rng=np.random.default_rng(1))
        outcome = pow_system.attempt(CHALLENGE, resource_fraction=1.0, success_rate=1.0)
        assert outcome.success
        assert outcome.quality < float("inf")


class TestProofOfStake:
    def test_unbounded_concurrency(self):
        system = ProofOfStake()
        assert system.max_concurrent_targets == float("inf")
        assert system.effective_targets(1000) == 1000

    def test_zero_stake_never_wins(self):
        system = ProofOfStake(rng=np.random.default_rng(2))
        assert not any(
            system.attempt(CHALLENGE, resource_fraction=0.0, success_rate=1.0).success
            for _ in range(100)
        )

    def test_full_stake_always_wins(self):
        system = ProofOfStake(rng=np.random.default_rng(3))
        assert all(
            system.attempt(CHALLENGE, resource_fraction=1.0, success_rate=1.0).success
            for _ in range(100)
        )


class TestProofOfSpaceTime:
    def test_concurrency_bounded_by_vdfs(self):
        system = ProofOfSpaceTime(num_vdfs=3)
        assert system.max_concurrent_targets == 3
        assert system.effective_targets(10) == 3

    def test_invalid_vdf_count_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProofOfSpaceTime(num_vdfs=0)

    def test_attempt_uses_an_idle_vdf(self):
        system = ProofOfSpaceTime(num_vdfs=1, rng=np.random.default_rng(4))
        outcome = system.attempt(CHALLENGE, resource_fraction=1.0, success_rate=1.0)
        assert outcome.success
        # The toy model finishes the VDF synchronously, so it is idle again.
        assert system.available_vdf() is not None

    def test_attempt_fails_when_all_vdfs_busy(self):
        system = ProofOfSpaceTime(num_vdfs=1, rng=np.random.default_rng(5))
        system.vdfs[0].start(challenge_id=1)
        outcome = system.attempt(CHALLENGE, resource_fraction=1.0, success_rate=1.0)
        assert not outcome.success


class TestVerifiableDelayFunction:
    def test_requires_positive_steps(self):
        with pytest.raises(ValueError):
            VerifiableDelayFunction(steps_required=0)

    def test_sequential_evaluation(self):
        vdf = VerifiableDelayFunction(steps_required=3)
        vdf.start(challenge_id=9)
        assert vdf.busy
        assert vdf.tick() is None
        assert vdf.tick() is None
        assert vdf.tick() == 9
        assert not vdf.busy

    def test_progress_fraction(self):
        vdf = VerifiableDelayFunction(steps_required=4)
        assert vdf.progress == 0.0
        vdf.start(challenge_id=1)
        vdf.tick()
        assert vdf.progress == pytest.approx(0.25)

    def test_cannot_start_while_busy(self):
        vdf = VerifiableDelayFunction(steps_required=2)
        vdf.start(challenge_id=1)
        with pytest.raises(SimulationError):
            vdf.start(challenge_id=2)

    def test_abort_frees_the_instance(self):
        vdf = VerifiableDelayFunction(steps_required=2)
        vdf.start(challenge_id=1)
        vdf.abort()
        assert not vdf.busy
        vdf.start(challenge_id=2)  # does not raise

    def test_tick_when_idle_is_noop(self):
        vdf = VerifiableDelayFunction(steps_required=2)
        assert vdf.tick() is None

    def test_verification(self):
        assert VerifiableDelayFunction.verify(5, 5)
        assert not VerifiableDelayFunction.verify(5, 6)
