"""Reusable conformance harness for shared-memory planes.

Every plane built on the substrate (:mod:`repro.core.shm`) must satisfy the
same lifecycle invariants: payload round-trip equality across a real attach,
unlink-after-release under fork and spawn alike, no leak when an attacher is
SIGKILLed, idempotent double release, loud refusal of foreign segments and of
layout-version mismatches, and zero ``/dev/shm`` residue once the last
reference is gone.

Instead of every plane re-proving these with a hand-rolled copy of the same
tests, a plane registers a :class:`PlaneContract` here and
``tests/core/test_shm_conformance.py`` runs the whole invariant suite against
it, parametrized over start methods.  A future plane (certified-bound store,
CSR model buffers) picks the entire suite up by adding one contract.

This module is deliberately *not* named ``test_*``: it is imported both by the
conformance test module and -- by name, via pickled ``(kind, name)`` pairs --
inside fork- and spawn-started child processes, so everything in here must be
importable at module top level.
"""

from __future__ import annotations

import hashlib
import os
import signal
from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np

from repro import AttackParams, ProtocolParams
from repro.attacks import get_model_structure
from repro.core import results_plane as results_module
from repro.core import shared_structures as structures_module
from repro.core import shm

#: Model used by the model-plane contract: the smallest buildable attack.
_ATTACK = AttackParams(depth=1, forks=1, max_fork_length=4)
_PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)

#: Arrays that define a structure's identity (same set the round-trip tests use).
_STRUCTURE_ARRAYS = (
    "row_state",
    "state_row_offsets",
    "row_trans_offsets",
    "trans_succ",
    "trans_kind",
    "trans_sigma",
    "trans_mult",
    "trans_reward",
)


@dataclass(frozen=True)
class PlaneContract:
    """What one plane must provide to inherit the conformance suite.

    ``create``/``attach`` return a plane object exposing ``.name`` and
    ``.release()`` (every substrate plane does); ``fingerprint`` reduces a
    plane's payload to a picklable value two processes can compare for
    round-trip equality; ``forget`` drops this process's inherited registry
    state so an attach takes the real worker-side mapping path.
    """

    kind: str
    spec: shm.SegmentSpec
    create: Callable[[], Any]
    attach: Callable[[str], Any]
    fingerprint: Callable[[Any], Any]
    forget: Callable[[], None]


# --------------------------------------------------------------------- substrate

_RAW_SPEC = shm.SegmentSpec(kind="conformance", magic=0x434F4E46_4F524D31, version=7)
_RAW_PAYLOAD_BYTES = 256


def _raw_create() -> shm.ManagedSegment:
    handle = shm.create_segment(_RAW_SPEC, _RAW_PAYLOAD_BYTES, zero_payload=True)
    payload = np.ndarray(
        (_RAW_PAYLOAD_BYTES,), dtype=np.uint8, buffer=handle.buf, offset=shm.HEADER_BYTES
    )
    payload[:] = np.arange(_RAW_PAYLOAD_BYTES, dtype=np.uint8)
    del payload
    return handle


def _raw_attach(name: str) -> shm.ManagedSegment:
    return shm.attach_segment(_RAW_SPEC, name)


def _raw_fingerprint(handle: shm.ManagedSegment) -> str:
    start = shm.HEADER_BYTES
    return bytes(handle.buf[start : start + _RAW_PAYLOAD_BYTES]).hex()


# ------------------------------------------------------------------- model plane


def _model_create() -> Any:
    structure = get_model_structure(_ATTACK, _PROTOCOL)
    return structures_module.publish_structures([structure])


def _model_fingerprint(plane: Any) -> str:
    digest = hashlib.sha256()
    for structure in plane.structures:
        digest.update(repr(structure.signature).encode("utf-8"))
        for key in _STRUCTURE_ARRAYS:
            digest.update(np.ascontiguousarray(getattr(structure, key)).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------- results plane


def _results_outcome() -> Any:
    from repro.core.engine import PointOutcome

    return PointOutcome(
        gamma_index=0,
        p_index=0,
        attack_index=0,
        p=0.25,
        gamma=0.75,
        series="conformance",
        errev=1.25,
        seconds=0.5,
        solver_iterations=11,
        num_states=42,
        solver_backend="test",
        scenario="selfish-forks",
    )


def _results_create() -> Any:
    plane = results_module.create_results_plane(1, 1, 1)
    assert plane.write(_results_outcome())
    return plane


def _results_fingerprint(plane: Any) -> str:
    outcome = plane.read(plane.slot_of(0, 0, 0))
    return repr(outcome)


# -------------------------------------------------------------------- registry

CONTRACTS: Dict[str, PlaneContract] = {
    "substrate": PlaneContract(
        kind="substrate",
        spec=_RAW_SPEC,
        create=_raw_create,
        attach=_raw_attach,
        fingerprint=_raw_fingerprint,
        forget=lambda: shm.forget_inherited_segments(kind=_RAW_SPEC.kind),
    ),
    "model-plane": PlaneContract(
        kind="model-plane",
        spec=structures_module._SPEC,
        create=_model_create,
        attach=structures_module.attach_structures,
        fingerprint=_model_fingerprint,
        forget=structures_module.forget_inherited_planes,
    ),
    "results-plane": PlaneContract(
        kind="results-plane",
        spec=results_module._SPEC,
        create=_results_create,
        attach=results_module.attach_results_plane,
        fingerprint=_results_fingerprint,
        forget=results_module.forget_inherited_results_planes,
    ),
}


# -------------------------------------------------------- child process workers
# Must stay at module top level: spawn-started children import this module by
# name and look the functions up by qualified name when unpickling the target.


def child_attach_verify_release(kind: str, name: str, queue: Any) -> None:
    """Attach ``name``, report its fingerprint, release, exit cleanly."""
    contract = CONTRACTS[kind]
    contract.forget()
    plane = contract.attach(name)
    try:
        queue.put(("fingerprint", contract.fingerprint(plane)))
    finally:
        plane.release()


def child_attach_and_sigkill(kind: str, name: str, queue: Any) -> None:
    """Attach ``name`` and die without any cleanup (simulated worker crash)."""
    contract = CONTRACTS[kind]
    contract.forget()
    contract.attach(name)
    queue.put(("attached", name))
    # mp.Queue sends through a feeder thread; make sure the message actually
    # left this process before SIGKILL tears it down mid-flush.
    queue.close()
    queue.join_thread()
    os.kill(os.getpid(), signal.SIGKILL)


# ------------------------------------------------------------- header tampering


def corrupt_header_word(name: str, index: int, value: int) -> None:
    """Overwrite one uint64 word of a segment's substrate header in place.

    Used to simulate a peer built for another layout generation (word 2) or a
    foreign plane kind (word 1).  The caller must have forgotten its registry
    handle first, or the next attach would dedup and skip header validation.
    """
    segment = shm.attach_segment_untracked(name)
    try:
        header = np.ndarray((shm.HEADER_BYTES // 8,), dtype=np.uint64, buffer=segment.buf)
        header[index] = value
        del header  # drop the exported view so close() cannot raise BufferError
    finally:
        segment.close()


def shm_residue() -> list:
    """Names of ``repro-`` shared-memory segments currently on the platform."""
    try:
        return sorted(
            entry for entry in os.listdir("/dev/shm") if entry.startswith(shm.SEGMENT_PREFIX)
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux platform
        return []
