"""Tests of CSV / table / ASCII-plot reporting and the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import main
from repro.core.reporting import ascii_plot, render_table, write_csv
from repro.core.results import SweepPoint, SweepResult
from repro.exceptions import ConfigurationError


@pytest.fixture()
def sample_sweep():
    points = []
    for p in (0.0, 0.1, 0.2, 0.3):
        points.append(SweepPoint(p=p, gamma=0.5, series="honest", errev=p))
        points.append(SweepPoint(p=p, gamma=0.5, series="ours(d=2,f=1)", errev=min(1.0, p * 1.3)))
    return SweepResult(points=points, description="sample")


class TestWriteCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = write_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5, "c": "x"}], tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["a"] == "1"
        assert rows[1]["c"] == "x"
        assert set(rows[0].keys()) == {"a", "b", "c"}

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv([{"x": 1}], tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()

    def test_empty_rows_produce_empty_file(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text().strip() == ""

    def test_explicit_columns_fix_order_and_fill_gaps(self, tmp_path):
        path = write_csv(
            [{"b": 2, "a": 1}, {"a": 3, "extra": "dropped"}],
            tmp_path / "ordered.csv",
            columns=["a", "b"],
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "3,"  # missing key -> empty cell, extras dropped

    def test_wall_clock_columns_rounded_to_significant_digits(self, tmp_path):
        path = write_csv(
            [{"seconds": 0.123456789, "build_seconds": 1234.5678, "errev": 0.123456789}],
            tmp_path / "rounded.csv",
        )
        with path.open() as handle:
            (row,) = list(csv.DictReader(handle))
        assert row["seconds"] == "0.1235"
        assert row["build_seconds"] == "1235.0"
        # Non-timing floats keep their full precision.
        assert row["errev"] == "0.123456789"

    def test_time_rounding_can_be_disabled(self, tmp_path):
        path = write_csv(
            [{"seconds": 0.123456789}], tmp_path / "full.csv", time_significant_digits=None
        )
        with path.open() as handle:
            (row,) = list(csv.DictReader(handle))
        assert row["seconds"] == "0.123456789"

    def test_utf8_regardless_of_locale(self, tmp_path, monkeypatch):
        """Regression: CSV output must be UTF-8 even on a C-locale host.

        ``open`` without an explicit encoding follows
        ``locale.getpreferredencoding``, so the same sweep wrote different --
        or crashing, for non-ASCII series/error cells -- files depending on
        the host locale.  The file must now open with ``encoding="utf-8"``
        (asserted on the actual ``Path.open`` call, since the test process
        cannot reliably switch its C-level locale) and the bytes on disk must
        decode as UTF-8.
        """
        import locale
        from pathlib import Path

        monkeypatch.setattr(
            locale, "getpreferredencoding", lambda do_setlocale=True: "ANSI_X3.4-1968"
        )
        opened_encodings = []
        original_open = Path.open

        def spying_open(self, *args, **kwargs):
            opened_encodings.append(kwargs.get("encoding"))
            return original_open(self, *args, **kwargs)

        monkeypatch.setattr(Path, "open", spying_open)
        path = write_csv(
            [{"series": "ours(γ=0.5, β≤ε)", "error": "Solver détruit"}],
            tmp_path / "unicode.csv",
        )
        assert opened_encodings == ["utf-8"]
        text = path.read_bytes().decode("utf-8")
        assert "ours(γ=0.5, β≤ε)" in text and "Solver détruit" in text


class TestRenderTable:
    def test_contains_all_columns_and_values(self):
        text = render_table([{"name": "x", "value": 1.23456}])
        assert "name" in text and "value" in text
        assert "1.2346" in text  # default float format

    def test_column_selection_and_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_none_rendered_as_empty(self):
        text = render_table([{"a": None}])
        assert text.splitlines()[-1].strip() == ""

    def test_empty_table(self):
        assert render_table([]) == "(empty table)"


class TestAsciiPlot:
    def test_contains_legend_and_markers(self, sample_sweep):
        text = ascii_plot(sample_sweep, gamma=0.5)
        assert "honest" in text
        assert "ours(d=2,f=1)" in text
        assert "gamma = 0.5" in text

    def test_missing_gamma_handled(self, sample_sweep):
        assert "no data" in ascii_plot(sample_sweep, gamma=0.9)

    def test_plot_dimensions(self, sample_sweep):
        lines = ascii_plot(sample_sweep, gamma=0.5, width=40, height=10).splitlines()
        plot_lines = [line for line in lines if line.startswith("|")]
        assert len(plot_lines) == 10
        assert all(len(line) <= 41 for line in plot_lines)


class TestCli:
    def test_analyze_command(self, capsys):
        exit_code = main(
            [
                "analyze",
                "--p",
                "0.3",
                "--gamma",
                "0.5",
                "--depth",
                "1",
                "--forks",
                "1",
                "--epsilon",
                "0.01",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ERRev lower bound" in captured.out
        assert "states" in captured.out

    def test_sweep_command_writes_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "sweep.csv"
        exit_code = main(
            [
                "sweep",
                "--gamma",
                "0.5",
                "--p-max",
                "0.2",
                "--p-step",
                "0.1",
                "--epsilon",
                "0.02",
                "--max-depth",
                "1",
                "--csv",
                str(out_csv),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert out_csv.exists()
        assert "ERRev vs p" in captured.out
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        assert {row["series"] for row in rows} >= {"honest", "ours(d=1,f=1)"}

    def test_simulate_command(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--p",
                "0.3",
                "--gamma",
                "0.5",
                "--depth",
                "1",
                "--forks",
                "1",
                "--epsilon",
                "0.01",
                "--steps",
                "20000",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "simulated ERRev" in captured.out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_parameter_propagates(self):
        with pytest.raises(ConfigurationError):
            main(["analyze", "--p", "1.5", "--epsilon", "0.01"])

    def test_analyze_with_solver_alias_and_batched_probes(self, capsys):
        exit_code = main(
            [
                "analyze",
                "--p",
                "0.3",
                "--depth",
                "1",
                "--epsilon",
                "0.01",
                "--solver",
                "vi",
                "--batch-probes",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ERRev lower bound" in captured.out

    def test_sweep_with_portfolio_and_reuse_records_backend(self, tmp_path, capsys):
        out_csv = tmp_path / "portfolio.csv"
        exit_code = main(
            [
                "sweep",
                "--gamma",
                "0.5",
                "--p-max",
                "0.2",
                "--p-step",
                "0.1",
                "--epsilon",
                "0.02",
                "--max-depth",
                "1",
                "--solver",
                "portfolio",
                "--batch-probes",
                "2",
                "--reuse-p-bounds",
                "--csv",
                str(out_csv),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        attack_rows = [row for row in rows if row["series"].startswith("ours")]
        assert attack_rows
        assert all(
            row["solver_backend"] in ("policy_iteration", "value_iteration")
            for row in attack_rows
        )
        assert all(float(row["beta_up"]) - float(row["beta_low"]) < 0.02 for row in attack_rows)

    def test_analyze_with_auto_batch_probes(self, capsys):
        exit_code = main(
            [
                "analyze",
                "--p",
                "0.3",
                "--depth",
                "1",
                "--epsilon",
                "0.01",
                "--batch-probes",
                "auto",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ERRev lower bound" in captured.out

    def test_attacks_command_lists_scenarios(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "selfish-forks@1" in out
        assert "sm-actions@1" in out
        assert "default grid" in out

    def test_analyze_accepts_attack_scenario(self, capsys):
        exit_code = main(
            ["analyze", "--attack", "sm-actions", "-l", "6", "--epsilon", "0.01"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ERRev lower bound" in captured.out

    def test_sweep_attack_scenario_writes_scenario_column(self, tmp_path, capsys):
        out_csv = tmp_path / "scenario.csv"
        exit_code = main(
            [
                "sweep",
                "--attack",
                "sm-actions",
                "--grid",
                "l4",
                "--p-max",
                "0.2",
                "--p-step",
                "0.1",
                "--epsilon",
                "0.02",
                "--csv",
                str(out_csv),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        attack_rows = [row for row in rows if row["series"] == "sm-actions(l=4)"]
        assert attack_rows
        assert all(row["scenario"] == "sm-actions@1" for row in attack_rows)

    def test_max_depth_shim_warns_once_and_matches_grid_spec(self, capsys, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "_MAX_DEPTH_DEPRECATION_WARNED", False)
        argv = ["sweep", "--p-max", "0.1", "--p-step", "0.1", "--epsilon", "0.02"]
        assert main([*argv, "--max-depth", "1"]) == 0
        first = capsys.readouterr().err
        assert first.count("--max-depth is deprecated") == 1
        assert main([*argv, "--max-depth", "1"]) == 0
        assert "--max-depth is deprecated" not in capsys.readouterr().err

    def test_max_depth_conflicts_with_grid(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--max-depth", "1", "--grid", "default"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--attack", "no-such-attack"])

    def test_help_documents_auto_batch_probes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--help"])
        assert excinfo.value.code == 0
        assert "'auto'" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--epsilon", "-1"],
            ["sweep", "--workers", "0"],
            ["analyze", "--epsilon", "0"],
            ["analyze", "--batch-probes", "0"],
            ["analyze", "--batch-probes", "adaptive"],
        ],
    )
    def test_invalid_numeric_flags_rejected_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "must be a positive" in capsys.readouterr().err
