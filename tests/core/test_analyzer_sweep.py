"""Tests of the high-level analyzer, the sweep driver and result containers."""

from __future__ import annotations

import pytest

from repro import (
    AnalysisConfig,
    AttackParams,
    ProtocolParams,
    SelfishMiningAnalyzer,
    SweepConfig,
    run_sweep,
)
from repro.core.results import SweepPoint, SweepResult
from repro.core.sweep import attack_series_name


@pytest.fixture(scope="module")
def analyzer_result():
    analyzer = SelfishMiningAnalyzer(
        ProtocolParams(p=0.3, gamma=0.5),
        AttackParams(depth=2, forks=1, max_fork_length=4),
        AnalysisConfig(epsilon=1e-3),
    )
    return analyzer, analyzer.run()


class TestAnalyzer:
    def test_result_fields(self, analyzer_result):
        _, result = analyzer_result
        assert result.num_states > 0
        assert result.num_transitions > 0
        assert result.build_seconds >= 0.0
        assert result.analysis_seconds >= 0.0
        assert result.total_seconds >= result.analysis_seconds

    def test_attack_beats_honest(self, analyzer_result):
        _, result = analyzer_result
        assert result.strategy_errev > result.honest_errev
        assert result.advantage_over_honest > 0.0

    def test_chain_quality_complement(self, analyzer_result):
        _, result = analyzer_result
        assert result.chain_quality == pytest.approx(1.0 - result.strategy_errev)

    def test_to_row_is_flat(self, analyzer_result):
        _, result = analyzer_result
        row = result.to_row()
        assert row["p"] == 0.3
        assert row["d"] == 2 and row["f"] == 1
        assert all(not isinstance(value, (dict, list)) for value in row.values())

    def test_model_is_cached(self, analyzer_result):
        analyzer, _ = analyzer_result
        assert analyzer.build_model() is analyzer.build_model()
        assert analyzer.build_model(force=True) is not None

    def test_default_construction(self):
        analyzer = SelfishMiningAnalyzer()
        assert analyzer.protocol.p == 0.3
        assert analyzer.attack.depth == 2

    def test_evaluate_honest_baseline_for_d1(self):
        analyzer = SelfishMiningAnalyzer(
            ProtocolParams(p=0.25, gamma=0.5),
            AttackParams(depth=1, forks=1, max_fork_length=4),
        )
        assert analyzer.evaluate_honest_baseline() == pytest.approx(0.25, abs=1e-9)

    def test_validate_by_simulation_records_estimate(self, analyzer_result):
        analyzer, result = analyzer_result
        analyzer.validate_by_simulation(result, num_steps=30_000, seed=3)
        assert result.simulated_errev is not None
        assert result.simulated_errev == pytest.approx(result.strategy_errev, abs=0.04)


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        config = SweepConfig(
            p_values=(0.0, 0.15, 0.3),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            analysis=AnalysisConfig(epsilon=1e-2),
        )
        messages = []
        sweep = run_sweep(config, progress=messages.append)
        return sweep, messages

    def test_all_series_present(self, small_sweep):
        sweep, _ = small_sweep
        names = sweep.series_names()
        assert "honest" in names
        assert any(name.startswith("single-tree") for name in names)
        assert "ours(d=1,f=1)" in names

    def test_point_counts(self, small_sweep):
        sweep, _ = small_sweep
        # 3 p-values x 1 gamma x 3 series.
        assert len(sweep.points) == 9

    def test_honest_series_is_the_diagonal(self, small_sweep):
        sweep, _ = small_sweep
        for point in sweep.series("honest"):
            assert point.errev == pytest.approx(point.p)

    def test_attack_series_dominates_honest(self, small_sweep):
        sweep, _ = small_sweep
        honest = {point.p: point.errev for point in sweep.series("honest")}
        for point in sweep.series("ours(d=1,f=1)"):
            assert point.errev >= honest[point.p] - 1e-2

    def test_progress_messages_emitted(self, small_sweep):
        _, messages = small_sweep
        assert len(messages) == 3
        assert all("ERRev" in message for message in messages)

    def test_gammas_and_series_helpers(self, small_sweep):
        sweep, _ = small_sweep
        assert sweep.gammas() == [0.5]
        assert sweep.series("honest", gamma=0.5)
        assert sweep.series("honest", gamma=0.9) == []

    def test_merge(self, small_sweep):
        sweep, _ = small_sweep
        merged = sweep.merge(SweepResult(points=[SweepPoint(p=0.1, gamma=0.0, series="x", errev=0.1)]))
        assert len(merged.points) == len(sweep.points) + 1

    def test_attack_series_name_format(self):
        assert attack_series_name(AttackParams(depth=3, forks=2)) == "ours(d=3,f=2)"
