"""Property tests for the torn-read defenses of the shm return paths.

Two protocols promise "never a torn read" and both are example-tested
elsewhere; here Hypothesis drives them through randomized schedules:

* the results plane's per-slot **seqlock** (:mod:`repro.core.results_plane`):
  a writer interrupted after *any* prefix of its field stores must read back
  as "not ready" (``None``), never as a half-written outcome, and a completed
  write must read back equal -- for arbitrary outcomes across the optional
  field combinations;
* the journal's **CRC envelope** (:mod:`repro.core.journal`): records
  round-trip through encode/decode, a tail torn at *any* byte offset scans to
  exactly the records whose lines survived whole, and corruption that is
  provably not a torn tail (an invalid record followed by valid ones) raises
  instead of resuming from a lie.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PointOutcome
from repro.core.journal import _scan, decode_record, encode_record
from repro.core.results_plane import (
    BACKEND_BYTES,
    ERROR_BYTES,
    SCENARIO_BYTES,
    SERIES_BYTES,
    create_results_plane,
)
from repro.exceptions import ModelError

# ------------------------------------------------------------------- strategies

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
_counts = st.integers(min_value=0, max_value=2**62)


def _field_text(capacity: int) -> st.SearchStrategy:
    """UTF-8 text that fits a fixed-size record field and has no NUL bytes."""
    alphabet = st.characters(blacklist_characters="\x00", max_codepoint=0x2FFF)
    return st.text(alphabet=alphabet, max_size=capacity // 4)


def _outcomes() -> st.SearchStrategy:
    # The record format carries one _HAS_PORTFOLIO flag for the pair
    # (portfolio_races, portfolio_launches_avoided) -- the engine always sets
    # them together -- so only outcomes with both-or-neither are representable.
    portfolio = st.one_of(
        st.tuples(st.none(), st.none()), st.tuples(_counts, _counts)
    )
    return st.builds(
        lambda races_avoided, **kwargs: PointOutcome(
            portfolio_races=races_avoided[0],
            portfolio_launches_avoided=races_avoided[1],
            **kwargs,
        ),
        races_avoided=portfolio,
        gamma_index=st.integers(0, 1),
        p_index=st.integers(0, 1),
        attack_index=st.integers(0, 1),
        p=_finite,
        gamma=_finite,
        series=_field_text(SERIES_BYTES),
        errev=st.none() | _finite,
        seconds=_finite,
        solver_iterations=_counts,
        num_states=_counts,
        error=st.none() | _field_text(ERROR_BYTES),
        beta_low=st.none() | _finite,
        beta_up=st.none() | _finite,
        solver_backend=st.none() | _field_text(BACKEND_BYTES),
        cancelled_iterations=st.none() | _counts,
        scenario=st.none() | _field_text(SCENARIO_BYTES),
        recovery_retries=st.none() | _counts,
    )


def _records() -> st.SearchStrategy:
    """JSON-safe journal records (top-level dict, finite floats)."""
    scalars = (
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**53), max_value=2**53)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=12)
    )
    values = st.recursive(
        scalars,
        lambda inner: st.lists(inner, max_size=3)
        | st.dictionaries(st.text(max_size=6), inner, max_size=3),
        max_leaves=8,
    )
    return st.dictionaries(st.text(max_size=6), values, min_size=0, max_size=4)


# ------------------------------------------------------------ seqlock interleaving


class _WriterDied(Exception):
    """Raised by the store counter to cut a write short at an exact store."""


class _CountingField:
    def __init__(self, array, counter):
        self._array = array
        self._counter = counter

    def __setitem__(self, key, value):
        self._counter.step()
        self._array[key] = value

    def __getitem__(self, key):
        return self._array[key]


class _CountingRecords:
    """Proxy over the plane's record array that dies after ``budget`` stores.

    ``ResultsPlane.write`` performs ``records[field][slot] = value`` stores in
    a fixed protocol order; routing them through this proxy simulates a writer
    killed between any two stores -- the exact interleavings a concurrently
    draining reader can observe.
    """

    def __init__(self, records, budget=math.inf):
        self._records = records
        self._budget = budget
        self.stores = 0

    def __getitem__(self, field):
        return _CountingField(self._records[field], self)

    def step(self):
        if self.stores >= self._budget:
            raise _WriterDied()
        self.stores += 1


def _count_stores(outcome: PointOutcome) -> int:
    """How many field stores a full write of ``outcome`` performs."""
    plane = create_results_plane(2, 2, 2)
    try:
        counting = _CountingRecords(plane._records)
        plane._records, real = counting, plane._records
        try:
            assert plane.write(outcome)
        finally:
            plane._records = real
        return counting.stores
    finally:
        plane.release()


@settings(deadline=None, max_examples=60)
@given(outcome=_outcomes(), data=st.data())
def test_interrupted_writer_never_yields_a_torn_read(outcome, data):
    """A write cut short after ANY store prefix reads as None, never torn."""
    total = _count_stores(outcome)
    died_after = data.draw(st.integers(min_value=0, max_value=total - 1))
    plane = create_results_plane(2, 2, 2)
    try:
        slot = plane.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        counting = _CountingRecords(plane._records, budget=died_after)
        plane._records, real = counting, plane._records
        try:
            with pytest.raises(_WriterDied):
                plane.write(outcome)
        finally:
            plane._records = real
        assert plane.read(slot) is None, (
            f"writer died after {died_after}/{total} stores and the reader "
            "saw a half-written record"
        )
    finally:
        plane.release()


@settings(deadline=None, max_examples=60)
@given(outcome=_outcomes())
def test_completed_write_reads_back_equal(outcome):
    """The last store publishes: a completed write round-trips exactly."""
    plane = create_results_plane(2, 2, 2)
    try:
        slot = plane.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        assert plane.write(outcome)
        assert plane.read(slot) == outcome
        assert plane.drain_new() == [outcome]
    finally:
        plane.release()


@settings(deadline=None, max_examples=30)
@given(outcome=_outcomes())
def test_republish_during_decode_is_discarded(outcome):
    """A slot whose seq moves mid-decode is thrown away (the re-check)."""
    plane = create_results_plane(2, 2, 2)
    try:
        slot = plane.slot_of(outcome.gamma_index, outcome.p_index, outcome.attack_index)
        assert plane.write(outcome)
        original_decode = plane._decode

        def racing_decode(index):
            decoded = original_decode(index)
            plane._records["seq"][index] = 3  # writer re-opens the slot mid-read
            return decoded

        plane._decode = racing_decode
        try:
            assert plane.read(slot) is None
        finally:
            del plane._decode
            plane._records["seq"][slot] = 2
        assert plane.read(slot) == outcome
    finally:
        plane.release()


# ------------------------------------------------------------------ journal CRC


@settings(deadline=None, max_examples=100)
@given(record=_records())
def test_journal_record_round_trips(record):
    assert decode_record(encode_record(record).rstrip(b"\n")) == record


@settings(deadline=None, max_examples=60)
@given(records=st.lists(_records(), min_size=1, max_size=5), data=st.data())
def test_torn_tail_scans_to_the_intact_prefix(records, data):
    """Truncation at ANY byte offset resumes from whole lines, never raises."""
    lines = [encode_record(record) for record in records]
    image = b"".join(lines)
    cut = data.draw(st.integers(min_value=0, max_value=len(image)))
    torn = image[:cut]
    scanned, validated = _scan(torn)
    # Exactly the records whose full line (newline included) survived the cut.
    survivors = []
    offset = 0
    for record, line in zip(records, lines):
        offset += len(line)
        if offset <= cut:
            survivors.append(record)
    assert scanned == survivors
    assert validated == sum(len(line) for line in lines[: len(survivors)])


@settings(deadline=None, max_examples=60)
@given(records=st.lists(_records(), min_size=2, max_size=5), data=st.data())
def test_mid_file_corruption_refuses_to_resume(records, data):
    """An invalid record followed by valid ones cannot be a torn tail: raise."""
    lines = [encode_record(record) for record in records]
    victim = data.draw(st.integers(min_value=0, max_value=len(records) - 2))
    digit = data.draw(st.integers(min_value=0, max_value=7))
    line = lines[victim]
    start = line.index(b'"crc": "') + len(b'"crc": "')
    position = start + digit
    flipped = b"0" if line[position : position + 1] != b"0" else b"f"
    lines[victim] = line[:position] + flipped + line[position + 1 :]
    with pytest.raises(ModelError, match="corrupt"):
        _scan(b"".join(lines))
