"""Tests of the parallel sweep engine (:mod:`repro.core.engine`).

The two contract-level guarantees are exercised here: parallel execution
reproduces the serial values exactly, and warm-started analyses agree with
cold-started ones within the binary-search precision while spending fewer
solver iterations.
"""

from __future__ import annotations

import pytest

from repro import (
    AnalysisConfig,
    AttackParams,
    ProtocolParams,
    SweepConfig,
    run_sweep,
)
from repro.analysis import formal_analysis
from repro.attacks import build_selfish_forks_mdp
from repro.core.engine import _build_tasks, execute_sweep


def small_grid(**engine_kwargs) -> SweepConfig:
    return SweepConfig(
        p_values=(0.0, 0.15, 0.3),
        gammas=(0.0, 0.5),
        attack_configs=(
            AttackParams(depth=1, forks=1, max_fork_length=4),
            AttackParams(depth=2, forks=1, max_fork_length=4),
        ),
        analysis=AnalysisConfig(epsilon=1e-2),
        **engine_kwargs,
    )


def point_tuples(sweep):
    return [(point.p, point.gamma, point.series, point.errev) for point in sweep.points]


class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(small_grid(workers=1))

    def test_parallel_points_identical(self, serial):
        parallel = run_sweep(small_grid(workers=4))
        assert point_tuples(parallel) == point_tuples(serial)

    def test_parallel_with_warm_chaining_identical(self):
        chained_serial = run_sweep(small_grid(workers=1, warm_start_across_points=True))
        chained_parallel = run_sweep(small_grid(workers=3, warm_start_across_points=True))
        assert point_tuples(chained_parallel) == point_tuples(chained_serial)

    def test_warm_chaining_matches_independent_points_within_epsilon(self, serial):
        chained = run_sweep(small_grid(workers=1, warm_start_across_points=True))
        for independent, warm in zip(serial.points, chained.points):
            assert (independent.p, independent.gamma, independent.series) == (
                warm.p,
                warm.gamma,
                warm.series,
            )
            assert warm.errev == pytest.approx(independent.errev, abs=1e-2)

    def test_points_in_canonical_order(self, serial):
        expected = []
        for gamma in (0.0, 0.5):
            for p in (0.0, 0.15, 0.3):
                expected.extend(
                    [
                        (p, gamma, "honest"),
                        (p, gamma, "single-tree(f=5)"),
                        (p, gamma, "ours(d=1,f=1)"),
                        (p, gamma, "ours(d=2,f=1)"),
                    ]
                )
        assert [(pt.p, pt.gamma, pt.series) for pt in serial.points] == expected

    def test_attack_points_carry_timings(self, serial):
        for point in serial.points:
            if point.series.startswith("ours"):
                assert point.seconds is not None and point.seconds >= 0.0
                assert point.solver_iterations is not None and point.solver_iterations > 0
                assert "seconds" in point.to_row()
            else:
                assert point.seconds is None
                assert "seconds" not in point.to_row()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            execute_sweep(small_grid(workers=0))


class TestFailureIsolation:
    def failing_grid(self, workers: int) -> SweepConfig:
        # p = 1.5 is invalid and raises inside the worker; baselines are
        # disabled so the parent never touches the bad point itself.
        return SweepConfig(
            p_values=(0.1, 1.5, 0.3),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-2),
            workers=workers,
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_bad_point_is_isolated(self, workers):
        sweep = run_sweep(self.failing_grid(workers))
        assert [point.p for point in sweep.points] == [0.1, 0.3]
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.p == 1.5 and failure.series == "ours(d=1,f=1)"
        assert "ConfigurationError" in failure.message

    def test_failure_reported_via_progress(self):
        messages = []
        run_sweep(self.failing_grid(1), progress=messages.append)
        assert sum("FAILED" in message for message in messages) == 1

    def test_warm_chain_restarts_after_failure(self):
        config = self.failing_grid(1)
        config.warm_start_across_points = True
        sweep = run_sweep(config)
        assert [point.p for point in sweep.points] == [0.1, 0.3]
        assert len(sweep.failures) == 1

    def test_crashed_worker_recorded_as_failures(self, monkeypatch):
        """A worker that dies (not merely raises) must not abort the sweep."""
        import os

        import repro.core.engine as engine_module

        def die(task):
            os._exit(1)

        # Fork-started workers inherit the patched module, so every task's
        # worker kills itself and the pool breaks.
        monkeypatch.setattr(engine_module, "_run_attack_task", die)
        config = SweepConfig(
            p_values=(0.1, 0.2),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            analysis=AnalysisConfig(epsilon=1e-2),
            workers=2,
        )
        sweep = engine_module.execute_sweep(config)
        assert len(sweep.failures) == 2
        assert all("worker crashed" in failure.message for failure in sweep.failures)
        # Baselines computed in the parent survive.
        assert {point.series for point in sweep.points} == {"honest", "single-tree(f=5)"}

    def test_baseline_failures_isolated_too(self):
        config = self.failing_grid(1)
        config.include_honest = True
        config.include_single_tree = True
        sweep = run_sweep(config)
        # The bad point fails once per series (honest, single-tree, attack)
        # instead of aborting the sweep in the parent.
        assert {failure.series for failure in sweep.failures} == {
            "honest",
            "single-tree(f=5)",
            "ours(d=1,f=1)",
        }
        assert all(failure.p == 1.5 for failure in sweep.failures)
        assert [point.p for point in sweep.points if point.series == "honest"] == [0.1, 0.3]


class TestTaskDecomposition:
    def test_point_tasks_without_chaining(self):
        tasks = _build_tasks(small_grid(workers=2))
        # 2 gammas x 2 attacks x 3 p values, one point each.
        assert len(tasks) == 12
        assert all(len(task.p_values) == 1 for task in tasks)

    def test_series_tasks_with_chaining(self):
        tasks = _build_tasks(small_grid(workers=2, warm_start_across_points=True))
        # 2 gammas x 2 attacks, whole p block each.
        assert len(tasks) == 4
        assert all(task.p_values == (0.0, 0.15, 0.3) for task in tasks)

    def test_series_tasks_with_bound_reuse(self):
        """Bound reuse forces series-ordered scheduling even without warm chaining."""
        tasks = _build_tasks(small_grid(workers=2, reuse_p_axis_bounds=True))
        assert len(tasks) == 4
        assert all(task.p_values == (0.0, 0.15, 0.3) for task in tasks)
        assert all(task.reuse_p_axis_bounds for task in tasks)


class TestSpawnContextPrewarm:
    """On spawn platforms workers must attach the shared plane (or prewarm).

    Regression tests: the engine used to skip cache population entirely off
    Linux, so every spawned worker silently rebuilt every skeleton per task.
    The platform check happens in the parent only, so monkeypatching
    ``sys.platform`` drives the real spawn + initializer path even on Linux.
    """

    def spawn_grid(self, **kwargs):
        return SweepConfig(
            p_values=(0.1, 0.3),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            analysis=AnalysisConfig(epsilon=1e-2),
            **kwargs,
        )

    def test_spawn_pool_prewarms_and_matches_serial(self, monkeypatch):
        import repro.core.engine as engine_module

        serial = execute_sweep(self.spawn_grid(workers=1))
        monkeypatch.setattr(engine_module.sys, "platform", "darwin")
        spawned = execute_sweep(self.spawn_grid(workers=2))
        assert not spawned.failures
        assert point_tuples(spawned) == point_tuples(serial)

    def test_spawn_pool_without_structure_cache(self, monkeypatch):
        import repro.core.engine as engine_module

        monkeypatch.setattr(engine_module.sys, "platform", "darwin")
        spawned = execute_sweep(self.spawn_grid(workers=2, use_structure_cache=False))
        assert not spawned.failures

    def test_initializer_importable_and_idempotent(self):
        """The initializer must be a picklable top-level callable."""
        import pickle

        from repro.core.engine import _initialize_worker

        config = self.spawn_grid()
        assert pickle.loads(pickle.dumps(_initialize_worker)) is _initialize_worker
        pickle.dumps(config)  # the initargs must survive the spawn pickling too
        # Without a plane name the initializer falls back to the local prewarm.
        _initialize_worker(None, config)
        _initialize_worker(None, config)

    def test_initializer_with_vanished_plane_falls_back(self):
        """A plane unlinked before the worker attaches must not kill the worker."""
        from repro.core.engine import _initialize_worker

        config = self.spawn_grid()
        _initialize_worker("repro-no-such-plane", config)


class TestMonotonePAxisBoundReuse:
    def test_reuse_matches_cold_within_epsilon(self):
        cold = run_sweep(small_grid(workers=1))
        reused = run_sweep(small_grid(workers=1, reuse_p_axis_bounds=True))
        for independent, warm in zip(cold.points, reused.points):
            assert (independent.p, independent.gamma, independent.series) == (
                warm.p,
                warm.gamma,
                warm.series,
            )
            assert warm.errev == pytest.approx(independent.errev, abs=1e-2)

    def test_reuse_certified_interval_still_tight(self):
        reused = run_sweep(small_grid(workers=1, reuse_p_axis_bounds=True))
        for point in reused.points:
            if point.series.startswith("ours"):
                assert point.beta_low is not None and point.beta_up is not None
                assert point.beta_low <= point.errev + 1e-9
                assert point.beta_up - point.beta_low < 1e-2

    def test_reuse_parallel_identical_to_serial(self):
        serial = run_sweep(small_grid(workers=1, reuse_p_axis_bounds=True))
        parallel = run_sweep(small_grid(workers=3, reuse_p_axis_bounds=True))
        assert point_tuples(parallel) == point_tuples(serial)

    def test_reuse_composes_with_warm_chaining(self):
        cold = run_sweep(small_grid(workers=1))
        combined = run_sweep(
            small_grid(workers=1, reuse_p_axis_bounds=True, warm_start_across_points=True)
        )
        for independent, warm in zip(cold.points, combined.points):
            assert warm.errev == pytest.approx(independent.errev, abs=1e-2)

    def test_reuse_spends_fewer_binary_search_solves(self):
        """Starting from the previous certified bound must shrink total solver work."""
        grid = SweepConfig(
            p_values=(0.1, 0.2, 0.3, 0.35, 0.4),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=2, forks=1, max_fork_length=4),),
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-3),
        )
        cold = run_sweep(grid)
        grid_reuse = SweepConfig(
            p_values=grid.p_values,
            gammas=grid.gammas,
            attack_configs=grid.attack_configs,
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-3),
            reuse_p_axis_bounds=True,
        )
        reused = run_sweep(grid_reuse)
        assert reused.total_solver_iterations < cold.total_solver_iterations

    def test_failure_resets_the_bound_chain(self):
        config = SweepConfig(
            p_values=(0.1, 1.5, 0.3),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-2),
            reuse_p_axis_bounds=True,
        )
        sweep = run_sweep(config)
        assert [point.p for point in sweep.points] == [0.1, 0.3]
        assert len(sweep.failures) == 1

    def test_portfolio_backend_recorded_per_point(self):
        config = SweepConfig(
            p_values=(0.3,),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-2, solver="portfolio"),
        )
        sweep = run_sweep(config)
        (point,) = sweep.points
        assert point.solver_backend in ("policy_iteration", "value_iteration")
        assert point.to_row()["solver_backend"] == point.solver_backend


class TestPortfolioSweepMetadata:
    def test_portfolio_history_stats_in_metadata(self):
        """A portfolio sweep records its race history under metadata["portfolio"]."""
        config = SweepConfig(
            p_values=(0.1, 0.2, 0.3),
            gammas=(0.5,),
            attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
            include_honest=False,
            include_single_tree=False,
            analysis=AnalysisConfig(epsilon=1e-2, solver="portfolio"),
        )
        sweep = run_sweep(config)
        stats = sweep.metadata["portfolio"]
        assert stats["races"] > 0
        assert 0 <= stats["launches_avoided"] <= stats["races"]
        assert sum(stats["backend_wins"].values()) == len(sweep.points)
        # Non-portfolio sweeps carry no portfolio metadata at all.
        cold = run_sweep(small_grid(workers=1))
        assert "portfolio" not in cold.metadata


class TestAssembleMissingOutcomes:
    """Regression: a grid key nobody reported must become a failure, not a crash.

    ``assemble_sweep_result`` used to index ``outcomes[...]`` bare, so a
    distributed shutdown that lost a unit (or a torn results-plane slot)
    raised ``KeyError`` and discarded every point that *was* collected.
    """

    def test_missing_outcome_becomes_sweep_failure(self):
        from repro.core.engine import _run_attack_task, assemble_sweep_result

        config = small_grid(workers=1)
        tasks = _build_tasks(config)
        outcomes = {}
        for task in tasks:
            for outcome in _run_attack_task(task):
                outcomes[(outcome.gamma_index, outcome.p_index, outcome.attack_index)] = outcome
        lost = (0, 1, 1)  # gamma=0.0, p=0.15, second attack
        del outcomes[lost]
        sweep = assemble_sweep_result(config, outcomes, lambda _: None, description="test")
        (failure,) = sweep.failures
        assert "outcome never reported" in failure.message
        assert (failure.p, failure.gamma, failure.series) == (0.15, 0.0, "ours(d=2,f=1)")
        # Every collected point survives the lost one.
        assert len(sweep.points) == len(run_sweep(config).points) - 1


class TestWarmStartedAlgorithm1:
    @pytest.fixture(scope="class")
    def model(self):
        return build_selfish_forks_mdp(
            ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)
        )

    @pytest.mark.parametrize("solver", ["policy_iteration", "value_iteration"])
    def test_same_bounds_fewer_sweeps(self, model, solver):
        cold = formal_analysis(
            model.mdp,
            AnalysisConfig(epsilon=1e-3, solver=solver, warm_start=False, solver_tolerance=1e-7),
        )
        warm = formal_analysis(
            model.mdp,
            AnalysisConfig(epsilon=1e-3, solver=solver, warm_start=True, solver_tolerance=1e-7),
        )
        assert warm.errev_lower_bound == pytest.approx(cold.errev_lower_bound, abs=cold.epsilon)
        assert warm.beta_up == pytest.approx(cold.beta_up, abs=cold.epsilon)
        assert warm.total_solver_iterations < cold.total_solver_iterations

    def test_cross_point_warm_start_same_result(self, model):
        config = AnalysisConfig(epsilon=1e-3)
        seed = formal_analysis(model.mdp, config)
        adjacent = build_selfish_forks_mdp(
            ProtocolParams(p=0.29, gamma=0.5), AttackParams(depth=2, forks=1, max_fork_length=4)
        )
        cold = formal_analysis(adjacent.mdp, config)
        warm = formal_analysis(
            adjacent.mdp,
            config,
            initial_strategy_rows=seed.strategy.rows,
            initial_bias=seed.final_bias,
        )
        assert warm.errev_lower_bound == pytest.approx(cold.errev_lower_bound, abs=config.epsilon)
        assert warm.total_solver_iterations <= cold.total_solver_iterations

    def test_incompatible_warm_start_ignored(self, model):
        small = build_selfish_forks_mdp(
            ProtocolParams(p=0.3, gamma=0.5), AttackParams(depth=1, forks=1, max_fork_length=4)
        )
        donor = formal_analysis(small.mdp, AnalysisConfig(epsilon=1e-2))
        result = formal_analysis(
            model.mdp,
            AnalysisConfig(epsilon=1e-2),
            initial_strategy_rows=donor.strategy.rows,
            initial_bias=donor.final_bias,
        )
        assert result.interval_width < 1e-2

    def test_out_of_range_warm_start_rows_ignored(self, model):
        """Correct length but out-of-range row indices must fall back to cold."""
        import numpy as np

        bogus_rows = np.full(model.mdp.num_states, model.mdp.num_rows + 100, dtype=np.int64)
        result = formal_analysis(
            model.mdp, AnalysisConfig(epsilon=1e-2), initial_strategy_rows=bogus_rows
        )
        assert result.interval_width < 1e-2

    def test_iteration_log_carries_solver_counts(self, model):
        result = formal_analysis(model.mdp, AnalysisConfig(epsilon=1e-2))
        assert all(record.solver_iterations > 0 for record in result.iterations)
        assert result.total_solver_iterations >= sum(
            record.solver_iterations for record in result.iterations
        )
        assert result.final_bias is not None


class TestWorkerPortfolioHistory:
    def test_concurrent_lazy_init_yields_one_history(self):
        """Racing threads must share one history (regression: unguarded global).

        The lazy ``_WORKER_PORTFOLIO_HISTORY`` init is now lock-guarded
        (RL002); without the lock, two threads could each construct a history
        and record races into an instance the other never consults.
        """
        import threading

        from repro.core import engine as engine_mod
        from repro.core.engine import _portfolio_history_for

        engine_mod._WORKER_PORTFOLIO_HISTORY = None
        try:
            config = AnalysisConfig(epsilon=1e-2, solver="portfolio")
            barrier = threading.Barrier(8)
            histories = []

            def hit():
                barrier.wait()
                histories.append(_portfolio_history_for(config))

            threads = [threading.Thread(target=hit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(histories) == 8
            assert len({id(history) for history in histories}) == 1
            assert histories[0] is not None
        finally:
            engine_mod._WORKER_PORTFOLIO_HISTORY = None

    def test_non_portfolio_solver_gets_no_history(self):
        from repro.core.engine import _portfolio_history_for

        assert _portfolio_history_for(AnalysisConfig(epsilon=1e-2)) is None
