"""Unit tests of the shared-memory substrate (:mod:`repro.core.shm`).

The cross-process lifecycle invariants live in the conformance suite
(``test_shm_conformance.py``); this module covers the substrate's own pieces:
header encode/validate, layout arithmetic, the refcounted registry, and the
error paths of create/attach.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import shm
from repro.exceptions import ModelError

SPEC = shm.SegmentSpec(kind="unit-test", magic=0xABCD, version=3)


class TestSegmentSpec:
    def test_kind_charset_is_validated(self):
        with pytest.raises(ModelError, match="segment kind"):
            shm.SegmentSpec(kind="has space", magic=1, version=1)
        with pytest.raises(ModelError, match="segment kind"):
            shm.SegmentSpec(kind="", magic=1, version=1)

    def test_kind_names_the_segment(self):
        handle = shm.create_segment(SPEC, 16)
        try:
            assert handle.name.startswith(f"{shm.SEGMENT_PREFIX}{SPEC.kind}-")
        finally:
            handle.release()


class TestHeader:
    def test_write_read_round_trip(self):
        buf = memoryview(bytearray(shm.HEADER_BYTES + 32))
        shm.write_header(SPEC, buf, 32)
        assert shm.read_header(buf) == (SPEC.magic, SPEC.version, 32)
        assert shm.validate_header(SPEC, buf, source="test buffer") == 32

    def test_short_buffer_refused(self):
        with pytest.raises(ModelError, match="too small"):
            shm.read_header(memoryview(bytearray(8)))

    def test_foreign_magic_refused(self):
        buf = memoryview(bytearray(shm.HEADER_BYTES))
        with pytest.raises(ModelError, match="not a repro shared-memory segment"):
            shm.read_header(buf)

    def test_plane_magic_mismatch_refused(self):
        buf = memoryview(bytearray(shm.HEADER_BYTES))
        shm.write_header(shm.SegmentSpec(kind="other", magic=0x99, version=3), buf, 0)
        with pytest.raises(ModelError, match="plane magic mismatch"):
            shm.validate_header(SPEC, buf, source="test buffer")

    def test_version_mismatch_refused(self):
        buf = memoryview(bytearray(shm.HEADER_BYTES))
        shm.write_header(shm.SegmentSpec(kind=SPEC.kind, magic=SPEC.magic, version=2), buf, 0)
        with pytest.raises(ModelError, match="layout version 2"):
            shm.validate_header(SPEC, buf, source="test buffer")

    def test_payload_overrun_refused(self):
        buf = memoryview(bytearray(shm.HEADER_BYTES + 8))
        shm.write_header(SPEC, buf, 4096)
        with pytest.raises(ModelError, match="only 8 bytes are mapped"):
            shm.validate_header(SPEC, buf, source="test buffer")


class TestSegmentLayout:
    def test_regions_are_aligned_and_sized(self):
        layout = shm.SegmentLayout(
            [
                ("a", np.uint8, (3,)),
                ("b", np.float64, (2, 2)),
                ("c", np.uint32, (1,)),
            ]
        )
        assert layout.offsets["a"] == 0
        assert layout.offsets["b"] == shm.ALIGNMENT  # 3 bytes rounds up
        assert layout.offsets["b"] % shm.ALIGNMENT == 0
        assert layout.offsets["c"] == shm.align(layout.offsets["b"] + 32)
        assert layout.payload_size == layout.offsets["c"] + 4

    def test_duplicate_region_name_rejected(self):
        with pytest.raises(ModelError, match="duplicate region"):
            shm.SegmentLayout([("a", np.uint8, (1,)), ("a", np.uint8, (1,))])

    def test_map_views_share_the_segment(self):
        layout = shm.SegmentLayout([("counts", np.int64, (4,))])
        handle = shm.create_segment(SPEC, layout.payload_size, zero_payload=True)
        try:
            writer = layout.map(handle)["counts"]
            writer[:] = [1, 2, 3, 4]
            reader = layout.map(handle, writeable=False)["counts"]
            assert not reader.flags.writeable
            assert not reader.flags.owndata
            np.testing.assert_array_equal(reader, [1, 2, 3, 4])
            del writer, reader
        finally:
            handle.release()


class TestRegistry:
    def test_create_registers_and_release_unregisters(self):
        handle = shm.create_segment(SPEC, 16)
        name = handle.name
        assert shm.active_segment(name) is handle
        assert name in shm.active_segment_names(kind=SPEC.kind)
        assert shm.segment_refcount(name) == 1
        handle.release()
        assert shm.active_segment(name) is None
        assert shm.segment_refcount(name) is None

    def test_in_process_attach_dedups_and_refcounts(self):
        handle = shm.create_segment(SPEC, 16)
        name = handle.name
        again = shm.attach_segment(SPEC, name)
        assert again is handle
        assert shm.segment_refcount(name) == 2
        handle.release()
        assert not handle.closed, "one reference is still held"
        again.release()
        assert handle.closed

    def test_attach_with_conflicting_spec_refused(self):
        handle = shm.create_segment(SPEC, 16)
        try:
            other = shm.SegmentSpec(kind="unit-test", magic=SPEC.magic, version=99)
            with pytest.raises(ModelError, match="already open as"):
                shm.attach_segment(other, handle.name)
        finally:
            handle.release()

    def test_forget_is_scoped_by_kind(self):
        handle = shm.create_segment(SPEC, 16)
        other = shm.create_segment(shm.SegmentSpec(kind="unit-other", magic=1, version=1), 16)
        try:
            shm.forget_inherited_segments(kind="unit-other")
            assert shm.active_segment(handle.name) is handle
            assert shm.active_segment(other.name) is None
        finally:
            handle.release()
            # The forgotten handle still owns its mapping and unlink.
            other.release()

    def test_force_release_collapses_the_refcount(self):
        handle = shm.create_segment(SPEC, 16)
        shm.attach_segment(SPEC, handle.name)
        assert shm.segment_refcount(handle.name) == 2
        handle.force_release()  # the atexit backstop's path
        assert handle.closed

    def test_acquire_after_close_refused(self):
        handle = shm.create_segment(SPEC, 16)
        handle.release()
        with pytest.raises(ModelError, match="already closed"):
            handle.acquire()


class TestCreateErrors:
    def test_negative_payload_refused(self):
        with pytest.raises(ModelError, match="negative payload"):
            shm.create_segment(SPEC, -1)

    def test_zero_payload_segment_works(self):
        handle = shm.create_segment(SPEC, 0)
        try:
            assert shm.validate_header(SPEC, handle.buf, source="segment") == 0
        finally:
            handle.release()
