"""The plane-conformance suite: every substrate plane, one set of invariants.

Parametrized over every :data:`shm_conformance.CONTRACTS` entry (the raw
substrate, the model plane, the results plane) and -- for the cross-process
invariants -- over the ``fork`` and ``spawn`` start methods.  A future plane
inherits this entire suite by registering one
:class:`~shm_conformance.PlaneContract`.
"""

from __future__ import annotations

import multiprocessing

import pytest
from shm_conformance import (
    CONTRACTS,
    child_attach_and_sigkill,
    child_attach_verify_release,
    corrupt_header_word,
    shm_residue,
)

from repro.attacks import clear_structure_cache
from repro.core import shm
from repro.exceptions import ModelError

#: Generous bound on child-process work (spawn pays interpreter start-up).
_JOIN_SECONDS = 90

pytestmark = pytest.mark.parametrize("kind", sorted(CONTRACTS))


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_structure_cache()
    yield
    clear_structure_cache()


def segment_exists(name: str) -> bool:
    try:
        segment = shm.attach_segment_untracked(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def _run_child(start_method, target, *args):
    """Run ``target(*args)`` in a child process; return (process, queue)."""
    context = multiprocessing.get_context(start_method)
    queue = context.Queue()
    process = context.Process(target=target, args=(*args, queue))
    process.start()
    return process, queue


class TestInProcessLifecycle:
    def test_round_trip_after_forget_is_bit_for_bit(self, kind):
        """A real (non-dedup) attach sees exactly the creator's payload."""
        contract = CONTRACTS[kind]
        plane = contract.create()
        expected = contract.fingerprint(plane)
        try:
            contract.forget()  # force the worker-side mapping path
            attached = contract.attach(plane.name)
            try:
                assert contract.fingerprint(attached) == expected
            finally:
                attached.release()
        finally:
            plane.release()
        assert not segment_exists(plane.name)

    def test_double_release_is_idempotent(self, kind):
        contract = CONTRACTS[kind]
        plane = contract.create()
        name = plane.name
        plane.release()
        assert not segment_exists(name)
        plane.release()  # the atexit backstop and a finally may both fire
        assert not segment_exists(name)

    def test_attacher_release_never_unlinks(self, kind):
        contract = CONTRACTS[kind]
        plane = contract.create()
        try:
            contract.forget()
            attached = contract.attach(plane.name)
            attached.release()
            assert segment_exists(plane.name), "only the creator may unlink"
        finally:
            plane.release()
        assert not segment_exists(plane.name)

    def test_attach_unknown_name_raises_model_error(self, kind):
        contract = CONTRACTS[kind]
        with pytest.raises(ModelError):
            contract.attach(f"repro-{contract.spec.kind}-no-such-segment")

    def test_foreign_segment_refused(self, kind):
        """A segment of any *other* registered plane kind is refused loudly."""
        contract = CONTRACTS[kind]
        other = next(CONTRACTS[k] for k in sorted(CONTRACTS) if k != kind)
        foreign = other.create()
        try:
            contract.forget()
            other.forget()
            with pytest.raises(ModelError):
                contract.attach(foreign.name)
        finally:
            foreign.release()
        assert not segment_exists(foreign.name)

    def test_layout_version_mismatch_refused(self, kind):
        """A peer from another layout generation must refuse, not mis-decode."""
        contract = CONTRACTS[kind]
        plane = contract.create()
        try:
            contract.forget()
            corrupt_header_word(plane.name, 2, contract.spec.version + 1)
            with pytest.raises(ModelError, match="layout version"):
                contract.attach(plane.name)
        finally:
            plane.release()
        assert not segment_exists(plane.name)

    def test_substrate_magic_mismatch_refused(self, kind):
        """A segment that is not ours at all (no substrate magic) is refused."""
        contract = CONTRACTS[kind]
        plane = contract.create()
        try:
            contract.forget()
            corrupt_header_word(plane.name, 0, 0)
            with pytest.raises(ModelError, match="not a repro shared-memory segment"):
                contract.attach(plane.name)
        finally:
            plane.release()
        assert not segment_exists(plane.name)


class TestCrossProcessLifecycle:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_unlink_after_release_across_processes(self, kind, start_method):
        """A child's attach/release round trip leaves the unlink to the creator."""
        contract = CONTRACTS[kind]
        plane = contract.create()
        try:
            process, queue = _run_child(
                start_method, child_attach_verify_release, kind, plane.name
            )
            label, fingerprint = queue.get(timeout=_JOIN_SECONDS)
            process.join(timeout=_JOIN_SECONDS)
            assert label == "fingerprint"
            assert fingerprint == contract.fingerprint(plane), (
                f"{start_method} child saw a different payload"
            )
            assert process.exitcode == 0
            assert segment_exists(plane.name), "child release must not unlink"
        finally:
            plane.release()
        assert not segment_exists(plane.name)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_sigkilled_attacher_leaks_nothing(self, kind, start_method):
        """An attacher dying without cleanup neither unlinks nor leaks."""
        contract = CONTRACTS[kind]
        residue_before = shm_residue()
        plane = contract.create()
        process, queue = _run_child(start_method, child_attach_and_sigkill, kind, plane.name)
        try:
            label, _ = queue.get(timeout=_JOIN_SECONDS)
            assert label == "attached"
            process.join(timeout=_JOIN_SECONDS)
            assert process.exitcode == -9
            assert segment_exists(plane.name), "a crashed attacher must not unlink"
        finally:
            plane.release()
        assert not segment_exists(plane.name)
        assert shm_residue() == residue_before

    def test_no_devshm_residue_after_full_cycle(self, kind):
        contract = CONTRACTS[kind]
        residue_before = shm_residue()
        plane = contract.create()
        contract.forget()
        attached = contract.attach(plane.name)
        attached.release()
        plane.release()
        assert shm_residue() == residue_before
