"""Tests of deterministic fault injection (repro.core.faults) and the
recovery paths it drives.

Unit tests pin the plan grammar and Nth-hit semantics; the integration tests
fire each registered site through a real sweep (serial, pooled, and loopback
distributed) and assert the recovery invariant of the PR: injected faults
change scheduling and retry counters, never computed values.
"""

from __future__ import annotations

import itertools
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import AnalysisConfig, AttackParams
from repro.core.faults import (
    DEFAULT_POINT_RETRIES,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_fault_plan,
    backoff_delays,
    fault_stats,
    install_fault_plan,
    is_transient_error,
    maybe_fail,
    parse_fault_plan,
    point_retry_limit,
    reset_fault_plan,
)
from repro.core.sweep import SweepConfig, run_sweep
from repro.exceptions import ConfigurationError, ModelError

_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """No plan leaks into or out of any test (env *and* process-local state)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_fault_plan()
    yield
    reset_fault_plan()


def _grid(**overrides) -> dict:
    base = dict(
        p_values=(0.0, 0.1),
        gammas=(0.5,),
        attack_configs=(AttackParams(depth=1, forks=1),),
        analysis=AnalysisConfig(epsilon=1e-2),
    )
    base.update(overrides)
    return base


def _assert_same_points(expected, actual):
    assert [(point.p, point.gamma, point.series) for point in expected.points] == [
        (point.p, point.gamma, point.series) for point in actual.points
    ]
    for ours, theirs in zip(expected.points, actual.points):
        assert ours.errev == theirs.errev
        assert ours.beta_low == theirs.beta_low
        assert ours.beta_up == theirs.beta_up


def _arm(monkeypatch, spec: str) -> None:
    """Install a fault plan the way subprocesses receive it: via the env.

    ``reset_fault_plan()`` re-arms the lazy load so *this* process and any
    fork-started pool worker (which inherits the already-imported module)
    both pick the plan up from ``REPRO_FAULTS``.
    """
    monkeypatch.setenv("REPRO_FAULTS", spec)
    reset_fault_plan()


# ------------------------------------------------------------- plan grammar


def test_parse_fault_plan_grammar():
    plan = parse_fault_plan(
        "engine.point_transient:2, distributed.result_drop:1:3 ,shm.attach_fail:4:*"
    )
    assert plan.specs["engine.point_transient"] == FaultSpec(
        site="engine.point_transient", nth=2, count=1
    )
    assert plan.specs["distributed.result_drop"] == FaultSpec(
        site="distributed.result_drop", nth=1, count=3
    )
    assert plan.specs["shm.attach_fail"] == FaultSpec(
        site="shm.attach_fail", nth=4, count=None
    )


@pytest.mark.parametrize(
    "spec",
    [
        "nonexistent.site:1",
        "engine.point_transient",
        "engine.point_transient:0",
        "engine.point_transient:-1",
        "engine.point_transient:x",
        "engine.point_transient:1:0",
        "engine.point_transient:1:y",
        "engine.point_transient:1:2:3",
        "engine.point_transient:1,engine.point_transient:2",
    ],
)
def test_parse_fault_plan_rejects_malformed(spec):
    with pytest.raises(ConfigurationError):
        parse_fault_plan(spec)


def test_fault_spec_windows():
    assert [FaultSpec("s", nth=2).fires_on(hit) for hit in (1, 2, 3)] == [
        False, True, False,
    ]
    assert [FaultSpec("s", nth=2, count=2).fires_on(hit) for hit in (1, 2, 3, 4)] == [
        False, True, True, False,
    ]
    forever = FaultSpec("s", nth=3, count=None)
    assert [forever.fires_on(hit) for hit in (2, 3, 100)] == [False, True, True]


def test_plan_hits_are_deterministic_and_counted():
    plan = parse_fault_plan("engine.point_transient:2:2")
    fired = [plan.hit("engine.point_transient") for _ in range(5)]
    assert fired == [False, True, True, False, False]
    assert plan.stats()["engine.point_transient"] == {"hits": 5, "fired": 2}
    # An unplanned site is still counted (it just never fires).
    assert plan.hit("shm.attach_fail") is False
    assert plan.stats()["shm.attach_fail"] == {"hits": 1, "fired": 0}


# --------------------------------------------------------- process-wide plan


def test_maybe_fail_rejects_unregistered_site():
    with pytest.raises(ModelError, match="unregistered"):
        maybe_fail("made.up_site")


def test_no_plan_means_no_fire():
    assert maybe_fail("engine.point_transient") is False
    assert fault_stats() == {}


def test_plan_loads_lazily_from_env(monkeypatch):
    _arm(monkeypatch, "engine.point_transient:1")
    assert maybe_fail("engine.point_transient") is True
    assert maybe_fail("engine.point_transient") is False
    stats = fault_stats()
    assert stats["engine.point_transient"] == {"hits": 2, "fired": 1}
    # The env is read exactly once per process: changing it without a reset
    # does not re-install.
    monkeypatch.setenv("REPRO_FAULTS", "shm.attach_fail:1")
    assert maybe_fail("shm.attach_fail") is False
    reset_fault_plan()
    assert maybe_fail("shm.attach_fail") is True


def test_install_fault_plan_accepts_string_plan_and_none():
    installed = install_fault_plan("engine.point_transient:1")
    assert isinstance(installed, FaultPlan)
    assert active_fault_plan() is installed
    assert install_fault_plan(None) is None
    assert active_fault_plan() is None
    with pytest.raises(ConfigurationError):
        install_fault_plan("bogus:1")


def test_injected_fault_is_transient_model_error():
    fault = InjectedFault("engine.point_transient")
    assert isinstance(fault, ModelError)
    assert fault.site == "engine.point_transient"
    assert is_transient_error(fault)
    assert is_transient_error(ConnectionResetError())
    assert is_transient_error(OSError("shm blip"))
    assert not is_transient_error(ModelError("deterministic"))
    assert not is_transient_error(ConfigurationError("bad config"))
    assert not is_transient_error(ValueError("logic bug"))


def test_point_retry_limit_env_override(monkeypatch):
    assert point_retry_limit() == DEFAULT_POINT_RETRIES
    monkeypatch.setenv("REPRO_POINT_RETRIES", "5")
    assert point_retry_limit() == 5
    monkeypatch.setenv("REPRO_POINT_RETRIES", "0")
    assert point_retry_limit() == 0
    monkeypatch.setenv("REPRO_POINT_RETRIES", "-1")
    with pytest.raises(ConfigurationError):
        point_retry_limit()
    monkeypatch.setenv("REPRO_POINT_RETRIES", "many")
    with pytest.raises(ConfigurationError):
        point_retry_limit()


def test_backoff_delays_cap():
    delays = list(itertools.islice(backoff_delays(initial=0.25, cap=2.0), 6))
    assert delays == [0.25, 0.5, 1.0, 2.0, 2.0, 2.0]


def test_every_registered_site_has_a_description():
    for site, description in FAULT_SITES.items():
        assert "." in site and description


# ---------------------------------------------------------------- CLI wiring


def test_cli_rejects_bad_fault_spec_and_orphan_resume(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["sweep", "--inject-faults", "bogus:1"])
    assert "unknown fault site" in capsys.readouterr().err
    with pytest.raises(SystemExit, match="--resume requires --journal"):
        main(["sweep", "--resume"])
    with pytest.raises(SystemExit):
        main(["worker", "--connect", "127.0.0.1:1", "--reconnect-seconds", "-1"])


# ----------------------------------------------------- engine recovery paths


def test_transient_point_fault_is_retried_to_identical_values(monkeypatch):
    grid = _grid()
    clean = run_sweep(SweepConfig(**grid))
    _arm(monkeypatch, "engine.point_transient:1")
    recovered = run_sweep(SweepConfig(**grid))
    assert not recovered.failures
    _assert_same_points(clean, recovered)
    assert recovered.metadata["recovery"] == {"point_retries": 1}
    assert "recovery" not in clean.metadata


def test_exhausted_retries_record_a_failure(monkeypatch):
    _arm(monkeypatch, "engine.point_transient:1:*")
    failed = run_sweep(SweepConfig(**_grid()))
    # Every attempt of every attack point fails: the bounded retry loop gives
    # up and records failures instead of retrying forever.
    assert failed.failures
    assert all("injected fault" in failure.message for failure in failed.failures)
    # Failure isolation keeps the baselines: honest/single-tree still compute.
    assert {point.series for point in failed.points} >= {"honest"}


@pytest.mark.parametrize(
    "site", ["shm.attach_fail:1:*", "results_plane.attach_fail:1:*"]
)
def test_plane_attach_faults_degrade_without_changing_values(monkeypatch, site):
    grid = _grid(p_values=(0.0, 0.05, 0.1))
    clean = run_sweep(SweepConfig(**grid))
    _arm(monkeypatch, site)
    degraded = run_sweep(SweepConfig(**grid, workers=2))
    assert not degraded.failures
    _assert_same_points(clean, degraded)


def test_pooled_worker_crash_journals_cleanly_and_resumes(tmp_path, monkeypatch):
    grid = _grid(p_values=(0.0, 0.05, 0.1))
    clean = run_sweep(SweepConfig(**grid))
    journal = tmp_path / "sweep.journal"
    _arm(monkeypatch, "engine.worker_crash_pre_result:1")
    crashed = run_sweep(
        SweepConfig(**grid, workers=2, journal_path=str(journal))
    )
    assert crashed.failures  # every pool worker died on its first unit
    monkeypatch.delenv("REPRO_FAULTS")
    reset_fault_plan()
    resumed = run_sweep(
        SweepConfig(
            **grid, workers=2, journal_path=str(journal), journal_resume=True
        )
    )
    assert not resumed.failures
    _assert_same_points(clean, resumed)


def test_pooled_crash_after_result_preserves_published_points(
    tmp_path, monkeypatch
):
    grid = _grid(p_values=(0.0, 0.05, 0.1))
    clean = run_sweep(SweepConfig(**grid))
    journal = tmp_path / "sweep.journal"
    _arm(monkeypatch, "engine.worker_crash_post_result:1")
    crashed = run_sweep(
        SweepConfig(**grid, workers=2, journal_path=str(journal))
    )
    # The crash struck *after* the outcome reached the results plane: the
    # post-join drain must have preserved at least one computed point.
    survivors = [point for point in crashed.points if point.beta_low is not None]
    assert survivors
    monkeypatch.delenv("REPRO_FAULTS")
    reset_fault_plan()
    resumed = run_sweep(
        SweepConfig(
            **grid, workers=2, journal_path=str(journal), journal_resume=True
        )
    )
    assert not resumed.failures
    _assert_same_points(clean, resumed)
    assert resumed.metadata["journal"]["replayed"] >= 1


# ------------------------------------------------- distributed self-healing


def _free_port() -> int:
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    env.pop("REPRO_FAULTS", None)  # workers get faults via --inject-faults only
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--heartbeat-seconds", "1",
            "--connect-retry-seconds", "60",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _distributed_grid() -> dict:
    return _grid(
        p_values=(0.0, 0.05, 0.1, 0.15),
        attack_configs=(AttackParams(depth=1, forks=1), AttackParams(depth=2, forks=1)),
    )


def test_corrupt_result_frame_drops_and_reheals_worker():
    grid = _distributed_grid()
    serial = run_sweep(SweepConfig(**grid))
    port = _free_port()
    worker = _spawn_worker(
        port,
        "--reconnect-seconds", "120",
        "--inject-faults", "distributed.result_corrupt:1",
    )
    try:
        distributed = run_sweep(
            SweepConfig(**grid, coordinator=f"127.0.0.1:{port}")
        )
    finally:
        out, _ = worker.communicate(timeout=60)
    assert not distributed.failures
    _assert_same_points(serial, distributed)
    # The corrupted frame got the worker dropped; it redialled and completed
    # the sweep on its second connection.
    assert distributed.metadata["distributed"]["rejoined_workers"] >= 1
    assert worker.returncode == 0, out
    assert "reconnects=1" in out
    assert "clean shutdown" in out


def test_dropped_result_frame_is_recovered_by_duplication():
    from repro.core.distributed import run_distributed_sweep

    grid = _distributed_grid()
    serial = run_sweep(SweepConfig(**grid))
    port = _free_port()
    workers = [
        _spawn_worker(port, "--inject-faults", "distributed.result_drop:1"),
        _spawn_worker(port),
    ]
    try:
        distributed = run_distributed_sweep(
            SweepConfig(
                **grid, coordinator=f"127.0.0.1:{port}", distributed_workers=2
            ),
            heartbeat_seconds=1.0,
            straggler_seconds=2.0,
        )
    finally:
        for worker in workers:
            worker.communicate(timeout=60)
    assert not distributed.failures
    _assert_same_points(serial, distributed)
    # The dropped unit aged past the straggler deadline and was duplicated
    # onto the healthy worker (the dropping worker stayed alive throughout).
    assert distributed.metadata["distributed"]["duplicated_units"] >= 1


def test_stalled_heartbeats_get_worker_requeued():
    grid = _distributed_grid()
    serial = run_sweep(SweepConfig(**grid))
    port = _free_port()
    # Any frame refreshes liveness, so a worker that still ships results is
    # rightly never presumed dead; a truly hung host sends *nothing*.  Model
    # that by stalling every heartbeat AND dropping every result frame.
    stalled = _spawn_worker(
        port,
        "--reconnect-seconds", "5",
        "--inject-faults",
        "distributed.heartbeat_stall:1:*,distributed.result_drop:1:*",
    )
    healthy = _spawn_worker(port)
    from repro.core.distributed import run_distributed_sweep

    try:
        distributed = run_distributed_sweep(
            SweepConfig(
                **grid, coordinator=f"127.0.0.1:{port}", distributed_workers=2
            ),
            heartbeat_seconds=1.0,
        )
    finally:
        healthy.communicate(timeout=60)
        if stalled.poll() is None:
            stalled.kill()
        stalled.communicate(timeout=60)
    assert not distributed.failures
    _assert_same_points(serial, distributed)
    # The silent worker was presumed dead and its units were requeued.
    assert distributed.metadata["distributed"]["reassigned_units"] >= 1
