"""Reusable conformance harness for sweep execution backends.

Every backend of the execution plane (:mod:`repro.core.execution`) must
satisfy the same observable contract: bit-for-bit equality with the serial
reference on every certified value, zero structure builds inside worker
processes, journal resume that recomputes only the missing delta, per-point
failure isolation, and graceful cancellation that leaks no shared memory and
leaves a resumable journal behind.

Instead of every backend re-proving these with a hand-rolled copy of the same
tests, a backend registers a :class:`BackendContract` here and
``tests/core/test_execution_conformance.py`` runs the whole invariant suite
against it -- cross-process backends additionally under both the ``fork`` and
``spawn`` start methods.  A future backend (a remote batch queue, a GPU
dispatcher) picks the entire suite up by adding one contract.

This module is deliberately *not* named ``test_*``: it is imported by the
conformance test module, and its probe targets must be importable at module
top level so spawn-started pool workers can unpickle them by qualified name.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.attacks.structure import structure_cache_stats
from repro.config import AnalysisConfig, AttackParams
from repro.core.execution import PoolBackend, SweepPlan
from repro.core.results import SweepResult
from repro.core.sweep import SweepConfig, run_sweep
from repro.exceptions import ModelError

_SRC = Path(__file__).resolve().parents[2] / "src"


class SweepCancelled(Exception):
    """Raised from a progress callback to cancel a running sweep."""


# ------------------------------------------------------------------- the grid


def base_grid(**overrides) -> dict:
    """The tiny conformance grid: 2 p-values x 1 gamma x 2 attack series."""
    grid = dict(
        p_values=(0.0, 0.1),
        gammas=(0.5,),
        attack_configs=(
            AttackParams(depth=1, forks=1, max_fork_length=4),
            AttackParams(depth=2, forks=1, max_fork_length=4),
        ),
        analysis=AnalysisConfig(epsilon=1e-2),
    )
    grid.update(overrides)
    return grid


def failing_grid() -> dict:
    """A grid whose middle point (p = 1.5) raises inside the worker."""
    return dict(
        p_values=(0.1, 1.5, 0.3),
        gammas=(0.5,),
        attack_configs=(AttackParams(depth=1, forks=1, max_fork_length=4),),
        include_honest=False,
        include_single_tree=False,
        analysis=AnalysisConfig(epsilon=1e-2),
    )


@lru_cache(maxsize=None)
def serial_reference(chained: bool = False) -> SweepResult:
    """The uninterrupted serial run every backend must reproduce bit-for-bit."""
    grid = base_grid(reuse_p_axis_bounds=True) if chained else base_grid()
    return run_sweep(SweepConfig(**grid, workers=1))


def value_rows(result: SweepResult) -> List[Dict[str, object]]:
    """CSV rows minus wall-clock columns: the bit-for-bit comparable surface."""
    return [
        {key: value for key, value in point.to_row().items() if "seconds" not in key}
        for point in result.points
    ]


def assert_bit_for_bit(reference: SweepResult, result: SweepResult) -> None:
    """Every certified value (and the CSV value columns) agrees exactly."""
    assert value_rows(result) == value_rows(reference)
    for ours, theirs in zip(reference.points, result.points):
        assert (ours.p, ours.gamma, ours.series) == (theirs.p, theirs.gamma, theirs.series)
        assert ours.errev == theirs.errev
        assert ours.beta_low == theirs.beta_low
        assert ours.beta_up == theirs.beta_up
        assert ours.solver_iterations == theirs.solver_iterations


# -------------------------------------------------------------- config helper


def _config(grid: dict, *, journal_path=None, resume: bool = False, **extra) -> SweepConfig:
    kwargs = dict(grid)
    kwargs.update(extra)
    if journal_path is not None:
        kwargs.update(journal_path=str(journal_path), journal_resume=resume)
    return SweepConfig(**kwargs)


# --------------------------------------------------------------------- serial


def _serial_execute(grid: dict, *, progress=None, journal_path=None, resume=False):
    return run_sweep(
        _config(grid, journal_path=journal_path, resume=resume, workers=1),
        progress=progress,
    )


# ----------------------------------------------------------------------- pool


def _pool_execute(grid: dict, *, progress=None, journal_path=None, resume=False):
    return run_sweep(
        _config(grid, journal_path=journal_path, resume=resume, workers=2),
        progress=progress,
    )


def _pool_worker_builds(grid: dict) -> List[int]:
    """Per-worker build counts under the pool backend's own worker wiring.

    Uses the backend's ``start()`` to publish the model plane and derive the
    exact pool configuration a sweep would use (start method included, via
    ``REPRO_TEST_START_METHOD``), then asks every worker for its
    ``structure_cache_stats()`` instead of computing points.
    """
    backend = PoolBackend()
    backend.start(SweepPlan.build(_config(grid, workers=2)))
    try:
        kwargs = dict(backend._pool_kwargs)
        assert "initializer" in kwargs, "the pool backend must configure its workers"
        with ProcessPoolExecutor(max_workers=2, **kwargs) as pool:
            stats = [
                future.result()
                for future in [pool.submit(structure_cache_stats) for _ in range(4)]
            ]
    finally:
        backend.close()
    assert all(entry["attaches"] > 0 for entry in stats)
    return [entry["builds"] for entry in stats]


# -------------------------------------------------------------- distributed


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(port: int) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--heartbeat-seconds",
            "1",
            "--connect-retry-seconds",
            "30",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _distributed_execute(grid: dict, *, progress=None, journal_path=None, resume=False):
    port = _free_port()
    workers = [_spawn_worker(port) for _ in range(2)]
    try:
        return run_sweep(
            _config(
                grid,
                journal_path=journal_path,
                resume=resume,
                coordinator=f"127.0.0.1:{port}",
                distributed_workers=2,
            ),
            progress=progress,
        )
    finally:
        for worker in workers:
            # A resume that replays every unit never opens the fabric, so
            # workers may still be dialling; a terminate triggers their
            # graceful drain instead of a 30 s connect-retry wait.
            if worker.poll() is None:
                worker.terminate()
            worker.wait(timeout=60)


def _distributed_worker_builds(grid: dict) -> List[int]:
    """Per-worker build counts reported by the fabric after a loopback sweep."""
    result = _distributed_execute(grid)
    stats = result.metadata["distributed"]["workers"]
    assert stats and all(entry["attaches"] > 0 for entry in stats.values())
    return [entry["builds"] for entry in stats.values()]


# -------------------------------------------------------------- cancellation


def _cancel_via_progress(execute: Callable[..., SweepResult]):
    """Cancel by raising from the progress callback on the first outcome."""

    def cancel(grid: dict, journal_path) -> BaseException:
        def explode(message: str) -> None:
            if "ERRev=" in message:
                raise SweepCancelled(message)

        try:
            execute(grid, progress=explode, journal_path=journal_path)
        except SweepCancelled as exc:
            return exc
        raise AssertionError("sweep completed without reporting any outcome")

    return cancel


def _distributed_cancel(grid: dict, journal_path) -> BaseException:
    """Cancel by deadline: no worker ever connects, the coordinator times out."""
    config = _config(
        grid,
        journal_path=journal_path,
        coordinator="127.0.0.1:0",
        distributed_workers=1,
    )
    from repro.core.distributed import run_distributed_sweep

    try:
        run_distributed_sweep(config, timeout=0.5)
    except ModelError as exc:
        return exc
    raise AssertionError("coordinator finished without any worker")


# -------------------------------------------------------------------- registry


@dataclass(frozen=True)
class BackendContract:
    """What one execution backend must provide to inherit the suite.

    ``execute`` runs a sweep end-to-end (spawning loopback workers if the
    backend needs them); ``cancel`` provokes a mid-sweep cancellation and
    returns the exception that aborted it; ``worker_builds`` reports the
    structure builds performed inside worker processes (``None`` for backends
    without workers); ``cross_process`` opts the contract into the fork/spawn
    start-method matrix; ``journals_before_cancel`` states whether a
    cancellation can leave already-merged points in the journal.
    """

    kind: str
    cross_process: bool
    execute: Callable[..., SweepResult]
    cancel: Callable[[dict, Any], BaseException]
    cancelled_type: type
    journals_before_cancel: bool
    worker_builds: Optional[Callable[[dict], List[int]]] = None


CONTRACTS: Dict[str, BackendContract] = {
    "serial": BackendContract(
        kind="serial",
        cross_process=False,
        execute=_serial_execute,
        cancel=_cancel_via_progress(_serial_execute),
        cancelled_type=SweepCancelled,
        journals_before_cancel=True,
    ),
    "pool": BackendContract(
        kind="pool",
        cross_process=True,
        execute=_pool_execute,
        cancel=_cancel_via_progress(_pool_execute),
        cancelled_type=SweepCancelled,
        journals_before_cancel=True,
        worker_builds=_pool_worker_builds,
    ),
    "distributed": BackendContract(
        kind="distributed",
        cross_process=False,
        execute=_distributed_execute,
        cancel=_distributed_cancel,
        cancelled_type=ModelError,
        journals_before_cancel=False,
        worker_builds=_distributed_worker_builds,
    ),
}
