"""Tests of the durable sweep journal (repro.core.journal).

Unit tests cover the record format (checksums, torn tails, mid-file
corruption, fingerprint pinning); the integration tests prove the acceptance
property of the PR: a sweep -- serial, pooled or a loopback distributed
fabric whose coordinator is SIGKILLed mid-run -- restarted with
``--journal PATH --resume`` recomputes only the unjournaled delta and
produces a bit-for-bit identical result.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import AnalysisConfig, AttackParams
from repro.core.engine import PointOutcome
from repro.core.journal import (
    FSYNC_POLICIES,
    SweepJournal,
    decode_record,
    encode_record,
    journal_fingerprint,
)
from repro.core.sweep import SweepConfig, run_sweep
from repro.exceptions import ConfigurationError, ModelError

_SRC = Path(__file__).resolve().parents[2] / "src"


def _grid(**overrides) -> dict:
    base = dict(
        p_values=(0.0, 0.1),
        gammas=(0.5,),
        attack_configs=(AttackParams(depth=1, forks=1),),
        analysis=AnalysisConfig(epsilon=1e-2),
    )
    base.update(overrides)
    return base


def _distributed_grid(**overrides) -> dict:
    return _grid(
        p_values=(0.0, 0.05, 0.1, 0.15),
        attack_configs=(AttackParams(depth=1, forks=1), AttackParams(depth=2, forks=1)),
        **overrides,
    )


def _assert_same_points(expected, actual):
    assert [(point.p, point.gamma, point.series) for point in expected.points] == [
        (point.p, point.gamma, point.series) for point in actual.points
    ]
    for ours, theirs in zip(expected.points, actual.points):
        assert ours.errev == theirs.errev
        assert ours.beta_low == theirs.beta_low
        assert ours.beta_up == theirs.beta_up
        assert ours.solver_iterations == theirs.solver_iterations


def _journal_lines(path: Path) -> list:
    """The complete (newline-terminated) lines of a journal file."""
    data = path.read_bytes()
    complete, _, _tail = data.rpartition(b"\n")
    return complete.split(b"\n") if complete else []


def _point_record_count(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    for line in _journal_lines(path):
        record = decode_record(line)
        if record is not None and record.get("kind") == "point":
            count += 1
    return count


def _truncate_to_points(path: Path, keep: int) -> None:
    """Rewrite the journal keeping the meta record and the first ``keep`` points."""
    lines = _journal_lines(path)
    kept, points = [], 0
    for line in lines:
        record = decode_record(line)
        assert record is not None
        if record.get("kind") == "point":
            if points >= keep:
                continue
            points += 1
        kept.append(line)
    path.write_bytes(b"\n".join(kept) + b"\n")


# ------------------------------------------------------------- record format


def test_record_roundtrip_and_checksum_rejection():
    record = {"kind": "point", "outcome": {"p": 0.30000000000000004, "n": None}}
    line = encode_record(record)
    assert line.endswith(b"\n")
    assert decode_record(line[:-1]) == record
    # Any tampering with the payload must fail the checksum.
    tampered = line[:-1].replace(b"0.30000000000000004", b"0.31")
    assert decode_record(tampered) is None
    assert decode_record(b"not json at all") is None
    assert decode_record(b'{"crc": "00000000"}') is None


def test_fingerprint_pins_values_not_scheduling():
    config = SweepConfig(**_grid())
    fingerprint = journal_fingerprint(config)
    assert fingerprint == journal_fingerprint(SweepConfig(**_grid(), workers=4))
    assert fingerprint != journal_fingerprint(
        SweepConfig(**_grid(analysis=AnalysisConfig(epsilon=5e-3)))
    )
    assert fingerprint != journal_fingerprint(SweepConfig(**_grid(p_values=(0.0, 0.2))))


def test_open_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ConfigurationError, match="fsync"):
        SweepJournal.open(tmp_path / "j", SweepConfig(**_grid()), fsync="sometimes")
    assert FSYNC_POLICIES == ("never", "close", "always")


def test_record_after_close_raises(tmp_path):
    journal = SweepJournal.open(tmp_path / "j", SweepConfig(**_grid()))
    journal.close()
    journal.close()  # idempotent
    outcome = PointOutcome(
        gamma_index=0, p_index=0, attack_index=0, p=0.0, gamma=0.5,
        series="s", errev=0.0, seconds=0.0, solver_iterations=0, num_states=1,
    )
    with pytest.raises(ModelError, match="closed"):
        journal.record(outcome)


# ------------------------------------------------- torn tails and corruption


def test_torn_tail_is_truncated_on_resume(tmp_path):
    path = tmp_path / "sweep.journal"
    grid = _grid()
    clean = run_sweep(SweepConfig(**grid, journal_path=str(path)))
    intact_points = _point_record_count(path)
    # Simulate a crash mid-append: a final line without its newline.
    with open(path, "ab") as handle:
        handle.write(b'{"crc": "dead', )
    resumed = run_sweep(
        SweepConfig(**grid, journal_path=str(path), journal_resume=True)
    )
    assert resumed.metadata["journal"]["replayed"] == intact_points
    _assert_same_points(clean, resumed)
    # A complete-but-checksum-invalid final line is the same torn-tail case.
    with open(path, "ab") as handle:
        handle.write(b'{"crc": "00000000", "record": {"kind": "point"}}\n')
    resumed_again = run_sweep(
        SweepConfig(**grid, journal_path=str(path), journal_resume=True)
    )
    _assert_same_points(clean, resumed_again)


def test_mid_file_corruption_is_rejected(tmp_path):
    path = tmp_path / "sweep.journal"
    grid = _grid()
    run_sweep(SweepConfig(**grid, journal_path=str(path)))
    lines = _journal_lines(path)
    assert len(lines) >= 3  # meta + at least two points
    lines[1] = lines[1][:-1] + (b"!" if lines[1][-1:] != b"!" else b"?")
    path.write_bytes(b"\n".join(lines) + b"\n")
    with pytest.raises(ModelError, match="corrupt"):
        run_sweep(SweepConfig(**grid, journal_path=str(path), journal_resume=True))


def test_resume_refuses_foreign_fingerprint(tmp_path):
    path = tmp_path / "sweep.journal"
    run_sweep(SweepConfig(**_grid(), journal_path=str(path)))
    other = _grid(analysis=AnalysisConfig(epsilon=5e-3))
    with pytest.raises(ModelError, match="different sweep"):
        run_sweep(SweepConfig(**other, journal_path=str(path), journal_resume=True))


def test_errored_records_are_recomputed_on_resume(tmp_path):
    path = tmp_path / "sweep.journal"
    grid = _grid()
    config = SweepConfig(**grid)
    with SweepJournal.open(path, config) as journal:
        journal.record(
            PointOutcome(
                gamma_index=0, p_index=0, attack_index=0, p=0.0, gamma=0.5,
                series="ours(d=1,f=1)", errev=None, seconds=0.0,
                solver_iterations=0, num_states=0, error="worker crashed",
            )
        )
    resumed = run_sweep(
        SweepConfig(**grid, journal_path=str(path), journal_resume=True)
    )
    # The errored record is not replayed: every point is recomputed cleanly.
    assert resumed.metadata["journal"]["replayed"] == 0
    assert not resumed.failures
    _assert_same_points(run_sweep(config), resumed)


# ------------------------------------------------------------ resume = delta


@pytest.mark.parametrize("workers", [1, 2])
def test_resume_computes_only_the_delta_bit_for_bit(tmp_path, workers):
    path = tmp_path / "sweep.journal"
    grid = _grid(p_values=(0.0, 0.05, 0.1))
    clean = run_sweep(SweepConfig(**grid))
    full = run_sweep(SweepConfig(**grid, workers=workers, journal_path=str(path)))
    _assert_same_points(clean, full)
    total = _point_record_count(path)
    # Only attack points are journaled; the honest / single-tree baselines
    # are recomputed per run (they are closed-form, not solver work).
    assert total == len(grid["p_values"]) * len(grid["gammas"]) * len(
        grid["attack_configs"]
    )
    _truncate_to_points(path, 1)
    resumed = run_sweep(
        SweepConfig(
            **grid, workers=workers, journal_path=str(path), journal_resume=True
        )
    )
    _assert_same_points(clean, resumed)
    meta = resumed.metadata["journal"]
    assert meta["replayed"] == 1
    assert meta["recorded"] == total - 1
    assert meta["skipped_units"] >= 1
    # The journal is canonical again: a further resume computes nothing.
    rerun = run_sweep(
        SweepConfig(
            **grid, workers=workers, journal_path=str(path), journal_resume=True
        )
    )
    assert rerun.metadata["journal"]["replayed"] == total
    assert rerun.metadata["journal"]["recorded"] == 0
    _assert_same_points(clean, rerun)


def test_resume_recomputes_partial_chained_series_whole(tmp_path):
    path = tmp_path / "sweep.journal"
    grid = _grid(p_values=(0.0, 0.05, 0.1), reuse_p_axis_bounds=True)
    clean = run_sweep(SweepConfig(**grid))
    run_sweep(SweepConfig(**grid, journal_path=str(path)))
    total = _point_record_count(path)
    _truncate_to_points(path, 1)
    resumed = run_sweep(
        SweepConfig(**grid, journal_path=str(path), journal_resume=True)
    )
    # The chained series has one unit spanning all p: a partial journal must
    # not skip it (the tail depends on the head), so nothing is skipped and
    # the whole series is recomputed -- to identical values.
    meta = resumed.metadata["journal"]
    assert meta["skipped_units"] == 0
    assert meta["replayed"] == 1
    assert meta["recorded"] == total - 1  # replayed keys are not re-appended
    _assert_same_points(clean, resumed)


def test_fsync_policies_produce_identical_journals(tmp_path):
    def normalized(path: Path) -> list:
        records = [decode_record(line) for line in _journal_lines(path)]
        assert all(record is not None for record in records)
        for record in records:
            record.get("outcome", {}).pop("seconds", None)  # wall clock varies
        return records

    grid = _grid()
    journals = {}
    for policy in FSYNC_POLICIES:
        path = tmp_path / f"{policy}.journal"
        run_sweep(SweepConfig(**grid, journal_path=str(path), journal_fsync=policy))
        journals[policy] = normalized(path)
    assert journals["never"] == journals["close"] == journals["always"]


# ------------------------------------------- distributed SIGKILL acceptance


def _free_port() -> int:
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--heartbeat-seconds", "1",
            "--connect-retry-seconds", "60",
            "--reconnect-seconds", "180",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def test_sigkilled_coordinator_resumes_bit_for_bit(tmp_path):
    """The PR's acceptance scenario: SIGKILL the distributed coordinator
    mid-sweep, restart it on the same port with ``--resume``, and the fleet
    reconnects and completes only the unjournaled delta -- bit-for-bit equal
    to an uninterrupted serial run."""
    grid = _distributed_grid()
    serial = run_sweep(SweepConfig(**grid))
    journal = tmp_path / "sweep.journal"
    port = _free_port()
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    coordinator = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--distributed", "--listen", f"127.0.0.1:{port}",
            "--gamma", "0.5", "--p-max", "0.15", "--p-step", "0.05",
            "--epsilon", "0.01",
            "--journal", str(journal), "--journal-fsync", "always",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    workers = [_spawn_worker(port) for _ in range(2)]
    try:
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            if _point_record_count(journal) >= 2:
                break
            if coordinator.poll() is not None:
                pytest.fail("coordinator exited before any kill")
            time.sleep(0.1)
        else:
            pytest.fail("no journaled points before the deadline")
        coordinator.kill()  # SIGKILL: no atexit, no flush beyond per-record
        coordinator.wait(timeout=30)
        replay_floor = _point_record_count(journal)
        assert replay_floor >= 2
        resumed = run_sweep(
            SweepConfig(
                **grid,
                coordinator=f"127.0.0.1:{port}",
                journal_path=str(journal),
                journal_resume=True,
            )
        )
    finally:
        if coordinator.poll() is None:
            coordinator.kill()
        outputs = []
        for worker in workers:
            try:
                out, _ = worker.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                # A worker whose reconnect backoff straddled the resumed
                # coordinator's (short) listener window never hears the
                # shutdown frame and keeps dialing the now-closed port for
                # the rest of its --reconnect-seconds budget.  That is the
                # documented behaviour, not a hang: drain it over the
                # signal path it advertises instead of waiting it out.
                worker.terminate()
                out, _ = worker.communicate(timeout=30)
            outputs.append(out)
    assert not resumed.failures
    _assert_same_points(serial, resumed)
    meta = resumed.metadata["journal"]
    assert meta["replayed"] >= 2
    assert meta["replayed"] + meta["recorded"] == 8
    assert meta["skipped_units"] == meta["replayed"]
    # The fleet self-healed: worker processes that re-established served the
    # resumed coordinator and exited cleanly on its shutdown.  A worker that
    # lost the reconnect race above exits over the drain path instead; the
    # scenario only requires that the delta was computed by a reconnected
    # worker, which the journal arithmetic above already pins.
    for out in outputs:
        assert "reconnects=" in out
    healed = [
        out
        for worker, out in zip(workers, outputs)
        if worker.returncode == 0 and "clean shutdown" in out
    ]
    assert healed, outputs
    assert any(re.search(r"reconnects=[1-9]", out) for out in healed), outputs


def test_fully_journaled_distributed_sweep_skips_the_fabric(tmp_path):
    """Resuming a complete journal must not wait for any worker."""
    grid = _grid()
    journal = tmp_path / "sweep.journal"
    clean = run_sweep(SweepConfig(**grid, journal_path=str(journal)))
    resumed = run_sweep(
        SweepConfig(
            **grid,
            coordinator=f"127.0.0.1:{_free_port()}",
            journal_path=str(journal),
            journal_resume=True,
        )
    )
    _assert_same_points(clean, resumed)
    assert resumed.metadata["journal"]["recorded"] == 0


def test_journal_lines_are_valid_json(tmp_path):
    path = tmp_path / "sweep.journal"
    run_sweep(SweepConfig(**_grid(), journal_path=str(path)))
    lines = _journal_lines(path)
    assert decode_record(lines[0])["kind"] == "meta"
    for line in lines:
        envelope = json.loads(line)
        assert set(envelope) == {"crc", "record"}
