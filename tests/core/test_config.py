"""Tests of the parameter containers."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams
from repro.config import PAPER_ATTACK_CONFIGS, PAPER_GAMMAS
from repro.exceptions import ConfigurationError


class TestProtocolParams:
    def test_defaults(self):
        params = ProtocolParams()
        assert params.p == 0.3
        assert params.gamma == 0.5
        assert params.honest_fraction() == pytest.approx(0.7)

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2.0])
    def test_invalid_p_rejected(self, p):
        with pytest.raises(ConfigurationError):
            ProtocolParams(p=p)

    @pytest.mark.parametrize("gamma", [-0.5, 1.5])
    def test_invalid_gamma_rejected(self, gamma):
        with pytest.raises(ConfigurationError):
            ProtocolParams(gamma=gamma)

    def test_with_p_and_with_gamma(self):
        params = ProtocolParams(p=0.2, gamma=0.4)
        assert params.with_p(0.25).p == 0.25
        assert params.with_p(0.25).gamma == 0.4
        assert params.with_gamma(0.9).gamma == 0.9

    def test_boundary_values_allowed(self):
        assert ProtocolParams(p=0.0, gamma=0.0).p == 0.0
        assert ProtocolParams(p=1.0, gamma=1.0).gamma == 1.0

    def test_to_dict(self):
        assert ProtocolParams(p=0.1, gamma=0.2).to_dict() == {"p": 0.1, "gamma": 0.2}

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ProtocolParams().p = 0.5  # type: ignore[misc]


class TestAttackParams:
    def test_defaults_and_aliases(self):
        params = AttackParams()
        assert (params.d, params.f, params.l) == (params.depth, params.forks, params.max_fork_length)

    @pytest.mark.parametrize("field", ["depth", "forks", "max_fork_length"])
    @pytest.mark.parametrize("value", [0, -1, 1.5, "two"])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            AttackParams(**{field: value})

    def test_max_mining_targets(self):
        assert AttackParams(depth=3, forks=2).max_mining_targets() == 6

    def test_to_dict(self):
        params = AttackParams(depth=2, forks=2, max_fork_length=3)
        assert params.to_dict() == {
            "depth": 2,
            "forks": 2,
            "max_fork_length": 3,
            "scenario": "selfish-forks",
            "variant": "",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            AttackParams(scenario="no-such-scenario")

    def test_variant_must_be_string(self):
        with pytest.raises(ConfigurationError, match="variant"):
            AttackParams(variant=3)

    def test_paper_configurations(self):
        assert len(PAPER_ATTACK_CONFIGS) == 5
        assert all(config.max_fork_length == 4 for config in PAPER_ATTACK_CONFIGS)
        assert [(c.depth, c.forks) for c in PAPER_ATTACK_CONFIGS] == [
            (1, 1),
            (2, 1),
            (2, 2),
            (3, 2),
            (4, 2),
        ]

    def test_paper_gammas(self):
        assert PAPER_GAMMAS == (0.0, 0.25, 0.5, 0.75, 1.0)


class TestAnalysisConfig:
    def test_defaults(self):
        config = AnalysisConfig()
        assert config.solver == "policy_iteration"
        assert config.evaluate_strategy

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(epsilon=0.0)

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            AnalysisConfig(solver="storm")

    def test_invalid_iteration_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(max_solver_iterations=0)

    def test_to_dict_roundtrip_keys(self):
        config = AnalysisConfig(epsilon=1e-2)
        data = config.to_dict()
        assert data["epsilon"] == 1e-2
        assert set(data) == {
            "epsilon",
            "solver",
            "solver_tolerance",
            "max_solver_iterations",
            "evaluate_strategy",
            "warm_start",
            "batch_probes",
            "portfolio_deadline",
        }

    def test_negative_epsilon_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            AnalysisConfig(epsilon=-1e-3)

    def test_portfolio_solver_accepted(self):
        assert AnalysisConfig(solver="portfolio").solver == "portfolio"

    @pytest.mark.parametrize("batch_probes", [0, -1, 1.5])
    def test_invalid_batch_probes_rejected(self, batch_probes):
        with pytest.raises(ConfigurationError, match="batch_probes"):
            AnalysisConfig(batch_probes=batch_probes)

    def test_invalid_portfolio_deadline_rejected(self):
        with pytest.raises(ConfigurationError, match="portfolio_deadline"):
            AnalysisConfig(portfolio_deadline=0.0)


class TestSweepConfigValidation:
    def test_defaults_valid(self):
        from repro import SweepConfig

        assert SweepConfig().workers == 1

    @pytest.mark.parametrize("workers", [0, -2])
    def test_invalid_workers_rejected_with_message(self, workers):
        from repro import SweepConfig

        with pytest.raises(ConfigurationError, match="workers must be >= 1"):
            SweepConfig(workers=workers)

    def test_non_integer_workers_rejected(self):
        from repro import SweepConfig

        with pytest.raises(ConfigurationError, match="workers"):
            SweepConfig(workers=2.5)

    def test_negative_epsilon_surfaces_from_analysis_config(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            AnalysisConfig(epsilon=-0.5)

    def test_empty_grids_rejected(self):
        from repro import SweepConfig

        with pytest.raises(ConfigurationError, match="p_values"):
            SweepConfig(p_values=())
        with pytest.raises(ConfigurationError, match="gammas"):
            SweepConfig(gammas=())

    def test_non_config_analysis_rejected(self):
        from repro import SweepConfig

        with pytest.raises(ConfigurationError, match="AnalysisConfig"):
            SweepConfig(analysis={"epsilon": 1e-3})
