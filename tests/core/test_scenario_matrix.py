"""Cross-scenario engine matrix: every engine feature on every registered scenario.

The tentpole contract of the attack registry: the sweep engine, the shared
model/results planes and the distributed fabric are scenario-generic.  This
module runs both built-in scenarios through serial, pooled (fork and spawn)
and distributed-loopback execution and checks bit-for-bit agreement with the
serial run, plus the loud-failure paths (mixed grids, scenario-mismatched
workers).
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.attacks.registry import scenario_id_for
from repro.config import AnalysisConfig, AttackParams, ProtocolParams
from repro.core.distributed import (
    decode_frame,
    encode_frame,
    run_distributed_sweep,
)
from repro.core.sweep import SweepConfig, run_sweep
from repro.exceptions import ConfigurationError

SCENARIOS = ("selfish-forks", "sm-actions")


def scenario_grid(scenario: str, **overrides) -> SweepConfig:
    if scenario == "selfish-forks":
        attack_configs = (
            AttackParams(depth=1, forks=1, max_fork_length=4),
            AttackParams(depth=2, forks=1, max_fork_length=4),
        )
    else:
        attack_configs = (
            AttackParams(depth=1, forks=1, max_fork_length=4, scenario="sm-actions"),
            AttackParams(
                depth=1,
                forks=1,
                max_fork_length=4,
                scenario="sm-actions",
                variant="overpaying",
            ),
        )
    base = dict(
        p_values=(0.0, 0.15, 0.3),
        gammas=(0.5,),
        attack_configs=attack_configs,
        attack=scenario,
        include_single_tree=False,
        analysis=AnalysisConfig(epsilon=1e-2),
    )
    base.update(overrides)
    return SweepConfig(**base)


def point_tuples(sweep):
    return [
        (point.p, point.gamma, point.series, point.errev, point.beta_low, point.beta_up)
        for point in sweep.points
    ]


class TestPooledMatchesSerial:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_pooled_bit_for_bit(self, scenario):
        serial = run_sweep(scenario_grid(scenario))
        pooled = run_sweep(scenario_grid(scenario, workers=2))
        assert not serial.failures and not pooled.failures
        assert point_tuples(pooled) == point_tuples(serial)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_spawn_pool_bit_for_bit(self, scenario, monkeypatch):
        serial = run_sweep(scenario_grid(scenario))
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "spawn")
        spawned = run_sweep(scenario_grid(scenario, workers=2))
        assert not spawned.failures
        assert point_tuples(spawned) == point_tuples(serial)

    def test_attack_points_carry_scenario_id(self):
        sweep = run_sweep(scenario_grid("sm-actions"))
        attack_points = [p for p in sweep.points if p.series.startswith("sm-actions")]
        assert attack_points
        for point in attack_points:
            assert point.scenario == scenario_id_for("sm-actions")
            assert point.to_row()["scenario"] == point.scenario
        for point in sweep.points:
            if point.series == "honest":
                assert point.scenario is None
                assert "scenario" not in point.to_row()


class TestConfigurationGuards:
    def test_mixed_scenario_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="mixed-scenario"):
            SweepConfig(
                p_values=(0.1,),
                gammas=(0.5,),
                attack_configs=(
                    AttackParams(depth=1, forks=1),
                    AttackParams(depth=1, forks=1, scenario="sm-actions"),
                ),
            )

    def test_attack_name_conflicting_with_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicts"):
            SweepConfig(
                p_values=(0.1,),
                gammas=(0.5,),
                attack_configs=(AttackParams(depth=1, forks=1, scenario="sm-actions"),),
                attack="selfish-forks",
            )

    def test_attack_name_swaps_in_default_grid(self):
        config = SweepConfig(p_values=(0.1,), gammas=(0.5,), attack="sm-actions")
        assert all(a.scenario == "sm-actions" for a in config.attack_configs)
        assert len(config.attack_configs) >= 2

    def test_unknown_attack_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack scenario"):
            SweepConfig(p_values=(0.1,), gammas=(0.5,), attack="no-such-attack")


# ------------------------------------------------------------------ loopback

_SRC = Path(__file__).resolve().parents[2] / "src"


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(port: int, *, capacity: int = 1) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--capacity",
            str(capacity),
            "--heartbeat-seconds",
            "1",
            "--connect-retry-seconds",
            "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


class TestDistributedLoopback:
    def test_sm_actions_distributed_matches_serial_with_zero_builds(self):
        grid = scenario_grid("sm-actions")
        serial = run_sweep(grid)
        port = _free_port()
        worker = _spawn_worker(port, capacity=2)
        try:
            distributed = run_sweep(
                scenario_grid("sm-actions", coordinator=f"127.0.0.1:{port}")
            )
        finally:
            out, _ = worker.communicate(timeout=30)
        assert not distributed.failures
        assert point_tuples(distributed) == point_tuples(serial)
        fabric = distributed.metadata["distributed"]
        for name, stats in fabric["workers"].items():
            assert stats["builds"] == 0, name
            assert stats["attaches"] > 0, name
        assert worker.returncode == 0
        assert "builds=0" in out


def _read_frame_blocking(sock: socket.socket) -> dict:
    def read_exact(count: int) -> bytes:
        data = b""
        while len(data) < count:
            chunk = sock.recv(count - len(data))
            if not chunk:
                raise ConnectionError("peer closed")
            data += chunk
        return data

    (body_len,) = struct.unpack(">I", read_exact(4))
    header, _ = decode_frame(read_exact(body_len))
    return header


class TestScenarioHandshake:
    def test_mismatched_worker_hello_is_refused(self):
        """A worker not implementing the sweep's scenario draws an error frame.

        The hello is otherwise perfectly valid (right protocol, sane capacity
        and heartbeat) -- only the advertised scenario list is wrong: stale
        version, wrong family, or no list at all (a pre-registry worker).  The
        sweep itself must survive and complete on a healthy worker.
        """
        listening = threading.Event()
        bound = {}

        def on_listen(host: str, port: int) -> None:
            bound["port"] = port
            listening.set()

        grid = scenario_grid(
            "sm-actions", p_values=(0.0, 0.15), coordinator="127.0.0.1:0"
        )
        result = {}

        def coordinate() -> None:
            result["sweep"] = run_distributed_sweep(
                grid, timeout=120.0, on_listen=on_listen
            )

        coordinator = threading.Thread(target=coordinate, daemon=True)
        coordinator.start()
        assert listening.wait(timeout=30.0), "coordinator never started listening"
        port = bound["port"]

        mismatched_hellos = [
            {"type": "hello", "protocol": 1, "capacity": 1, "scenarios": ["sm-actions@999"]},
            {"type": "hello", "protocol": 1, "capacity": 1, "scenarios": ["selfish-forks@1"]},
            {"type": "hello", "protocol": 1, "capacity": 1},  # advertises nothing
            {"type": "hello", "protocol": 1, "capacity": 1, "scenarios": "sm-actions@1"},
        ]
        for hello in mismatched_hellos:
            with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
                sock.sendall(encode_frame(hello))
                header = _read_frame_blocking(sock)
                assert header["type"] == "error", hello
                assert "scenario" in header["message"], header["message"]

        worker = _spawn_worker(port)
        try:
            deadline = time.monotonic() + 120.0
            while coordinator.is_alive() and time.monotonic() < deadline:
                coordinator.join(timeout=0.5)
        finally:
            out, _ = worker.communicate(timeout=30)
        assert not coordinator.is_alive(), "sweep never completed after bad hellos"
        sweep = result["sweep"]
        assert not sweep.failures
        serial = run_sweep(scenario_grid("sm-actions", p_values=(0.0, 0.15)))
        assert point_tuples(sweep) == point_tuples(serial)
        assert worker.returncode == 0
        assert "clean shutdown" in out
