"""Tests of the shared-memory model plane (:mod:`repro.core.shared_structures`).

Three contracts are exercised: the buffer round trip reproduces the in-process
structure bit for bit, attached workers perform zero explorations, and the
segment lifecycle never leaks -- unlinked after a clean pool shutdown and after
a simulated worker crash alike.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import AnalysisConfig, AttackParams, ProtocolParams, SweepConfig
from repro.attacks import (
    clear_structure_cache,
    get_model_structure,
    structure_cache_stats,
)
from repro.attacks.structure import SelfishForksStructure
from repro.core.engine import _initialize_worker, execute_sweep
from repro.core.shared_structures import (
    active_plane_names,
    attach_structures,
    forget_inherited_planes,
    plane_refcount,
    publish_structures,
)
from repro.exceptions import ModelError

PROTOCOL = ProtocolParams(p=0.3, gamma=0.5)
ATTACK = AttackParams(depth=2, forks=1, max_fork_length=4)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_structure_cache()
    yield
    clear_structure_cache()


def segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def assert_structures_identical(left: SelfishForksStructure, right: SelfishForksStructure):
    assert left.attack == right.attack
    assert left.signature == right.signature
    assert left.initial_state == right.initial_state
    assert left.state_labels == right.state_labels
    assert left.row_actions == right.row_actions
    for key in (
        "row_state",
        "state_row_offsets",
        "row_trans_offsets",
        "trans_succ",
        "trans_kind",
        "trans_sigma",
        "trans_mult",
        "trans_reward",
    ):
        left_array, right_array = getattr(left, key), getattr(right, key)
        assert left_array.dtype == right_array.dtype, key
        assert np.array_equal(left_array, right_array), key


class TestBufferRoundTrip:
    def test_from_buffers_is_bit_for_bit(self):
        structure = get_model_structure(ATTACK, PROTOCOL)
        rebuilt = SelfishForksStructure.from_buffers(structure.to_buffers())
        assert_structures_identical(structure, rebuilt)

    def test_round_trip_instantiates_identically(self):
        structure = get_model_structure(ATTACK, PROTOCOL)
        rebuilt = SelfishForksStructure.from_buffers(structure.to_buffers())
        for protocol in (PROTOCOL, ProtocolParams(p=0.45, gamma=0.9)):
            original = structure.instantiate(protocol)
            copy = rebuilt.instantiate(protocol)
            assert np.array_equal(original.trans_prob, copy.trans_prob)
            assert original.state_labels == copy.state_labels
            assert original.row_actions == copy.row_actions

    def test_boundary_support_round_trips(self):
        boundary = ProtocolParams(p=0.0, gamma=0.5)
        structure = get_model_structure(ATTACK, boundary)
        rebuilt = SelfishForksStructure.from_buffers(structure.to_buffers())
        assert_structures_identical(structure, rebuilt)


class TestPlaneLifecycle:
    def test_attached_plane_equals_in_process_structure(self):
        """A real attach (as a worker performs it) is bit-for-bit and zero-copy.

        Attaching within the publishing process normally dedups to the open
        creator plane, so the substrate registry is forgotten first (exactly
        what a fork-started worker does) to force the worker-side mapping path.
        """
        structure = get_model_structure(ATTACK, PROTOCOL)
        plane = publish_structures([structure])
        try:
            forget_inherited_planes()
            attached = attach_structures(plane.name)
            try:
                (remote,) = attached.structures
                assert_structures_identical(structure, remote)
                # The numeric arrays of the attachment are read-only shared views.
                assert not remote.trans_succ.flags.writeable
                assert not remote.trans_reward.flags.owndata
            finally:
                attached.release()
        finally:
            plane.release()

    def test_in_process_attach_dedups_to_the_open_plane(self):
        """Attaching within the publishing process bumps the refcount instead
        of mapping the segment twice (release/unlink discipline itself is
        proven by the conformance suite, ``test_shm_conformance.py``)."""
        plane = publish_structures([get_model_structure(ATTACK, PROTOCOL)])
        name = plane.name
        assert attach_structures(name) is plane
        assert plane_refcount(name) == 2
        plane.release()
        assert segment_exists(name), "segment must survive while a reference is held"
        plane.release()
        assert name not in active_plane_names()
        assert plane_refcount(name) is None

    def test_publish_empty_rejected(self):
        with pytest.raises(ModelError):
            publish_structures([])

    def test_attach_racing_creator_unlink_gets_clean_error(self):
        """An attacher that loses the race against the creator's unlink must
        get a :class:`ModelError`, never a raw ``FileNotFoundError``."""
        plane = publish_structures([get_model_structure(ATTACK, PROTOCOL)])
        name = plane.name
        forget_inherited_planes()  # the attach must take the real mapping path
        plane.release()  # creator unlinks before the attacher looks up the name
        with pytest.raises(ModelError, match="not available") as excinfo:
            attach_structures(name)
        assert not isinstance(excinfo.value, FileNotFoundError)

    def test_attach_winning_the_unlink_race_stays_usable(self, monkeypatch):
        """POSIX keeps a mapping alive after unlink: an attacher that mapped
        the segment just before the creator unlinked it reads valid data and
        releases without error."""
        import repro.core.shm as shm_module

        structure = get_model_structure(ATTACK, PROTOCOL)
        plane = publish_structures([structure])
        forget_inherited_planes()
        real_attach = shm_module.attach_segment_untracked

        def attach_then_creator_unlinks(name):
            segment = real_attach(name)
            plane.release()  # the creator unlinks between mmap and validation
            return segment

        monkeypatch.setattr(shm_module, "attach_segment_untracked", attach_then_creator_unlinks)
        attached = attach_structures(plane.name)
        try:
            assert_structures_identical(structure, attached.structures[0])
        finally:
            attached.release()
        assert not segment_exists(plane.name)


def report_attack_array_flags():
    """Worker-side probe: (owndata, writeable) of the cached attack structure.

    Must stay at module top level so the pool can pickle it by reference.
    """
    structure = get_model_structure(ATTACK, PROTOCOL)
    return (structure.trans_succ.flags.owndata, structure.trans_succ.flags.writeable)


def sweep_grid(**kwargs) -> SweepConfig:
    return SweepConfig(
        p_values=(0.1, 0.3),
        gammas=(0.5,),
        attack_configs=(AttackParams(1, 1, 4), ATTACK),
        analysis=AnalysisConfig(epsilon=1e-2),
        **kwargs,
    )


def capture_plane_names(monkeypatch) -> list:
    """Record the segment names the engine publishes during a sweep."""
    import repro.core.engine as engine_module

    names = []
    original = engine_module.publish_structures

    def capturing(structures):
        plane = original(structures)
        names.append(plane.name)
        return plane

    monkeypatch.setattr(engine_module, "publish_structures", capturing)
    return names


class TestEngineIntegration:
    def test_segment_unlinked_after_pool_shutdown(self, monkeypatch):
        names = capture_plane_names(monkeypatch)
        sweep = execute_sweep(sweep_grid(workers=2))
        assert not sweep.failures
        assert names, "the engine must publish a plane for a multi-worker sweep"
        for name in names:
            assert not segment_exists(name)
            assert name not in active_plane_names()

    def test_worker_crash_does_not_leak_segment(self, monkeypatch):
        """A pool whose workers die must still unlink the shared segment."""
        import repro.core.engine as engine_module

        names = capture_plane_names(monkeypatch)

        def die(task):
            os._exit(1)

        # Fork-started workers inherit the patched module, so every task's
        # worker kills itself and the pool breaks.
        monkeypatch.setattr(engine_module, "_run_attack_task", die)
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "fork")
        sweep = execute_sweep(sweep_grid(workers=2))
        assert sweep.failures and all(
            "worker crashed" in failure.message for failure in sweep.failures
        )
        assert names
        for name in names:
            assert not segment_exists(name)

    def test_spawn_sweep_matches_serial(self, monkeypatch):
        serial = execute_sweep(sweep_grid(workers=1))
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "spawn")
        spawned = execute_sweep(sweep_grid(workers=4))
        assert not spawned.failures
        assert [(p.p, p.gamma, p.series, p.errev) for p in spawned.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in serial.points
        ]

    def test_spawn_workers_attach_without_building(self):
        """Acceptance: spawn workers at >= 4 parallelism perform zero builds.

        The pool uses the engine's own initializer and a published plane, then
        asks every worker for its ``structure_cache_stats()``: the parent built
        the skeletons once, the workers only attached.
        """
        config = sweep_grid(workers=4)
        structures = [
            get_model_structure(attack, PROTOCOL) for attack in config.attack_configs
        ]
        plane = publish_structures(structures)
        try:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=4,
                mp_context=context,
                initializer=_initialize_worker,
                initargs=(plane.name, config),
            ) as pool:
                stats = [
                    future.result()
                    for future in [pool.submit(structure_cache_stats) for _ in range(8)]
                ]
        finally:
            plane.release()
        assert stats
        for worker_stats in stats:
            assert worker_stats["builds"] == 0
            assert worker_stats["attaches"] >= len(structures)
            assert worker_stats["entries"] >= len(structures)

    def test_fork_workers_map_the_segment_not_inherited_copies(self):
        """Fork workers must attach real shared views, not reuse COW copies.

        A fork-started worker inherits the parent's cache *and* the parent's
        creator plane handle; the initializer must discard both so the cached
        structure's arrays are read-only views of the shared segment
        (``owndata=False``) instead of the inherited private arrays.
        """
        config = sweep_grid(workers=2)
        structures = [
            get_model_structure(attack, PROTOCOL) for attack in config.attack_configs
        ]
        plane = publish_structures(structures)
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=2,
                mp_context=context,
                initializer=_initialize_worker,
                initargs=(plane.name, config),
            ) as pool:
                flags = [pool.submit(report_attack_array_flags).result() for _ in range(4)]
        finally:
            plane.release()
        # In the parent the same structure owns writable arrays.
        assert report_attack_array_flags() == (True, True)
        assert all(worker_flags == (False, False) for worker_flags in flags)

    def test_invalid_start_method_override_raises(self, monkeypatch):
        """A typo in REPRO_TEST_START_METHOD must fail loudly, not run fork."""
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "spwan")
        with pytest.raises(ValueError, match="REPRO_TEST_START_METHOD"):
            execute_sweep(sweep_grid(workers=2))

    def test_shared_plane_disabled_still_matches(self, monkeypatch):
        """The ``use_shared_structures=False`` fallback reproduces the values."""
        serial = execute_sweep(sweep_grid(workers=1))
        names = capture_plane_names(monkeypatch)
        monkeypatch.setenv("REPRO_TEST_START_METHOD", "spawn")
        fallback = execute_sweep(sweep_grid(workers=2, use_shared_structures=False))
        assert not names, "no plane may be published when shared structures are off"
        assert not fallback.failures
        assert [(p.p, p.gamma, p.series, p.errev) for p in fallback.points] == [
            (p.p, p.gamma, p.series, p.errev) for p in serial.points
        ]
